//! Multi-process ElGA over TCP: this example re-executes itself as
//! separate OS processes for the DirectoryMaster, the lead Directory,
//! and each Agent, all talking over loopback sockets — the closest
//! single-machine analog of the paper's `pdsh`-started deployment
//! (Artifact Description: "The experiments were run by using pdsh to
//! start ElGA executables on each node").
//!
//! ```sh
//! cargo run --release --example distributed_tcp            # coordinator
//! cargo run --release --example distributed_tcp -- --help  # roles
//! ```

use elga::core::agent::Agent;
use elga::core::client::ClientProxy;
use elga::core::directory::{self, DirectoryRole};
use elga::core::msg::{self, packet, RunInfo};
use elga::core::streamer::Streamer;
use elga::graph::reference;
use elga::net::{Addr, Frame, TcpTransport, Transport};
use elga::prelude::*;
use std::process::{Child, Command};
use std::sync::Arc;
use std::time::Duration;

const AGENTS: u64 = 4;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr")
        .port()
}

fn tcp(port: u16) -> Addr {
    Addr::parse(&format!("tcp://127.0.0.1:{port}")).expect("addr")
}

fn main() {
    match arg("--role").as_deref() {
        None => coordinator(),
        Some("master") => role_master(),
        Some("directory") => role_directory(),
        Some("agent") => role_agent(),
        Some(other) => {
            eprintln!("unknown role {other}; roles: master, directory, agent");
            std::process::exit(2);
        }
    }
}

fn role_master() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let port: u16 = arg("--port").expect("--port").parse().expect("port");
    directory::spawn_master(transport, tcp(port))
        .join()
        .expect("master");
}

fn role_directory() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let port: u16 = arg("--port").expect("--port").parse().expect("port");
    let bus: u16 = arg("--bus").expect("--bus").parse().expect("bus");
    let master: u16 = arg("--master").expect("--master").parse().expect("master");
    directory::spawn_directory_at(
        transport,
        SystemConfig::default(),
        0,
        tcp(master),
        tcp(port),
        DirectoryRole::Lead { bus: tcp(bus) },
    )
    .join()
    .expect("directory");
}

fn role_agent() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let id: u64 = arg("--id").expect("--id").parse().expect("id");
    let dir: u16 = arg("--dir").expect("--dir").parse().expect("dir");
    let bus: u16 = arg("--bus").expect("--bus").parse().expect("bus");
    let agent = Agent::join_at(
        transport,
        SystemConfig::default(),
        id,
        Addr::parse("tcp://127.0.0.1:0").expect("addr"),
        tcp(dir),
        tcp(bus),
    )
    .expect("agent join");
    agent.spawn().join().expect("agent");
}

fn spawn_role(args: &[String]) -> Child {
    Command::new(std::env::current_exe().expect("exe"))
        .args(args)
        .spawn()
        .expect("spawn role process")
}

fn coordinator() {
    let master = reserve_port();
    let dir = reserve_port();
    let bus = reserve_port();
    println!("coordinator: master :{master}, directory :{dir}, bus :{bus}");

    let mut children = vec![spawn_role(&[
        "--role".into(),
        "master".into(),
        "--port".into(),
        master.to_string(),
    ])];
    std::thread::sleep(Duration::from_millis(150));
    children.push(spawn_role(&[
        "--role".into(),
        "directory".into(),
        "--port".into(),
        dir.to_string(),
        "--bus".into(),
        bus.to_string(),
        "--master".into(),
        master.to_string(),
    ]));
    std::thread::sleep(Duration::from_millis(150));
    for id in 1..=AGENTS {
        children.push(spawn_role(&[
            "--role".into(),
            "agent".into(),
            "--id".into(),
            id.to_string(),
            "--dir".into(),
            dir.to_string(),
            "--bus".into(),
            bus.to_string(),
        ]));
    }
    println!("spawned {} processes ({AGENTS} agents)", children.len());
    std::thread::sleep(Duration::from_millis(300));

    // Drive the deployment over sockets: stream a graph, run WCC and
    // PageRank, query, then shut everything down.
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let cfg = SystemConfig::default();
    let dir_addr = tcp(dir);
    let bus_addr = tcp(bus);

    let edges: Vec<(u64, u64)> = elga::gen::powerlaw::power_law(300, 1500, 2.0, 7)
        .into_iter()
        .collect();
    let mut streamer =
        Streamer::connect(transport.clone(), cfg.clone(), dir_addr.clone()).expect("streamer");
    let changes: Vec<EdgeChange> = edges
        .iter()
        .map(|&(u, v)| EdgeChange::insert(u, v))
        .collect();
    streamer.send_batch(&changes).expect("stream");
    println!("streamed {} edges into 4 agent processes", changes.len());
    std::thread::sleep(Duration::from_millis(300));

    let run = |spec: elga::core::program::ProgramSpec| {
        let (tag, params) = spec.encode();
        let sub = transport
            .subscribe(&bus_addr, &[packet::ADVANCE])
            .expect("subscribe");
        let rep = transport
            .request(
                &dir_addr,
                msg::encode_start(&RunInfo {
                    run_id: 0,
                    tag,
                    params,
                    reuse_state: false,
                    asynchronous: false,
                    delta: false,
                    dangling_base: 0.0,
                }),
                Duration::from_secs(30),
            )
            .expect("start run");
        let run_id = rep.reader().u64().expect("run id");
        let t0 = std::time::Instant::now();
        loop {
            let d = sub.recv_timeout(Duration::from_secs(60)).expect("advance");
            if let Some(adv) = msg::decode_advance(&d.frame) {
                if adv.run == run_id && adv.done {
                    return t0.elapsed();
                }
            }
        }
    };

    let dt = run(Wcc::new().into());
    println!("WCC across processes: {dt:?}");
    let dt = run(PageRank::new(0.85).with_max_iters(10).into());
    println!("PageRank (10 iters) across processes: {dt:?}");

    // Validate against the local reference.
    let proxy = ClientProxy::connect(transport.clone(), cfg, dir_addr.clone()).expect("proxy");
    let truth = reference::wcc(edges.iter().copied());
    let sample: Vec<u64> = truth.keys().copied().take(5).collect();
    let mut mass = 0.0;
    for &v in truth.keys() {
        if let Some(r) = proxy.query_primary(v) {
            mass += f64::from_bits(r.state);
        }
    }
    println!("rank mass across processes: {mass:.6}");
    for v in sample {
        println!(
            "  query vertex {v}: rank {:?}",
            proxy.query_primary(v).map(|r| f64::from_bits(r.state))
        );
    }

    // Tear down: broadcast SHUTDOWN, stop the master, reap children.
    let _ = transport.request(
        &dir_addr,
        Frame::signal(packet::SHUTDOWN),
        Duration::from_secs(5),
    );
    if let Ok(out) = transport.sender(&tcp(master)) {
        let _ = out.send(Frame::signal(packet::SHUTDOWN));
    }
    for mut child in children {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50))
                }
                _ => {
                    let _ = child.kill();
                    break;
                }
            }
        }
    }
    println!("all processes exited");
}
