//! Reactive autoscaling (paper Figure 18): a step function of client
//! query load drives the EMA autoscaler, and the cluster's agent count
//! converges to the target — scaling up under load, down when it
//! passes.
//!
//! ```sh
//! cargo run --release --example autoscale_queries
//! ```

use elga::gen::catalog::find;
use elga::prelude::*;
use std::time::Duration;

fn main() {
    let skitter = find("Skitter").expect("catalog dataset");
    let (n, edges) = skitter.generate(2e-6, 23);

    let mut cluster = Cluster::builder().agents(2).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).expect("wcc");

    // The paper's policy: EMA of client query rates, scaled by a
    // per-agent capacity factor, with a hold-down between scalings
    // (30s/60s at cluster scale; milliseconds here).
    let mut policy = EmaAutoscaler::new(Duration::from_millis(200), 500.0, 1, 8)
        .with_cooldown(Duration::from_millis(400));

    println!("tick | offered rate | ema      | target | agents");
    let mut tick = 0;
    for &(ticks, rate) in &[(5, 300.0), (5, 3000.0), (5, 800.0)] {
        for _ in 0..ticks {
            // Offer the queries (random-replica path).
            for q in 0..(rate as usize / 20).max(1) {
                let v = edges[q % edges.len()].0 % n.max(1);
                let _ = cluster.query_any(v);
            }
            cluster.autoscale_once(&mut policy, rate);
            println!(
                "{:>4} | {:>12.0} | {:>8.0} | {:>6} | {:>6}",
                tick,
                rate,
                policy.ema().unwrap_or(0.0),
                policy.current_target().unwrap_or(0),
                cluster.agent_count()
            );
            tick += 1;
            std::thread::sleep(Duration::from_millis(60));
        }
    }

    // Results remain correct throughout the elastic churn.
    let sample = edges[0].0;
    println!(
        "\nvertex {} component after all scaling: {:?}",
        sample,
        cluster.query_u64(sample)
    );
    cluster.shutdown();
}
