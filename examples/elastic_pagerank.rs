//! Manual elasticity (paper Figure 17): start PageRank on a small
//! cluster, scale up 4× mid-computation — ElGA migrates edges at a
//! superstep boundary and continues — crash an agent to exercise
//! failure detection and recovery, then scale back down (one batched
//! view change) once the work is done.
//!
//! ```sh
//! cargo run --release --example elastic_pagerank
//! cargo run --release --example elastic_pagerank -- --trace trace.json
//! ```
//!
//! With `--trace FILE`, every participant records phase spans, view
//! changes, migrations, recovery, and coalescer events into a ring
//! buffer; the merged Chrome-trace JSON written to FILE loads directly
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, one
//! track per agent/directory/streamer. A Prometheus-style text dump of
//! the cluster metrics is printed alongside.

use elga::core::program::RunOptions;
use elga::gen::catalog::find;
use elga::prelude::*;
use std::time::Duration;

fn main() {
    let trace_path = {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => path = args.next(),
                other => {
                    eprintln!("usage: elastic_pagerank [--trace FILE] (got {other:?})");
                    std::process::exit(2);
                }
            }
        }
        path
    };

    let gowalla = find("Gowalla").expect("catalog dataset");
    let (_, edges) = gowalla.generate(2e-6, 17);
    println!("Gowalla-like graph: {} edges", edges.len());

    let cfg = SystemConfig {
        tracing: trace_path.is_some(),
        // Fast failure detection so the crash segment below resolves in
        // milliseconds, not the production-scale default of seconds.
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 12,
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(edges.iter().copied());

    // Kick off a 6-iteration PageRank without blocking.
    let handle = cluster
        .start_run(PageRank::new(0.85).with_max_iters(6), RunOptions::default())
        .expect("start");

    // "An operator manually scales the cluster" — add 12 agents while
    // the run executes; the change applies at the next superstep
    // boundary (§3.4.3).
    std::thread::sleep(Duration::from_millis(5));
    let added = cluster.add_agents(12);
    println!("scaled up: +{} agents (now joining mid-run)", added.len());

    let stats = cluster.wait_run(handle).expect("run");
    println!("run finished: {} supersteps", stats.steps);
    for (i, d) in stats.step_durations.iter().enumerate() {
        println!("  iteration {i}: {d:?}");
    }
    println!("agents during run: {}", cluster.agent_count());

    // Crash an agent mid-run: the lead notices the heartbeat silence,
    // evicts it, and the driver replays the change log and restarts.
    let victim = *cluster.agent_ids().last().expect("agents");
    let handle = cluster
        .start_run(PageRank::new(0.85).with_max_iters(6), RunOptions::default())
        .expect("start recovery run");
    std::thread::sleep(Duration::from_millis(5));
    cluster.kill_agent(victim);
    println!("killed agent {victim} mid-run; waiting for recovery");
    let stats = cluster.wait_run(handle).expect("recovered run");
    println!(
        "recovered run finished: {} supersteps on {} agents",
        stats.steps,
        cluster.agent_count()
    );

    // Verify results survived migration and recovery: rank mass is 1.
    let view = cluster.view();
    let mass: f64 = edges
        .iter()
        .flat_map(|&(u, v)| [u, v])
        .collect::<std::collections::HashSet<_>>()
        .into_iter()
        .filter_map(|v| cluster.query_f64(v))
        .sum();
    println!(
        "rank mass after elastic run: {mass:.6} over {} vertices",
        view.n_vertices
    );

    // Kernel and routing telemetry for the whole elastic run.
    let m = cluster.metrics();
    println!(
        "owner cache: {} hits / {} misses ({:.1}% hit rate)",
        m.owner_cache_hits,
        m.owner_cache_misses,
        m.owner_cache_hit_rate() * 100.0
    );
    println!(
        "kernel wall time: scatter {:?}, combine {:?}, apply {:?}",
        Duration::from_nanos(m.scatter_nanos),
        Duration::from_nanos(m.combine_nanos),
        Duration::from_nanos(m.apply_nanos)
    );

    // Comms-plane telemetry: per-packet-type traffic and what made the
    // coalescer close its frames.
    let c = &m.comms;
    println!("comms (frames sent / bytes sent / frames recv / bytes recv):");
    for (name, p) in [
        ("vmsg", &c.vmsg),
        ("partial", &c.partial),
        ("state", &c.state),
        ("edge_changes", &c.edge_changes),
        ("deg_delta", &c.deg_delta),
        ("migration", &c.migration),
    ] {
        println!(
            "  {name:<12} {:>8} / {:>10} / {:>8} / {:>10}",
            p.frames_sent, p.bytes_sent, p.frames_recv, p.bytes_recv
        );
    }
    println!(
        "  total data-plane: {} frames, {} bytes sent",
        c.frames_sent(),
        c.bytes_sent()
    );
    println!(
        "coalescer flushes: {} size, {} count, {} explicit, {} switch; {} backpressure waits",
        c.size_flushes, c.count_flushes, c.explicit_flushes, c.switch_flushes, c.backpressure_waits
    );

    // Scale back down for cost savings: one batched LEAVE retires all
    // surplus agents in a single view change and migration barrier.
    let surplus = cluster.agent_count().saturating_sub(4);
    let removed = cluster.remove_agents(surplus);
    cluster.quiesce().expect("quiesce");
    println!(
        "scaled back down by {} agents (one view change) to {}",
        removed.len(),
        cluster.agent_count()
    );
    // Results are still served after the scale-down.
    let sample = edges[0].0;
    println!(
        "vertex {} still answers: rank {:.6}",
        sample,
        cluster.query_f64(sample).expect("rank")
    );

    if let Some(path) = trace_path {
        let json = cluster.chrome_trace();
        std::fs::write(&path, &json).expect("write trace");
        println!(
            "wrote {} bytes of Chrome-trace JSON to {path} — open in https://ui.perfetto.dev",
            json.len()
        );
        println!("--- prometheus metrics ---");
        print!("{}", cluster.metrics().to_prometheus());
    }
    cluster.shutdown();
}
