//! Dynamic graph analysis: maintain weakly connected components while
//! a synthetic social network streams in, with client queries running
//! against the freshest available results (paper §4.9).
//!
//! ```sh
//! cargo run --release --example dynamic_wcc
//! ```

use elga::gen::powerlaw::power_law;
use elga::graph::stream::{insertions, Batcher};
use elga::prelude::*;
use std::time::Instant;

fn main() {
    let mut cluster = Cluster::builder().agents(4).build();

    // A Twitter-like power-law graph arriving as a stream of batches.
    let edges = power_law(2000, 12_000, 2.0, 42);
    let batches: Vec<_> = Batcher::new(insertions(edges.iter().copied()), 2000).collect();
    println!(
        "streaming {} edges in {} batches of 2000",
        edges.len(),
        batches.len()
    );

    let mut first = true;
    for batch in &batches {
        let t0 = Instant::now();
        cluster.ingest(batch.changes.iter().copied());
        let ingest = t0.elapsed();

        // Maintain components: full run on the first batch, then
        // incremental — only vertices touched by the batch activate
        // (Definition 2.5's dynamic graph algorithm).
        let t0 = Instant::now();
        let stats = if first {
            first = false;
            cluster.run(Wcc::new()).expect("wcc")
        } else {
            cluster
                .run_with(
                    Wcc::new(),
                    elga::core::program::RunOptions {
                        reuse_state: true,
                        mode: ExecutionMode::Sync,
                    },
                )
                .expect("incremental wcc")
        };
        println!(
            "batch {:>2}: ingest {:>7.2?}, maintain {:>7.2?} ({} supersteps, n={})",
            batch.id,
            ingest,
            t0.elapsed(),
            stats.steps,
            stats.n_vertices,
        );
    }

    // Client queries go to a random replica of the vertex (the paper's
    // low-latency path); the batch id in the reply is the staleness
    // handle of Definition 2.6.
    for v in [0u64, 7, 1999] {
        if let Some(r) = cluster.query_any(v) {
            println!(
                "query v={v}: component {} (as of batch {})",
                r.state, r.batch_id
            );
        }
    }

    // Deletions: cut a sample and repair labels incrementally.
    let removed: Vec<_> = edges.iter().take(50).copied().collect();
    let labels: Vec<u64> = removed
        .iter()
        .flat_map(|&(u, v)| [u, v])
        .filter_map(|v| cluster.query_u64(v))
        .collect();
    cluster.ingest(removed.iter().map(|&(u, v)| EdgeChange::delete(u, v)));
    cluster.reset_labels(&labels);
    let t0 = Instant::now();
    cluster
        .run_with(
            Wcc::new(),
            elga::core::program::RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("repair");
    println!("deleted 50 edges; labels repaired in {:?}", t0.elapsed());

    cluster.shutdown();
}
