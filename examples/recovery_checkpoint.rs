//! Durable checkpoints and bounded recovery: cut checkpoints at batch
//! boundaries, crash an agent mid-run, and recover by restoring the
//! latest valid generation plus replaying only the change-log suffix.
//! Then damage the newest generation on disk and show the fallback
//! ladder landing on the older one — never on a wrong answer.
//!
//! ```sh
//! cargo run --release --example recovery_checkpoint
//! ```

use elga::prelude::*;
use std::time::Duration;

/// Ring + chords over `[lo, lo + n)`.
fn band(lo: u64, n: u64) -> Vec<EdgeChange> {
    (lo..lo + n)
        .flat_map(|i| {
            let mut v = vec![EdgeChange::insert(i, lo + (i + 1 - lo) % n)];
            if i % 3 == 0 {
                v.push(EdgeChange::insert(i, lo + (i * 7 + 3) % n));
            }
            v
        })
        .filter(|c| c.edge.src != c.edge.dst)
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("elga-recovery-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = SystemConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 12,
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder()
        .agents(4)
        .config(config)
        .checkpoints(&dir)
        .build();

    // Two ingest batches with a checkpoint after each: the retained
    // change log shrinks to the oldest kept generation's watermark.
    for stage in 0..2u64 {
        cluster.ingest(band(stage * 100, 100));
        let report = cluster.checkpoint().expect("checkpoint");
        let (retained, log_base, ingested) = {
            let (r, _, b, i) = cluster.change_log_stats();
            (r, b, i)
        };
        println!(
            "checkpoint generation {} at watermark {} (committed: {}); \
             log retains {} of {} records (base {})",
            report.generation, report.watermark, report.committed, retained, ingested, log_base
        );
    }
    // A third batch arrives after the last checkpoint — this is the
    // suffix a recovery must replay.
    cluster.ingest(band(200, 100));

    // Crash an agent mid-run. The lead restores the newest generation
    // and replays only the 100-record suffix, not all 300 records.
    let handle = cluster
        .start_run(
            Wcc::new(),
            elga::core::program::RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .expect("start wcc");
    let victim = cluster.agent_ids()[1];
    cluster.kill_agent(victim);
    cluster.wait_run(handle).expect("run survives the crash");
    let rec = cluster.recovery_stats();
    println!(
        "recovered in {:.1} ms: restored generation from disk ({} restore), \
         replayed {} records, {} fallbacks",
        rec.recovery_nanos as f64 / 1e6,
        rec.ckpt_restores,
        rec.replayed_records,
        rec.ckpt_fallbacks
    );
    println!(
        "  vertex 0 -> component {}, vertex 250 -> component {}",
        cluster.query_u64(0).expect("label"),
        cluster.query_u64(250).expect("label")
    );

    // Now damage the newest generation on disk (torn shard write) and
    // crash again: recovery falls back a generation and replays a
    // longer suffix instead of trusting a corrupt checkpoint.
    for entry in std::fs::read_dir(&dir).expect("store dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("g00000002") && name.ends_with(".shard") {
            let len = std::fs::metadata(&path).expect("meta").len();
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .expect("open shard");
            file.set_len(len / 2).expect("tear shard");
        }
    }
    let handle = cluster
        .start_run(Wcc::new(), elga::core::program::RunOptions::default())
        .expect("start wcc");
    let victim = cluster.agent_ids()[2];
    cluster.kill_agent(victim);
    cluster.wait_run(handle).expect("run survives the crash");
    let rec = cluster.recovery_stats();
    println!(
        "after tearing generation 2: {} recoveries total, {} fallback, \
         {} records replayed cumulatively (generation 1 + longer suffix)",
        rec.recoveries, rec.ckpt_fallbacks, rec.replayed_records
    );
    println!(
        "  vertex 0 -> component {}, vertex 250 -> component {}",
        cluster.query_u64(0).expect("label"),
        cluster.query_u64(250).expect("label")
    );

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
