//! Quickstart: assemble an ElGA cluster, stream a graph in, run
//! PageRank and WCC, and query results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use elga::prelude::*;

fn main() {
    // A 4-agent shared-nothing cluster over the in-process transport:
    // one DirectoryMaster, one Directory, four Agents — the paper's
    // Figure 1 topology in one process.
    let mut cluster = Cluster::builder().agents(4).build();

    // Stream a small follower graph in as a turnstile batch.
    let edges: &[(u64, u64)] = &[
        (1, 2),
        (2, 3),
        (3, 1),
        (3, 4),
        (4, 5),
        (5, 3),
        (1, 4),
        // an island
        (10, 11),
        (11, 10),
    ];
    cluster.ingest(edges.iter().map(|&(u, v)| EdgeChange::insert(u, v)));
    println!(
        "ingested {} edges across {} agents",
        cluster.metrics().edges,
        cluster.agent_count()
    );

    // PageRank, 25 synchronous supersteps.
    let stats = cluster
        .run(PageRank::new(0.85).with_max_iters(25))
        .expect("pagerank");
    println!(
        "pagerank: {} supersteps in {:?} ({:?}/iteration)",
        stats.steps,
        stats.total,
        stats.mean_iteration()
    );
    let mut ranked: Vec<(u64, f64)> = [1, 2, 3, 4, 5, 10, 11]
        .iter()
        .map(|&v| (v, cluster.query_f64(v).expect("rank")))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (v, r) in &ranked {
        println!("  vertex {v:>2}: rank {r:.4}");
    }

    // Weakly connected components on the same live graph.
    cluster.run(Wcc::new()).expect("wcc");
    for v in [1u64, 5, 10] {
        println!(
            "  vertex {v:>2}: component {}",
            cluster.query_u64(v).expect("label")
        );
    }

    // The graph keeps changing: connect the island and re-run
    // incrementally — only touched vertices recompute.
    cluster.ingest([EdgeChange::insert(5, 10)]);
    cluster
        .run_with(
            Wcc::new(),
            elga::core::program::RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .expect("incremental wcc");
    println!(
        "after inserting (5,10): vertex 11 is now in component {}",
        cluster.query_u64(11).expect("label")
    );

    cluster.shutdown();
}
