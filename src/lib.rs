//! # ElGA — elastic and scalable dynamic graph analysis
//!
//! A Rust reproduction of *"ElGA: Elastic and Scalable Dynamic Graph
//! Analysis"* (Gabert et al., SC '21). This facade crate re-exports the
//! workspace's public API; see the individual crates for details:
//!
//! * [`hash`] — hash functions, consistent-hash ring, edge locator.
//! * [`sketch`] — count-min sketch degree estimation.
//! * [`graph`] — edge-change streams, batches, adjacency stores, CSR.
//! * [`net`] — shared-nothing messaging (REQ/REP, PUSH, PUB/SUB).
//! * [`ckpt`] — the durable checkpoint store behind bounded recovery:
//!   atomic, checksummed, generation-tagged shard files.
//! * [`gen`] — workload generators and the dataset catalog.
//! * [`core`] — the ElGA system: directories, agents, streamers, client
//!   proxies, vertex programs, elasticity and autoscaling.
//! * [`query`] — the continuous-query serving plane: batched point
//!   reads, standing subscriptions, snapshot-consistent answers.
//! * [`trace`] — the event-tracing layer: per-participant ring buffers
//!   and Chrome-trace export (enable with [`SystemConfig::tracing`]).
//!
//! [`SystemConfig::tracing`]: elga_core::config::SystemConfig::tracing
//! * [`baselines`] — Blogel-like, GraphX-like, STINGER-like, GAPbs-like
//!   comparators used by the evaluation harnesses.
//!
//! ## Quickstart
//!
//! ```
//! use elga::prelude::*;
//!
//! // Build a 4-agent in-process cluster.
//! let mut cluster = Cluster::builder().agents(4).build();
//!
//! // Stream a small graph in as a batch of edge insertions.
//! let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
//! cluster.ingest(edges.iter().map(|&(u, v)| EdgeChange::insert(u, v)));
//!
//! // Run PageRank for 10 supersteps and query a vertex.
//! cluster.run(PageRank::new(0.85).with_max_iters(10)).unwrap();
//! let rank = cluster.query_f64(2).unwrap();
//! assert!(rank > 0.0);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub use elga_baselines as baselines;
pub use elga_ckpt as ckpt;
pub use elga_core as core;
pub use elga_gen as gen;
pub use elga_graph as graph;
pub use elga_hash as hash;
pub use elga_net as net;
pub use elga_query as query;
pub use elga_sketch as sketch;
pub use elga_trace as trace;

/// Convenient single-import surface for examples and applications.
pub mod prelude {
    pub use elga_core::algorithms::{Bfs, DagLevel, Degree, PageRank, Ppr, Sssp, Wcc};
    pub use elga_core::autoscale::{Autoscaler, EmaAutoscaler};
    pub use elga_core::cluster::{Cluster, ClusterBuilder};
    pub use elga_core::config::SystemConfig;
    pub use elga_core::program::{ExecutionMode, VertexProgram};
    pub use elga_graph::{Batch, EdgeChange, VertexId};
    pub use elga_hash::{EdgeLocator, HashKind, LocatorConfig, Ring};
    pub use elga_query::{QueryClient, SnapshotValue, SubUpdate};
    pub use elga_sketch::CountMinSketch;
}
