//! Count-min sketch (Cormode & Muthukrishnan), the sketch ElGA
//! broadcasts through its directory system (§3.3.1).
//!
//! The table is `depth` rows of `width` counters. Each update hashes the
//! key once per row and increments one counter per row; a query takes
//! the minimum over rows. Because counters only grow ("only going in one
//! direction", §2.4), an estimate can exceed the true count but never
//! under-count — exactly the bias ElGA wants for replication decisions:
//! a heavy vertex is never missed, at worst a light vertex is split
//! unnecessarily.
//!
//! Sizing (§3.3.1): `width = ceil(e / ε)` and `depth = ceil(ln(1/δ))`
//! guarantee additive error at most `ε·m` after `m` updates with
//! probability `1 − δ`. The paper's example: 100 B edges, width `2^18`,
//! depth 8 → every degree estimate within ~1 M at 99.965 % probability,
//! in 8 MB.

use elga_hash::funcs::wang64;
use serde::{Deserialize, Serialize};

/// A count-min sketch over `u64` keys with saturating `u32` counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    /// Row-major `depth × width` counter table.
    table: Vec<u32>,
    /// Total updates applied (the stream length `m`).
    items: u64,
}

/// Per-row seed: decorrelates the row hash functions.
#[inline]
fn row_seed(row: usize) -> u64 {
    // splitmix-style sequence of seeds
    wang64((row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD6E8_FEB8_6659_FD93)
}

impl CountMinSketch {
    /// Create a `depth × width` sketch.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        CountMinSketch {
            width,
            depth,
            table: vec![0; width * depth],
            items: 0,
        }
    }

    /// Create a sketch sized for additive error `ε·m` with failure
    /// probability `δ`: `width = ceil(e/ε)`, `depth = ceil(ln(1/δ))`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    /// Width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth (number of rows / hash functions).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total updates applied across all keys.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Size of the counter table in bytes (what the directory
    /// broadcasts; the paper's `O(P + d·w)` term).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// The additive error bound `ε·m = (e/width)·items` the sketch
    /// currently guarantees with probability `1 − e^{-depth}`.
    pub fn current_error_bound(&self) -> f64 {
        std::f64::consts::E / self.width as f64 * self.items as f64
    }

    #[inline]
    fn index(&self, row: usize, key: u64) -> usize {
        let h = wang64(key ^ row_seed(row));
        row * self.width + (h % self.width as u64) as usize
    }

    /// Add `count` to `key`.
    pub fn add(&mut self, key: u64, count: u32) {
        for row in 0..self.depth {
            let idx = self.index(row, key);
            self.table[idx] = self.table[idx].saturating_add(count);
        }
        self.items += u64::from(count);
    }

    /// Add one to `key`.
    #[inline]
    pub fn inc(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Point estimate for `key`: minimum counter across rows. Never
    /// less than the true count.
    pub fn estimate(&self, key: u64) -> u64 {
        let mut min = u32::MAX;
        for row in 0..self.depth {
            min = min.min(self.table[self.index(row, key)]);
        }
        u64::from(min)
    }

    /// Batched [`CountMinSketch::estimate`]: one estimate per key, in
    /// order. Row seeds are computed once for the whole batch instead
    /// of once per `(row, key)` pair, which matters on routing paths
    /// that estimate thousands of vertices per ingest batch.
    pub fn estimate_many(&self, keys: &[u64]) -> Vec<u64> {
        let seeds: Vec<u64> = (0..self.depth).map(row_seed).collect();
        keys.iter()
            .map(|&key| {
                let mut min = u32::MAX;
                for (row, &seed) in seeds.iter().enumerate() {
                    let h = wang64(key ^ seed);
                    let idx = row * self.width + (h % self.width as u64) as usize;
                    min = min.min(self.table[idx]);
                }
                u64::from(min)
            })
            .collect()
    }

    /// Merge another sketch of identical dimensions (counter-wise sum).
    /// Agents accumulate local sketches and directories merge them into
    /// the broadcast view.
    ///
    /// # Errors
    /// Returns `Err` when dimensions differ.
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<(), DimensionMismatch> {
        if self.width != other.width || self.depth != other.depth {
            return Err(DimensionMismatch {
                expected: (self.width, self.depth),
                got: (other.width, other.depth),
            });
        }
        for (a, b) in self.table.iter_mut().zip(&other.table) {
            *a = a.saturating_add(*b);
        }
        self.items += other.items;
        Ok(())
    }

    /// Raw counter at `(row, col)` — used by the directory's wire
    /// encoding of the broadcast sketch.
    ///
    /// # Panics
    /// Panics when out of range.
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> u32 {
        assert!(row < self.depth && col < self.width, "cell out of range");
        self.table[row * self.width + col]
    }

    /// Reassemble a sketch from its wire parts. Returns `None` when the
    /// cell count does not match `width × depth` or a dimension is
    /// zero.
    pub fn from_parts(
        width: usize,
        depth: usize,
        cells: Vec<u32>,
        items: u64,
    ) -> Option<CountMinSketch> {
        if width == 0 || depth == 0 || cells.len() != width * depth {
            return None;
        }
        Some(CountMinSketch {
            width,
            depth,
            table: cells,
            items,
        })
    }

    /// Reset every counter to zero.
    pub fn clear(&mut self) {
        self.table.fill(0);
        self.items = 0;
    }

    /// True when no updates have been applied.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }
}

/// Error returned by [`CountMinSketch::merge`] on shape mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// `(width, depth)` of the receiver.
    pub expected: (usize, usize),
    /// `(width, depth)` of the argument.
    pub got: (usize, usize),
}

impl std::fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sketch dimension mismatch: expected {:?}, got {:?}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for DimensionMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = CountMinSketch::new(64, 4);
        assert!(s.is_empty());
        assert_eq!(s.estimate(42), 0);
        assert_eq!(s.items(), 0);
    }

    #[test]
    fn single_key_exact_without_collisions() {
        let mut s = CountMinSketch::new(1024, 4);
        for _ in 0..100 {
            s.inc(7);
        }
        assert_eq!(s.estimate(7), 100);
        assert_eq!(s.items(), 100);
    }

    #[test]
    fn never_underestimates() {
        // Deliberately tiny sketch to force collisions.
        let mut s = CountMinSketch::new(8, 2);
        let mut truth = std::collections::HashMap::new();
        for k in 0..100u64 {
            let c = (k % 7 + 1) as u32;
            s.add(k, c);
            *truth.entry(k).or_insert(0u64) += u64::from(c);
        }
        for (k, t) in truth {
            assert!(s.estimate(k) >= t, "under-estimate for {k}");
        }
    }

    #[test]
    fn estimate_many_matches_pointwise_estimates() {
        let mut s = CountMinSketch::new(64, 4);
        for k in 0..300u64 {
            s.add(k, (k % 11 + 1) as u32);
        }
        let keys: Vec<u64> = (0..400).map(|i| i * 13 % 350).collect();
        let batched = s.estimate_many(&keys);
        assert_eq!(batched.len(), keys.len());
        for (&k, &est) in keys.iter().zip(&batched) {
            assert_eq!(est, s.estimate(k), "key {k}");
        }
        assert!(s.estimate_many(&[]).is_empty());
    }

    #[test]
    fn error_bound_holds_for_most_keys() {
        let mut s = CountMinSketch::with_error(0.01, 0.01);
        let n = 10_000u64;
        for k in 0..n {
            s.inc(k);
        }
        let bound = s.current_error_bound().ceil() as u64;
        let violations = (0..n).filter(|&k| s.estimate(k) > 1 + bound).count();
        // delta = 1% failure probability per key; allow generous slack.
        assert!(
            violations < (n / 20) as usize,
            "{violations} of {n} keys exceeded the error bound"
        );
    }

    #[test]
    fn with_error_sizes_match_formula() {
        let s = CountMinSketch::with_error(0.001, 0.000_35);
        assert_eq!(s.width(), (std::f64::consts::E / 0.001).ceil() as usize);
        assert_eq!(s.depth(), 8); // ln(1/0.00035) ≈ 7.96 → paper's depth 8
    }

    #[test]
    fn paper_sizing_example_fits_8mb() {
        // §3.3.1: width 2^18, depth 8 → 8 MB table.
        let s = CountMinSketch::new(1 << 18, 8);
        assert_eq!(s.table_bytes(), 8 << 20);
    }

    #[test]
    fn merge_matches_sequential_updates() {
        let mut a = CountMinSketch::new(256, 4);
        let mut b = CountMinSketch::new(256, 4);
        let mut whole = CountMinSketch::new(256, 4);
        for k in 0..500u64 {
            if k % 2 == 0 {
                a.inc(k);
            } else {
                b.inc(k);
            }
            whole.inc(k);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.items(), whole.items());
        for k in 0..500u64 {
            assert_eq!(a.estimate(k), whole.estimate(k));
        }
    }

    #[test]
    fn merge_rejects_mismatched_dimensions() {
        let mut a = CountMinSketch::new(128, 4);
        let b = CountMinSketch::new(64, 4);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err.expected, (128, 4));
        assert_eq!(err.got, (64, 4));
        assert!(err.to_string().contains("mismatch"));
    }

    #[test]
    fn clear_resets() {
        let mut s = CountMinSketch::new(64, 2);
        s.add(1, 10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate(1), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut s = CountMinSketch::new(4, 1);
        s.add(0, u32::MAX);
        s.add(0, 10);
        assert_eq!(s.estimate(0), u64::from(u32::MAX));
    }
}
