//! The Count Sketch of Charikar, Chen and Farach-Colton — the
//! predecessor design discussed in the paper's §2.4.
//!
//! Unlike the count-min sketch, each update *adds or subtracts* one per
//! row (a second hash chooses the sign) and a query takes the median of
//! the signed row estimates. The estimate is unbiased but can
//! under-count, which is why ElGA does not use it for replication
//! decisions; it is kept here for the design-choice discussion and as a
//! cross-check in tests and benchmarks.

use elga_hash::funcs::wang64;
use serde::{Deserialize, Serialize};

/// A count sketch over `u64` keys with signed 64-bit counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountSketch {
    width: usize,
    depth: usize,
    table: Vec<i64>,
    items: u64,
}

#[inline]
fn bucket_seed(row: usize) -> u64 {
    wang64((row as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x1234_5678_9ABC_DEF0)
}

#[inline]
fn sign_seed(row: usize) -> u64 {
    wang64((row as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB) ^ 0x0FED_CBA9_8765_4321)
}

impl CountSketch {
    /// Create a `depth × width` count sketch.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        CountSketch {
            width,
            depth,
            table: vec![0; width * depth],
            items: 0,
        }
    }

    /// Width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Depth (number of rows).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total magnitude of updates applied.
    pub fn items(&self) -> u64 {
        self.items
    }

    #[inline]
    fn cell(&self, row: usize, key: u64) -> (usize, i64) {
        let b = wang64(key ^ bucket_seed(row)) % self.width as u64;
        let sign = if wang64(key ^ sign_seed(row)) & 1 == 0 {
            1
        } else {
            -1
        };
        (row * self.width + b as usize, sign)
    }

    /// Add `count` (may be negative: turnstile updates are supported).
    pub fn add(&mut self, key: u64, count: i64) {
        for row in 0..self.depth {
            let (idx, sign) = self.cell(row, key);
            self.table[idx] += sign * count;
        }
        self.items += count.unsigned_abs();
    }

    /// Add one to `key`.
    #[inline]
    pub fn inc(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Median-of-rows point estimate for `key`. Unbiased, but unlike
    /// count-min it may under-count.
    pub fn estimate(&self, key: u64) -> i64 {
        let mut rows: Vec<i64> = (0..self.depth)
            .map(|row| {
                let (idx, sign) = self.cell(row, key);
                sign * self.table[idx]
            })
            .collect();
        rows.sort_unstable();
        let n = rows.len();
        if n % 2 == 1 {
            rows[n / 2]
        } else {
            (rows[n / 2 - 1] + rows[n / 2]) / 2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_sparse() {
        let mut s = CountSketch::new(512, 5);
        s.add(3, 41);
        assert_eq!(s.estimate(3), 41);
        assert_eq!(s.estimate(4), 0);
    }

    #[test]
    fn supports_deletions() {
        let mut s = CountSketch::new(512, 5);
        s.add(9, 10);
        s.add(9, -4);
        assert_eq!(s.estimate(9), 6);
    }

    #[test]
    fn roughly_unbiased_under_collisions() {
        let mut s = CountSketch::new(16, 7);
        for k in 0..1000u64 {
            s.inc(k);
        }
        // Mean signed error over many keys should be near zero.
        let total: i64 = (0..1000u64).map(|k| s.estimate(k) - 1).sum();
        let mean = total as f64 / 1000.0;
        assert!(mean.abs() < 20.0, "bias too large: {mean}");
    }

    #[test]
    fn can_underestimate_unlike_cms() {
        // Demonstrate the §2.4 distinction: with heavy collisions, some
        // count-sketch estimate falls below truth, while count-min never
        // does (see cms::tests::never_underestimates).
        let mut s = CountSketch::new(4, 1);
        for k in 0..64u64 {
            s.add(k, 8);
        }
        let under = (0..64u64).any(|k| s.estimate(k) < 8);
        assert!(under, "expected at least one under-estimate");
    }

    #[test]
    fn items_tracks_magnitude() {
        let mut s = CountSketch::new(8, 2);
        s.add(1, 5);
        s.add(2, -3);
        assert_eq!(s.items(), 8);
    }
}
