//! Sketches for ElGA's constant-size global state (paper §2.4, §3.3.1).
//!
//! ElGA's partitioning needs one piece of global knowledge: approximate
//! vertex degrees, to decide which vertices to split across multiple
//! agents. Storing exact degrees would take `O(n)` space on every
//! participant (violating Goal 2), so ElGA broadcasts a
//! [`CountMinSketch`] instead: a `d × w` table of counters whose
//! estimates never under-count and over-count by at most `ε·m` with
//! probability `1 − δ`, in `O(d·w)` space independent of the graph.
//!
//! A classic [`CountSketch`] is included for comparison (it is the
//! predecessor discussed in §2.4 but is not used by the system: its
//! estimates can under-count, which would *unsplit* a heavy vertex).

#![warn(missing_docs)]

pub mod cms;
pub mod countsketch;
pub mod estimator;

pub use cms::CountMinSketch;
pub use countsketch::CountSketch;
pub use estimator::DegreeEstimator;
