//! Degree estimation on top of the count-min sketch.
//!
//! ElGA counts every edge endpoint it ingests into a local sketch;
//! directories merge agent sketches and broadcast the result, so every
//! Participant can estimate any vertex's degree in `O(d)` (§3.4.1,
//! "Querying the degree estimate takes O(d), where d is typically 8").
//! Because the sketch only grows, deletions leave estimates in place —
//! the estimate remains an upper bound on the true degree, which is the
//! safe direction for replication.

use crate::cms::{CountMinSketch, DimensionMismatch};
use serde::{Deserialize, Serialize};

/// Counts edge endpoints and answers degree queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeEstimator {
    sketch: CountMinSketch,
}

impl DegreeEstimator {
    /// New estimator over a `depth × width` count-min sketch.
    pub fn new(width: usize, depth: usize) -> Self {
        DegreeEstimator {
            sketch: CountMinSketch::new(width, depth),
        }
    }

    /// Wrap an existing sketch (e.g. one received from a directory).
    pub fn from_sketch(sketch: CountMinSketch) -> Self {
        DegreeEstimator { sketch }
    }

    /// Record the insertion of edge `(u, v)`: both endpoints gain a
    /// degree (ElGA stores in- and out-edges, §4).
    #[inline]
    pub fn record_edge(&mut self, u: u64, v: u64) {
        self.sketch.inc(u);
        if u != v {
            self.sketch.inc(v);
        }
    }

    /// Record `count` additional incident edges on a single vertex.
    #[inline]
    pub fn record_endpoint(&mut self, v: u64, count: u32) {
        self.sketch.add(v, count);
    }

    /// Estimated (never under-counted) degree of `v`.
    #[inline]
    pub fn degree(&self, v: u64) -> u64 {
        self.sketch.estimate(v)
    }

    /// Batched [`DegreeEstimator::degree`]: one estimate per vertex, in
    /// order (see [`CountMinSketch::estimate_many`]).
    #[inline]
    pub fn degrees_many(&self, vs: &[u64]) -> Vec<u64> {
        self.sketch.estimate_many(vs)
    }

    /// Total endpoint count seen (2× the number of non-loop edges).
    pub fn endpoints(&self) -> u64 {
        self.sketch.items()
    }

    /// The wrapped sketch, for broadcast.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }

    /// Merge another estimator's counts (agent → directory roll-up).
    pub fn merge(&mut self, other: &DegreeEstimator) -> Result<(), DimensionMismatch> {
        self.sketch.merge(&other.sketch)
    }

    /// Replace the sketch with a broadcast copy, keeping dimensions.
    pub fn replace(&mut self, sketch: CountMinSketch) {
        self.sketch = sketch;
    }

    /// Forget all counts.
    pub fn clear(&mut self) {
        self.sketch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_counted_on_both_endpoints() {
        let mut d = DegreeEstimator::new(1024, 4);
        d.record_edge(1, 2);
        d.record_edge(1, 3);
        assert_eq!(d.degree(1), 2);
        assert_eq!(d.degree(2), 1);
        assert_eq!(d.degree(3), 1);
        assert_eq!(d.degree(99), 0);
        assert_eq!(d.endpoints(), 4);
    }

    #[test]
    fn self_loop_counts_once() {
        let mut d = DegreeEstimator::new(1024, 4);
        d.record_edge(5, 5);
        assert_eq!(d.degree(5), 1);
    }

    #[test]
    fn estimates_upper_bound_true_degree() {
        let mut d = DegreeEstimator::new(32, 4); // small: force collisions
        let mut truth = vec![0u64; 200];
        for i in 0..1000u64 {
            let (u, v) = (i % 200, (i * 7 + 1) % 200);
            if u != v {
                d.record_edge(u, v);
                truth[u as usize] += 1;
                truth[v as usize] += 1;
            }
        }
        for (v, &t) in truth.iter().enumerate() {
            assert!(d.degree(v as u64) >= t, "under-estimate at {v}");
        }
    }

    #[test]
    fn merge_combines_agent_views() {
        let mut a = DegreeEstimator::new(256, 4);
        let mut b = DegreeEstimator::new(256, 4);
        a.record_edge(1, 2);
        b.record_edge(1, 3);
        a.merge(&b).unwrap();
        assert_eq!(a.degree(1), 2);
    }

    #[test]
    fn replace_adopts_broadcast() {
        let mut local = DegreeEstimator::new(256, 4);
        let mut global = DegreeEstimator::new(256, 4);
        global.record_endpoint(9, 55);
        local.replace(global.sketch().clone());
        assert_eq!(local.degree(9), 55);
    }
}
