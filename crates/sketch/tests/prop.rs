//! Property-based tests for the sketch layer.

use elga_sketch::{CountMinSketch, CountSketch, DegreeEstimator};
use proptest::prelude::*;

proptest! {
    /// The count-min invariant: estimates never fall below truth,
    /// regardless of table size or update pattern.
    #[test]
    fn cms_never_underestimates(
        width in 1usize..64,
        depth in 1usize..8,
        updates in prop::collection::vec((0u64..64, 1u32..16), 0..256),
    ) {
        let mut s = CountMinSketch::new(width, depth);
        let mut truth = std::collections::HashMap::new();
        for (k, c) in &updates {
            s.add(*k, *c);
            *truth.entry(*k).or_insert(0u64) += u64::from(*c);
        }
        for (k, t) in truth {
            prop_assert!(s.estimate(k) >= t);
        }
    }

    /// Merging sketches is equivalent to applying both update streams
    /// to one sketch.
    #[test]
    fn cms_merge_equals_union(
        left in prop::collection::vec((0u64..128, 1u32..8), 0..128),
        right in prop::collection::vec((0u64..128, 1u32..8), 0..128),
    ) {
        let mut a = CountMinSketch::new(64, 4);
        let mut b = CountMinSketch::new(64, 4);
        let mut u = CountMinSketch::new(64, 4);
        for (k, c) in &left { a.add(*k, *c); u.add(*k, *c); }
        for (k, c) in &right { b.add(*k, *c); u.add(*k, *c); }
        a.merge(&b).unwrap();
        prop_assert_eq!(a.items(), u.items());
        for k in 0..128u64 {
            prop_assert_eq!(a.estimate(k), u.estimate(k));
        }
    }

    /// Update order never affects a count-min sketch.
    #[test]
    fn cms_is_order_invariant(
        mut updates in prop::collection::vec((0u64..64, 1u32..8), 1..64),
    ) {
        let mut forward = CountMinSketch::new(32, 3);
        for (k, c) in &updates { forward.add(*k, *c); }
        updates.reverse();
        let mut backward = CountMinSketch::new(32, 3);
        for (k, c) in &updates { backward.add(*k, *c); }
        prop_assert_eq!(forward, backward);
    }

    /// Count sketch supports turnstile streams: inserting then deleting
    /// the same amount restores the zero estimate for sparse keys.
    #[test]
    fn countsketch_turnstile_cancels(
        key in any::<u64>(),
        count in 1i64..1000,
    ) {
        let mut s = CountSketch::new(128, 5);
        s.add(key, count);
        s.add(key, -count);
        prop_assert_eq!(s.estimate(key), 0);
    }

    /// Degree estimator over any edge list upper-bounds the true degree
    /// of every vertex.
    #[test]
    fn estimator_upper_bounds_degree(
        edges in prop::collection::vec((0u64..40, 0u64..40), 0..200),
    ) {
        let mut est = DegreeEstimator::new(16, 3);
        let mut truth = vec![0u64; 40];
        for &(u, v) in &edges {
            est.record_edge(u, v);
            if u == v {
                truth[u as usize] += 1;
            } else {
                truth[u as usize] += 1;
                truth[v as usize] += 1;
            }
        }
        for v in 0..40u64 {
            prop_assert!(est.degree(v) >= truth[v as usize]);
        }
    }
}
