//! Durable checkpoint store for bounded-time recovery.
//!
//! The streamer's retained change log makes recovery *possible*; this
//! crate makes it *bounded*. At a quiesced batch boundary every agent
//! serializes its shard state into one checkpoint file, and the driver
//! commits the set as a **generation**. Recovery then loads the latest
//! valid generation and replays only the change-log suffix past its
//! watermark, instead of replaying history from genesis (the model
//! BLADYG uses for its failure-recovery protocol).
//!
//! The store is payload-agnostic: `elga-core` decides what bytes
//! describe an agent (it reuses the migration-bundle vocabulary); this
//! crate owns durability. Three disciplines make a checkpoint safe to
//! trust:
//!
//! * **Atomic writes.** Every file is written to a `.tmp` sibling,
//!   fsynced, then renamed into place (and the directory fsynced), so a
//!   crash never leaves a half-written file under a final name.
//! * **Self-validation.** Every shard file carries a magic/version tag,
//!   its generation, epoch, agent, and watermark, the payload length,
//!   and a CRC-64 of the payload. A generation also carries a
//!   `MANIFEST` naming the agents that must be present; the manifest is
//!   written **last**, after every shard has been read back and
//!   verified (the commit *scrub*), so an unreadable generation is
//!   never visible as committed.
//! * **The fallback ladder.** [`CheckpointStore::latest_valid`] walks
//!   generations newest-first and re-validates every shard; a torn,
//!   truncated, or bit-flipped file disqualifies its generation and
//!   recovery falls back one more generation (paying a longer suffix
//!   replay) — never restoring from a corrupt file, never producing a
//!   wrong answer.
//!
//! Faults are injected with [`DiskFault`] below the write path, in the
//! same seeded style as `elga-net`'s [`FaultyTransport`]: the writer is
//! *not told* its bytes were torn or flipped — damage is only
//! discoverable by reading back, which is exactly what scrub and
//! restore do.

#![warn(missing_docs)]

use elga_net::{DiskFault, SplitMix64};
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic + version tag opening every shard file.
const SHARD_MAGIC: &[u8; 8] = b"ELGACKP1";
/// Magic + version tag opening every manifest file. Version 2 added
/// the converged dangling book `(mass, n)` so a restore can re-anchor
/// the delta engine's telescoped dangling series at the checkpoint cut.
const MANIFEST_MAGIC: &[u8; 8] = b"ELGAMAN2";
/// Fixed shard header: magic, gen, epoch, agent, watermark, payload
/// length, payload CRC-64.
const SHARD_HEADER: usize = 8 + 6 * 8;

/// Errors surfaced by the checkpoint store.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure (create, read, rename, fsync).
    Io(io::Error),
    /// A file failed validation: bad magic, short read, wrong
    /// generation/agent, or checksum mismatch. The string names the
    /// check that failed.
    Corrupt(&'static str),
    /// The requested generation or shard file does not exist.
    Missing,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            CkptError::Missing => write!(f, "checkpoint missing"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::NotFound {
            CkptError::Missing
        } else {
            CkptError::Io(e)
        }
    }
}

/// CRC-64/ECMA-182 table, built at compile time.
const fn crc64_table() -> [u64; 256] {
    const POLY: u64 = 0x42F0_E1EB_A9EA_3693;
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64: [u64; 256] = crc64_table();

/// CRC-64/ECMA-182 of `bytes`. Public so tests can forge and break
/// checksums deliberately.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = 0u64;
    for &b in bytes {
        crc = (crc << 8) ^ CRC64[(((crc >> 56) as u8) ^ b) as usize];
    }
    crc
}

/// Parsed header of one shard file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Checkpoint generation this shard belongs to.
    pub generation: u64,
    /// View epoch at the moment of the checkpoint.
    pub epoch: u64,
    /// Agent id that wrote the shard.
    pub agent: u64,
    /// Change-log watermark: number of records already reflected in
    /// the payload. Replay resumes from this global record index.
    pub watermark: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
}

/// A committed generation as recorded by its manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The generation number (monotonically increasing).
    pub generation: u64,
    /// View epoch at the checkpoint cut.
    pub epoch: u64,
    /// Change-log watermark shared by every shard of the generation.
    pub watermark: u64,
    /// The lead directory's converged dangling mass `S` at the cut —
    /// the anchor of the telescoped dangling series a restored delta
    /// run must resume from. Zero for non-residual programs.
    pub dangling_mass: f64,
    /// Vertex count `n` the converged dangling book was taken under.
    pub dangling_n: u64,
    /// Agents whose shard files make the generation complete.
    pub agents: Vec<u64>,
}

/// Outcome of [`CheckpointStore::latest_valid`]: the manifest chosen
/// plus how many newer committed generations had to be skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidGeneration {
    /// The newest generation whose every shard validated.
    pub manifest: Manifest,
    /// Committed generations newer than the chosen one that failed
    /// validation (the length of the fallback ladder walked).
    pub fallbacks: u64,
}

/// A directory of checkpoint generations.
///
/// Several instances may point at the same directory: each agent holds
/// one to write its own shard, the driver holds one (fault-free) to
/// scrub, commit, prune, and restore.
pub struct CheckpointStore {
    dir: PathBuf,
    faults: DiskFault,
    rng: SplitMix64,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("faults", &self.faults)
            .finish()
    }
}

fn shard_name(generation: u64, agent: u64) -> String {
    format!("g{generation:08}-a{agent}.shard")
}

fn manifest_name(generation: u64) -> String {
    format!("g{generation:08}.manifest")
}

/// Generation number parsed from a store filename, if it is one.
fn parse_generation(name: &str) -> Option<u64> {
    let rest = name.strip_prefix('g')?;
    let digits = &rest.get(..8)?;
    digits.parse().ok()
}

impl CheckpointStore {
    /// Open (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(CkptError::Io)?;
        Ok(Self {
            dir,
            faults: DiskFault::default(),
            rng: SplitMix64::new(0),
        })
    }

    /// Inject storage faults into every subsequent write, rolled from a
    /// [`SplitMix64`] seeded with `seed`. Writers are not told when a
    /// fault fires — validation catches the damage later.
    pub fn with_faults(mut self, faults: DiskFault, seed: u64) -> Self {
        self.faults = faults;
        self.rng = SplitMix64::new(seed);
        self
    }

    /// The directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write `bytes` to `name` atomically: tmp file, fsync, rename,
    /// directory fsync. Disk faults, if configured, silently damage the
    /// bytes that reach the disk.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let mut damaged;
        let mut out: &[u8] = bytes;
        if !self.faults.is_benign() && !bytes.is_empty() {
            damaged = bytes.to_vec();
            if self.faults.torn_write > 0.0 && self.rng.next_f64() < self.faults.torn_write {
                let keep = self.rng.below(bytes.len() as u64) as usize;
                damaged.truncate(keep);
            }
            if !damaged.is_empty()
                && self.faults.corrupt > 0.0
                && self.rng.next_f64() < self.faults.corrupt
            {
                let at = self.rng.below(damaged.len() as u64) as usize;
                damaged[at] ^= 0x40;
            }
            out = &damaged;
        }
        let tmp = self.dir.join(format!("{name}.tmp"));
        let fin = self.dir.join(name);
        {
            let mut f = fs::File::create(&tmp).map_err(CkptError::Io)?;
            f.write_all(out).map_err(CkptError::Io)?;
            f.sync_all().map_err(CkptError::Io)?;
        }
        fs::rename(&tmp, &fin).map_err(CkptError::Io)?;
        // Durability of the rename itself; best effort on platforms
        // where directories cannot be opened for sync.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Write one agent's shard for `generation`. Returns the on-disk
    /// size in bytes (header + payload, before any injected damage).
    pub fn write_shard(
        &mut self,
        generation: u64,
        epoch: u64,
        agent: u64,
        watermark: u64,
        payload: &[u8],
    ) -> Result<u64, CkptError> {
        let mut bytes = Vec::with_capacity(SHARD_HEADER + payload.len());
        bytes.extend_from_slice(SHARD_MAGIC);
        for v in [
            generation,
            epoch,
            agent,
            watermark,
            payload.len() as u64,
            crc64(payload),
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(payload);
        self.write_atomic(&shard_name(generation, agent), &bytes)?;
        Ok(bytes.len() as u64)
    }

    fn parse_shard(
        bytes: &[u8],
        generation: u64,
        agent: u64,
    ) -> Result<(ShardHeader, usize), CkptError> {
        if bytes.len() < SHARD_HEADER {
            return Err(CkptError::Corrupt("shard shorter than header"));
        }
        if &bytes[..8] != SHARD_MAGIC {
            return Err(CkptError::Corrupt("bad shard magic"));
        }
        let mut fields = [0u64; 6];
        for (i, field) in fields.iter_mut().enumerate() {
            let at = 8 + i * 8;
            *field = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        }
        let header = ShardHeader {
            generation: fields[0],
            epoch: fields[1],
            agent: fields[2],
            watermark: fields[3],
            payload_len: fields[4],
        };
        if header.generation != generation || header.agent != agent {
            return Err(CkptError::Corrupt("shard header names wrong gen/agent"));
        }
        if bytes.len() != SHARD_HEADER + header.payload_len as usize {
            return Err(CkptError::Corrupt("shard length mismatch (torn write)"));
        }
        if crc64(&bytes[SHARD_HEADER..]) != fields[5] {
            return Err(CkptError::Corrupt("shard checksum mismatch"));
        }
        Ok((header, SHARD_HEADER))
    }

    /// Read and fully validate one shard, returning header + payload.
    pub fn read_shard(
        &self,
        generation: u64,
        agent: u64,
    ) -> Result<(ShardHeader, Vec<u8>), CkptError> {
        let mut bytes = Vec::new();
        fs::File::open(self.dir.join(shard_name(generation, agent)))?
            .read_to_end(&mut bytes)
            .map_err(CkptError::Io)?;
        let (header, off) = Self::parse_shard(&bytes, generation, agent)?;
        bytes.drain(..off);
        Ok((header, bytes))
    }

    /// Validate one shard without keeping its payload.
    pub fn validate_shard(&self, generation: u64, agent: u64) -> Result<ShardHeader, CkptError> {
        self.read_shard(generation, agent).map(|(h, _)| h)
    }

    /// Scrub every named shard (read back + verify) and, only if all
    /// pass, write the generation's manifest. This is the *commit
    /// point*: a generation without a manifest is invisible, so a torn
    /// or corrupted shard write can never be mistaken for durable
    /// state — the caller keeps its change log and tries again later.
    pub fn commit(
        &mut self,
        generation: u64,
        epoch: u64,
        watermark: u64,
        dangling: (f64, u64),
        agents: &[u64],
    ) -> Result<(), CkptError> {
        for &a in agents {
            let h = self.validate_shard(generation, a)?;
            if h.epoch != epoch || h.watermark != watermark {
                return Err(CkptError::Corrupt("shard cut disagrees with commit"));
            }
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        for v in [
            generation,
            epoch,
            watermark,
            dangling.0.to_bits(),
            dangling.1,
            agents.len() as u64,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for &a in agents {
            bytes.extend_from_slice(&a.to_le_bytes());
        }
        let crc = crc64(&bytes[8..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        self.write_atomic(&manifest_name(generation), &bytes)
    }

    /// Read and validate the manifest of `generation`.
    pub fn manifest(&self, generation: u64) -> Result<Manifest, CkptError> {
        let mut bytes = Vec::new();
        fs::File::open(self.dir.join(manifest_name(generation)))?
            .read_to_end(&mut bytes)
            .map_err(CkptError::Io)?;
        if bytes.len() < 8 + 6 * 8 + 8 {
            return Err(CkptError::Corrupt("manifest shorter than header"));
        }
        if &bytes[..8] != MANIFEST_MAGIC {
            return Err(CkptError::Corrupt("bad manifest magic"));
        }
        let body = &bytes[8..bytes.len() - 8];
        let crc = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        if crc64(body) != crc {
            return Err(CkptError::Corrupt("manifest checksum mismatch"));
        }
        let word = |i: usize| u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().expect("8"));
        let n = word(5) as usize;
        if body.len() != (6 + n) * 8 {
            return Err(CkptError::Corrupt("manifest length mismatch"));
        }
        let manifest = Manifest {
            generation: word(0),
            epoch: word(1),
            watermark: word(2),
            dangling_mass: f64::from_bits(word(3)),
            dangling_n: word(4),
            agents: (0..n).map(|i| word(6 + i)).collect(),
        };
        if manifest.generation != generation {
            return Err(CkptError::Corrupt("manifest names wrong generation"));
        }
        Ok(manifest)
    }

    /// Committed generation numbers present on disk (manifest files
    /// exist — not necessarily valid), ascending.
    pub fn generations(&self) -> Vec<u64> {
        let mut gens = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".manifest") {
                    if let Some(g) = parse_generation(&name) {
                        gens.push(g);
                    }
                }
            }
        }
        gens.sort_unstable();
        gens.dedup();
        gens
    }

    /// Walk the fallback ladder: newest committed generation first,
    /// re-validating the manifest and every shard it names. The first
    /// fully-valid generation whose watermark is `>= min_watermark`
    /// (records older than `min_watermark` are no longer in the change
    /// log, so an older cut could not be completed by suffix replay)
    /// wins. `None` means no usable generation exists.
    pub fn latest_valid(&self, min_watermark: u64) -> Option<ValidGeneration> {
        let mut fallbacks = 0;
        for &generation in self.generations().iter().rev() {
            let usable = self.manifest(generation).ok().filter(|m| {
                m.watermark >= min_watermark
                    && m.agents
                        .iter()
                        .all(|&a| match self.validate_shard(generation, a) {
                            Ok(h) => h.epoch == m.epoch && h.watermark == m.watermark,
                            Err(_) => false,
                        })
            });
            match usable {
                Some(manifest) => {
                    return Some(ValidGeneration {
                        manifest,
                        fallbacks,
                    })
                }
                None => fallbacks += 1,
            }
        }
        None
    }

    /// Delete every generation older than the newest `keep` committed
    /// ones, plus any orphan shard/tmp files from generations without a
    /// manifest that are older than the survivors. Manifests are
    /// removed first so a crash mid-prune leaves orphans (harmless,
    /// collected next time), never a manifest naming deleted shards.
    pub fn prune(&mut self, keep: usize) -> Result<(), CkptError> {
        let gens = self.generations();
        if gens.len() <= keep {
            return Ok(());
        }
        let cutoff = gens[gens.len() - keep];
        for &g in gens.iter().filter(|&&g| g < cutoff) {
            let _ = fs::remove_file(self.dir.join(manifest_name(g)));
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                let doomed =
                    parse_generation(&name).is_some_and(|g| g < cutoff) || name.ends_with(".tmp");
                if doomed && !name.ends_with(".manifest") {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("elga-ckpt-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).expect("open store")
    }

    fn teardown(store: CheckpointStore) {
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn shard_roundtrip_preserves_header_and_payload() {
        let mut s = tmp_store("roundtrip");
        let payload = b"vertex bytes".to_vec();
        let bytes = s.write_shard(3, 7, 42, 1000, &payload).unwrap();
        assert_eq!(bytes as usize, SHARD_HEADER + payload.len());
        let (h, got) = s.read_shard(3, 42).unwrap();
        assert_eq!(
            h,
            ShardHeader {
                generation: 3,
                epoch: 7,
                agent: 42,
                watermark: 1000,
                payload_len: payload.len() as u64,
            }
        );
        assert_eq!(got, payload);
        teardown(s);
    }

    #[test]
    fn checksum_rejects_a_flipped_byte() {
        let mut s = tmp_store("flip");
        s.write_shard(1, 1, 0, 10, b"payload-to-damage").unwrap();
        let path = s.dir().join(shard_name(1, 0));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            s.read_shard(1, 0),
            Err(CkptError::Corrupt("shard checksum mismatch"))
        ));
        teardown(s);
    }

    #[test]
    fn truncation_is_detected_as_torn() {
        let mut s = tmp_store("trunc");
        s.write_shard(1, 1, 0, 10, &vec![9u8; 256]).unwrap();
        let path = s.dir().join(shard_name(1, 0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            s.read_shard(1, 0),
            Err(CkptError::Corrupt("shard length mismatch (torn write)"))
        ));
        // Truncated inside the header is caught too.
        fs::write(&path, &bytes[..SHARD_HEADER / 2]).unwrap();
        assert!(matches!(s.read_shard(1, 0), Err(CkptError::Corrupt(_))));
        teardown(s);
    }

    #[test]
    fn injected_torn_writes_never_validate() {
        let mut s = tmp_store("faulty").with_faults(DiskFault::new(1.0, 0.0), 0xD15C);
        s.write_shard(1, 1, 0, 10, &vec![7u8; 512]).unwrap();
        assert!(s.validate_shard(1, 0).is_err());
        // Commit scrubs the shard back and must refuse the generation.
        assert!(s.commit(1, 1, 10, (0.0, 0), &[0]).is_err());
        assert!(s.generations().is_empty(), "no manifest committed");
        teardown(s);
    }

    #[test]
    fn injected_corruption_is_deterministic_per_seed() {
        let verdicts: Vec<Vec<bool>> = (0..2)
            .map(|run| {
                let mut s =
                    tmp_store(&format!("det{run}")).with_faults(DiskFault::new(0.4, 0.3), 0x5EED);
                let ok = (0..8)
                    .map(|g| {
                        s.write_shard(g, 1, 0, g * 10, &[3u8; 128]).unwrap();
                        s.validate_shard(g, 0).is_ok()
                    })
                    .collect();
                teardown(s);
                ok
            })
            .collect();
        assert_eq!(verdicts[0], verdicts[1]);
        assert!(verdicts[0].iter().any(|&v| v), "some writes survive");
        assert!(verdicts[0].iter().any(|&v| !v), "some writes damaged");
    }

    #[test]
    fn commit_then_manifest_roundtrip() {
        let mut s = tmp_store("commit");
        for a in [0u64, 1, 5] {
            s.write_shard(2, 9, a, 77, &[a as u8; 16]).unwrap();
        }
        s.commit(2, 9, 77, (0.25, 1000), &[0, 1, 5]).unwrap();
        let m = s.manifest(2).unwrap();
        assert_eq!(
            m,
            Manifest {
                generation: 2,
                epoch: 9,
                watermark: 77,
                dangling_mass: 0.25,
                dangling_n: 1000,
                agents: vec![0, 1, 5],
            }
        );
        assert_eq!(s.generations(), vec![2]);
        teardown(s);
    }

    #[test]
    fn commit_refuses_mismatched_cut() {
        let mut s = tmp_store("cutcheck");
        s.write_shard(1, 1, 0, 50, b"x").unwrap();
        // Shard says watermark 50; committing watermark 60 must fail.
        assert!(matches!(
            s.commit(1, 1, 60, (0.0, 0), &[0]),
            Err(CkptError::Corrupt("shard cut disagrees with commit"))
        ));
        teardown(s);
    }

    #[test]
    fn fallback_ladder_skips_damaged_generations() {
        let mut s = tmp_store("ladder");
        for g in 1..=3u64 {
            s.write_shard(g, g, 0, g * 100, &[g as u8; 64]).unwrap();
            s.commit(g, g, g * 100, (0.0, 0), &[0]).unwrap();
        }
        // Undamaged: newest generation wins with no fallbacks.
        let v = s.latest_valid(0).unwrap();
        assert_eq!((v.manifest.generation, v.fallbacks), (3, 0));

        // Tear generation 3's shard after commit (bit rot / crash
        // during a later overwrite): ladder falls back to 2.
        let p3 = s.dir().join(shard_name(3, 0));
        let bytes = fs::read(&p3).unwrap();
        fs::write(&p3, &bytes[..bytes.len() - 5]).unwrap();
        let v = s.latest_valid(0).unwrap();
        assert_eq!((v.manifest.generation, v.fallbacks), (2, 1));

        // Corrupt generation 2 as well: down to 1, two fallbacks.
        let p2 = s.dir().join(shard_name(2, 0));
        let mut bytes = fs::read(&p2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&p2, bytes).unwrap();
        let v = s.latest_valid(0).unwrap();
        assert_eq!((v.manifest.generation, v.fallbacks), (1, 2));

        // A generation whose records have already been compacted away
        // cannot be completed by suffix replay: min_watermark filters
        // it out and nothing is left.
        assert!(s.latest_valid(150).is_none());
        teardown(s);
    }

    #[test]
    fn prune_keeps_newest_and_collects_orphans() {
        let mut s = tmp_store("prune");
        for g in 1..=4u64 {
            s.write_shard(g, 1, 0, g, &[1]).unwrap();
            s.commit(g, 1, g, (0.0, 0), &[0]).unwrap();
        }
        // Orphan shard from an uncommitted generation 0.
        s.write_shard(0, 1, 0, 0, &[9]).unwrap();
        s.prune(2).unwrap();
        assert_eq!(s.generations(), vec![3, 4]);
        assert!(s.validate_shard(3, 0).is_ok());
        assert!(s.validate_shard(4, 0).is_ok());
        assert!(matches!(s.read_shard(1, 0), Err(CkptError::Missing)));
        assert!(matches!(s.read_shard(0, 0), Err(CkptError::Missing)));
        teardown(s);
    }
}
