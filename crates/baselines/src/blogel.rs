//! A Blogel-like static BSP engine (paper §4.2, §4.7).
//!
//! Blogel is the paper's strongest static baseline: C++/MPI, CSR
//! storage, simple hash vertex partitioning, bulk-synchronous
//! supersteps. This reproduction keeps those properties: the graph is
//! an immutable CSR sliced into per-worker vertex ranges by hash;
//! workers are OS threads; each superstep is compute → barrier →
//! message shuffle → barrier, like Blogel's MPI all-to-all. There is
//! deliberately *no* support for updates: any change requires a full
//! reload, which is exactly the contrast Figures 11/12/15 draw.

use elga_graph::csr::Csr;
use elga_graph::types::VertexId;
use elga_hash::wang64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// A static BSP engine over a partitioned CSR.
pub struct BlogelEngine {
    csr: Csr,
    workers: usize,
    /// Vertex → worker assignment (hash partitioning, as Blogel's
    /// default vertex partitioner).
    part: Vec<u32>,
}

impl BlogelEngine {
    /// Partition `csr` across `workers` threads.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn new(csr: Csr, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let n = csr.num_vertices();
        let part = (0..n)
            .map(|v| (wang64(v as u64) % workers as u64) as u32)
            .collect();
        BlogelEngine { csr, workers, part }
    }

    /// The underlying graph.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Vertices owned by `worker`.
    fn owned(&self, worker: usize) -> impl Iterator<Item = VertexId> + '_ {
        self.part
            .iter()
            .enumerate()
            .filter(move |&(_, &p)| p as usize == worker)
            .map(|(v, _)| v as VertexId)
    }

    /// Synchronous PageRank for `iters` supersteps; returns the rank
    /// vector. Identical math to `elga_graph::reference::pagerank`
    /// (§4.3: "we ensured that all algorithms are the same across each
    /// system").
    pub fn pagerank(&self, damping: f64, iters: usize) -> Vec<f64> {
        let n = self.csr.num_vertices();
        if n == 0 {
            return Vec::new();
        }
        // Ranks are shared read-only per superstep; each worker writes
        // only its own vertices in `next`, synchronized by barriers.
        let rank: Vec<AtomicU64> = (0..n)
            .map(|_| AtomicU64::new((1.0 / n as f64).to_bits()))
            .collect();
        let next: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let dangling = AtomicU64::new(0);
        let barrier = Barrier::new(self.workers);

        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let rank = &rank;
                let next = &next;
                let dangling = &dangling;
                let barrier = &barrier;
                let engine = &*self;
                scope.spawn(move || {
                    for _ in 0..iters {
                        // Phase 1: dangling mass and message scatter
                        // (push model: add into targets atomically —
                        // the message shuffle).
                        let mut local_dangling = 0.0;
                        for v in engine.owned(w) {
                            let r = f64::from_bits(rank[v as usize].load(Ordering::Relaxed));
                            let deg = engine.csr.out_degree(v);
                            if deg == 0 {
                                local_dangling += r;
                            } else {
                                let share = r / deg as f64;
                                for &t in engine.csr.out_neighbors(v) {
                                    atomic_f64_add(&next[t as usize], share);
                                }
                            }
                        }
                        atomic_f64_add(dangling, local_dangling);
                        barrier.wait();
                        // Phase 2: apply.
                        let d_total = f64::from_bits(dangling.load(Ordering::SeqCst));
                        let base = (1.0 - damping) / n as f64 + damping * d_total / n as f64;
                        for v in engine.owned(w) {
                            let sum = f64::from_bits(next[v as usize].load(Ordering::Relaxed));
                            rank[v as usize]
                                .store((base + damping * sum).to_bits(), Ordering::Relaxed);
                        }
                        barrier.wait();
                        // Phase 3: reset buffers (one worker).
                        if w == 0 {
                            dangling.store(0, Ordering::SeqCst);
                        }
                        for v in engine.owned(w) {
                            next[v as usize].store(0, Ordering::Relaxed);
                        }
                        barrier.wait();
                    }
                });
            }
        });
        rank.into_iter()
            .map(|a| f64::from_bits(a.into_inner()))
            .collect()
    }

    /// Synchronous WCC by min-label propagation over both edge
    /// directions; returns the label vector. Counts and returns the
    /// supersteps used.
    pub fn wcc(&self) -> (Vec<VertexId>, usize) {
        let n = self.csr.num_vertices();
        let labels: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();
        let changed = AtomicU64::new(1);
        let barrier = Barrier::new(self.workers);
        let steps = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let labels = &labels;
                let changed = &changed;
                let barrier = &barrier;
                let steps = &steps;
                let engine = &*self;
                scope.spawn(move || loop {
                    barrier.wait();
                    if changed.load(Ordering::SeqCst) == 0 {
                        break;
                    }
                    barrier.wait();
                    if w == 0 {
                        changed.store(0, Ordering::SeqCst);
                        steps.fetch_add(1, Ordering::SeqCst);
                    }
                    barrier.wait();
                    let mut any = false;
                    for v in engine.owned(w) {
                        let mut best = labels[v as usize].load(Ordering::Relaxed);
                        for &u in engine.csr.out_neighbors(v) {
                            best = best.min(labels[u as usize].load(Ordering::Relaxed));
                        }
                        for &u in engine.csr.in_neighbors(v) {
                            best = best.min(labels[u as usize].load(Ordering::Relaxed));
                        }
                        let cur = labels[v as usize].load(Ordering::Relaxed);
                        if best < cur {
                            labels[v as usize].store(best, Ordering::Relaxed);
                            any = true;
                        }
                    }
                    if any {
                        changed.store(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let labels = labels.into_iter().map(AtomicU64::into_inner).collect();
        (labels, steps.into_inner() as usize)
    }
}

/// Lock-free f64 accumulation via CAS on the bit pattern.
fn atomic_f64_add(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + add).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elga_graph::reference;

    fn graph() -> Csr {
        Csr::from_edges(
            None,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 6)],
        )
    }

    #[test]
    fn pagerank_matches_reference_any_worker_count() {
        let csr = graph();
        let expect = reference::pagerank(&csr, 0.85, 25);
        for workers in [1, 2, 4] {
            let engine = BlogelEngine::new(graph(), workers);
            let got = engine.pagerank(0.85, 25);
            assert!(reference::linf(&got, &expect) < 1e-12, "workers={workers}");
        }
    }

    #[test]
    fn wcc_matches_union_find() {
        let engine = BlogelEngine::new(graph(), 3);
        let (labels, steps) = engine.wcc();
        assert!(steps >= 1);
        let expect = reference::wcc(graph().edges());
        for (v, &l) in labels.iter().enumerate() {
            let want = expect.get(&(v as u64)).copied().unwrap_or(v as u64);
            assert_eq!(l, want, "vertex {v}");
        }
    }

    #[test]
    fn empty_graph() {
        let engine = BlogelEngine::new(Csr::default(), 2);
        assert!(engine.pagerank(0.85, 3).is_empty());
        let (labels, _) = engine.wcc();
        assert!(labels.is_empty());
    }

    #[test]
    fn partition_covers_all_vertices() {
        let engine = BlogelEngine::new(graph(), 3);
        let mut seen = vec![false; engine.csr().num_vertices()];
        for w in 0..3 {
            for v in engine.owned(w) {
                assert!(!seen[v as usize], "vertex {v} owned twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn atomic_add_accumulates() {
        let cell = AtomicU64::new(0f64.to_bits());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        atomic_f64_add(&cell, 0.5);
                    }
                });
            }
        });
        assert_eq!(f64::from_bits(cell.into_inner()), 2000.0);
    }
}
