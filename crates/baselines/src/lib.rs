//! Comparator systems for the ElGA evaluation (paper §4.2, §4.8).
//!
//! The paper compares against four systems; each is re-implemented
//! here from scratch with the architectural property that makes it an
//! interesting baseline (see DESIGN.md, "Substitutions"):
//!
//! * [`blogel`] — a Blogel-like *static* BSP engine: CSR storage, hash
//!   vertex partitioning, worker threads with barriers and message
//!   shuffles. Fast on a fixed graph, incapable of updates — the
//!   "state-of-the-art static system" of §4.2.
//! * [`snapshot`] — a GraphX-like *snapshot* engine: every batch of
//!   changes forces a rebuild of the partitioned immutable snapshot,
//!   after which the iterative algorithm restarts from prior outputs
//!   with changed vertices re-initialized — the partially dynamic
//!   baseline of Figure 15.
//! * [`stinger`] — a STINGER-like shared-memory *dynamic* structure
//!   maintaining connected components incrementally, with the O(1)
//!   same-component fast path that produces the paper's bimodal batch
//!   times (Figure 13).
//! * [`gap`] — GAPbs-like shared-memory static kernels (parallel
//!   Shiloach–Vishkin WCC, pull PageRank) for the single-node COST
//!   comparison (§4.8).

#![warn(missing_docs)]

pub mod blogel;
pub mod gap;
pub mod snapshot;
pub mod stinger;

pub use blogel::BlogelEngine;
pub use gap::GapGraph;
pub use snapshot::SnapshotEngine;
pub use stinger::Stinger;
