//! A STINGER-like shared-memory dynamic connected-components
//! maintainer (paper §4.8, Figure 13).
//!
//! STINGER is "a specialized inherently shared-memory algorithm and
//! system" maintaining components under streaming insertions. The
//! property responsible for the paper's Figure 13 shape is its global
//! view: an insertion whose endpoints are already in the same
//! component is O(1) ("STINGER can likely optimize for some easy
//! batches due to its global view. It has a bimodal distribution"),
//! while a component merge relabels the smaller side. Deletions fall
//! back to recomputing the affected component.

use elga_graph::types::VertexId;
use elga_hash::{FxHashMap, FxHashSet};

/// How an insertion was handled — the two modes of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Endpoints already shared a component: O(1) fast path.
    FastPath,
    /// Components merged; the smaller side was relabeled (work
    /// proportional to its size).
    Merged {
        /// Vertices relabeled.
        relabeled: usize,
    },
}

/// Shared-memory dynamic graph with maintained component labels.
#[derive(Debug, Default)]
pub struct Stinger {
    /// Undirected adjacency (both directions stored).
    adj: FxHashMap<VertexId, Vec<VertexId>>,
    edges: FxHashSet<(VertexId, VertexId)>,
    /// Component label per vertex (min vertex id in component).
    label: FxHashMap<VertexId, VertexId>,
    /// Members per component label — the "global view" that enables
    /// O(size) merges.
    members: FxHashMap<VertexId, Vec<VertexId>>,
}

fn norm(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl Stinger {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Component label of `v`.
    pub fn component(&self, v: VertexId) -> Option<VertexId> {
        self.label.get(&v).copied()
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.members.len()
    }

    fn ensure_vertex(&mut self, v: VertexId) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.label.entry(v) {
            e.insert(v);
            self.members.insert(v, vec![v]);
            self.adj.entry(v).or_default();
        }
    }

    /// Insert an (undirected) edge, maintaining labels. Returns how
    /// the insertion was absorbed; `None` if the edge already existed.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> Option<InsertOutcome> {
        let key = norm(u, v);
        if !self.edges.insert(key) {
            return None;
        }
        self.ensure_vertex(u);
        self.ensure_vertex(v);
        if u != v {
            self.adj.get_mut(&u).expect("ensured").push(v);
            self.adj.get_mut(&v).expect("ensured").push(u);
        }
        let lu = self.label[&u];
        let lv = self.label[&v];
        if lu == lv {
            return Some(InsertOutcome::FastPath);
        }
        // Merge the smaller component into the larger (by member count)
        // but keep the minimum label, matching WCC conventions.
        let (small, big) = if self.members[&lu].len() <= self.members[&lv].len() {
            (lu, lv)
        } else {
            (lv, lu)
        };
        let keep = small.min(big);
        let moved = self.members.remove(&small).expect("component exists");
        let relabeled = moved.len();
        if keep == small {
            // Relabel the *big* side's label to keep, still moving the
            // fewer `moved` vertices into `keep`'s list after renaming.
            let big_members = self.members.remove(&big).expect("component exists");
            for &m in &big_members {
                self.label.insert(m, keep);
            }
            let mut all = big_members;
            all.extend(moved);
            self.members.insert(keep, all);
            return Some(InsertOutcome::Merged {
                relabeled: self.members[&keep].len(),
            });
        }
        for &m in &moved {
            self.label.insert(m, keep);
        }
        self.members.get_mut(&keep).expect("kept").extend(moved);
        Some(InsertOutcome::Merged { relabeled })
    }

    /// Delete an (undirected) edge; recompute the affected component
    /// by BFS (the slow path for dynamic deletions). Returns whether
    /// the edge existed.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> bool {
        let key = norm(u, v);
        if !self.edges.remove(&key) {
            return false;
        }
        if u != v {
            if let Some(n) = self.adj.get_mut(&u) {
                if let Some(p) = n.iter().position(|&x| x == v) {
                    n.swap_remove(p);
                }
            }
            if let Some(n) = self.adj.get_mut(&v) {
                if let Some(p) = n.iter().position(|&x| x == u) {
                    n.swap_remove(p);
                }
            }
        }
        // Recompute the component that held the edge.
        let old = self.label[&u];
        let members = self.members.remove(&old).unwrap_or_default();
        // BFS-partition the old component's members.
        let mut unassigned: FxHashSet<VertexId> = members.iter().copied().collect();
        while let Some(&seed) = unassigned.iter().next() {
            let mut frontier = vec![seed];
            let mut comp = vec![];
            let mut min = seed;
            unassigned.remove(&seed);
            while let Some(x) = frontier.pop() {
                comp.push(x);
                min = min.min(x);
                for &y in &self.adj[&x] {
                    if unassigned.remove(&y) {
                        frontier.push(y);
                    }
                }
            }
            for &m in &comp {
                self.label.insert(m, min);
            }
            self.members.insert(min, comp);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elga_graph::reference;

    #[test]
    fn insert_fast_path_vs_merge() {
        let mut s = Stinger::new();
        assert!(matches!(s.insert(1, 2), Some(InsertOutcome::Merged { .. })));
        assert!(matches!(s.insert(3, 2), Some(InsertOutcome::Merged { .. })));
        // Closing a triangle: same component already.
        assert_eq!(s.insert(1, 3), Some(InsertOutcome::FastPath));
        assert_eq!(s.insert(1, 3), None, "duplicate");
        assert_eq!(s.num_components(), 1);
        assert_eq!(s.component(3), Some(1));
    }

    #[test]
    fn labels_are_component_minimums() {
        let mut s = Stinger::new();
        s.insert(10, 11);
        s.insert(12, 11);
        s.insert(5, 12);
        for v in [5, 10, 11, 12] {
            assert_eq!(s.component(v), Some(5));
        }
    }

    #[test]
    fn delete_splits_component() {
        let mut s = Stinger::new();
        s.insert(1, 2);
        s.insert(2, 3);
        s.insert(3, 4);
        assert!(s.delete(2, 3));
        assert!(!s.delete(2, 3));
        assert_eq!(s.component(1), Some(1));
        assert_eq!(s.component(2), Some(1));
        assert_eq!(s.component(3), Some(3));
        assert_eq!(s.component(4), Some(3));
        assert_eq!(s.num_components(), 2);
    }

    #[test]
    fn delete_bridge_vs_cycle_edge() {
        let mut s = Stinger::new();
        // Triangle: deleting an edge keeps one component.
        s.insert(1, 2);
        s.insert(2, 3);
        s.insert(3, 1);
        s.delete(1, 2);
        assert_eq!(s.num_components(), 1);
        assert_eq!(s.component(2), Some(1));
    }

    #[test]
    fn matches_reference_over_random_stream() {
        let mut s = Stinger::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let edges: Vec<(u64, u64)> = (0..300)
            .map(|i| {
                let u = elga_hash::wang64(i) % 60;
                let v = elga_hash::wang64(i * 31 + 7) % 60;
                (u, v)
            })
            .collect();
        for (i, &(u, v)) in edges.iter().enumerate() {
            s.insert(u, v);
            model.push((u, v));
            if i % 5 == 4 {
                // Delete a pseudo-random earlier edge.
                let idx = (elga_hash::wang64(i as u64) as usize) % model.len();
                let (du, dv) = model.swap_remove(idx);
                s.delete(du, dv);
            }
        }
        // Compare against union-find on the surviving edges.
        let expect = reference::wcc(model.iter().copied().filter(|&(u, v)| u != v));
        for (&v, &l) in &expect {
            assert_eq!(s.component(v), Some(l), "vertex {v}");
        }
    }

    #[test]
    fn self_loop_is_fast() {
        let mut s = Stinger::new();
        assert_eq!(s.insert(7, 7), Some(InsertOutcome::FastPath));
        assert_eq!(s.component(7), Some(7));
    }
}
