//! A GraphX-like snapshot engine (paper §4.9, Figure 15).
//!
//! "For snapshot-based systems or partially dynamic systems, such as
//! GraphX, the standard approach is to initialize the iterative
//! algorithm with prior outputs, re-initialize any new or changed
//! vertices, and run the iterative algorithm to convergence."
//!
//! The architectural cost reproduced here is the *rebuild*: snapshots
//! are immutable, so every batch forces re-materializing the
//! partitioned CSR from the full edge list before any computation can
//! start — real work proportional to `m`, not to the batch (no
//! artificial sleeps; see DESIGN.md). The incremental computation then
//! reuses prior labels, exactly as the paper's best-case GraphX
//! baseline ("we completely ignore partitioning costs ... we show the
//! best achievable performance").

#![allow(clippy::needless_range_loop)] // index-based loops mirror the math

use crate::blogel::BlogelEngine;
use elga_graph::csr::Csr;
use elga_graph::types::{Batch, VertexId};
use elga_hash::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Timing breakdown of one snapshot batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchCost {
    /// Time to rebuild the immutable snapshot (CSR + partitions).
    pub rebuild: Duration,
    /// Time to run the incremental computation to convergence.
    pub compute: Duration,
    /// Supersteps until convergence.
    pub iterations: usize,
}

/// A snapshot-at-a-time graph engine maintaining WCC labels.
pub struct SnapshotEngine {
    edges: FxHashSet<(VertexId, VertexId)>,
    workers: usize,
    labels: FxHashMap<VertexId, VertexId>,
}

impl SnapshotEngine {
    /// New engine with `workers` compute threads.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0);
        SnapshotEngine {
            edges: FxHashSet::default(),
            workers,
            labels: FxHashMap::default(),
        }
    }

    /// Current edge count.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Current label of `v`, if computed.
    pub fn label(&self, v: VertexId) -> Option<VertexId> {
        self.labels.get(&v).copied()
    }

    /// Load initial edges and compute WCC from scratch.
    pub fn load(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> BatchCost {
        self.edges = edges.into_iter().collect();
        let t0 = Instant::now();
        let (csr, ids) = self.rebuild();
        let rebuild = t0.elapsed();
        let t1 = Instant::now();
        let engine = BlogelEngine::new(csr, self.workers);
        let (labels, iterations) = engine.wcc();
        self.labels = ids
            .iter()
            .enumerate()
            .map(|(dense, &orig)| (orig, ids[labels[dense] as usize]))
            .collect();
        BatchCost {
            rebuild,
            compute: t1.elapsed(),
            iterations,
        }
    }

    /// Apply a batch: mutate the edge set, rebuild the snapshot, and
    /// recompute incrementally (prior labels retained; touched and new
    /// vertices re-initialized).
    pub fn apply_batch(&mut self, batch: &Batch) -> BatchCost {
        let mut touched: FxHashSet<VertexId> = FxHashSet::default();
        let mut any_delete = false;
        for c in &batch.changes {
            let e = (c.edge.src, c.edge.dst);
            if c.is_insert() {
                self.edges.insert(e);
            } else if self.edges.remove(&e) {
                any_delete = true;
            }
            touched.insert(e.0);
            touched.insert(e.1);
        }

        // The architectural tax: re-materialize the whole snapshot.
        let t0 = Instant::now();
        let (csr, ids) = self.rebuild();
        let rebuild = t0.elapsed();

        let t1 = Instant::now();
        // Seed labels from prior output; re-initialize touched/new
        // vertices. Deletions invalidate the affected components
        // entirely (labels may no longer be reachable).
        let mut reset_components: FxHashSet<VertexId> = FxHashSet::default();
        if any_delete {
            for &v in &touched {
                if let Some(&l) = self.labels.get(&v) {
                    reset_components.insert(l);
                }
            }
        }
        let seed: Vec<VertexId> = ids
            .iter()
            .map(|&orig| match self.labels.get(&orig) {
                Some(&l) if !touched.contains(&orig) && !reset_components.contains(&l) => l,
                _ => orig,
            })
            .collect();
        let (labels, iterations) = wcc_from_seed(&csr, &ids, seed, self.workers);
        self.labels = labels;
        BatchCost {
            rebuild,
            compute: t1.elapsed(),
            iterations,
        }
    }

    /// Materialize the dense CSR and the dense→original id map.
    fn rebuild(&self) -> (Csr, Vec<VertexId>) {
        let mut ids: Vec<VertexId> = self.edges.iter().flat_map(|&(u, v)| [u, v]).collect();
        ids.sort_unstable();
        ids.dedup();
        let index: FxHashMap<VertexId, VertexId> = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as VertexId))
            .collect();
        let dense: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .map(|&(u, v)| (index[&u], index[&v]))
            .collect();
        (Csr::from_edges(Some(ids.len()), &dense), ids)
    }
}

/// Min-label propagation seeded from prior labels (the incremental
/// computation). Returns converged labels (in original ids) and the
/// iteration count.
fn wcc_from_seed(
    csr: &Csr,
    ids: &[VertexId],
    seed: Vec<VertexId>,
    _workers: usize,
) -> (FxHashMap<VertexId, VertexId>, usize) {
    let index: FxHashMap<VertexId, VertexId> = ids
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as VertexId))
        .collect();
    // Seed labels are original ids; propagate their minimum per
    // component (labels themselves act as opaque ordered tokens).
    let mut labels = seed;
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for v in 0..csr.num_vertices() {
            let mut best = labels[v];
            for &u in csr.out_neighbors(v as VertexId) {
                best = best.min(labels[u as usize]);
            }
            for &u in csr.in_neighbors(v as VertexId) {
                best = best.min(labels[u as usize]);
            }
            if best < labels[v] {
                labels[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Normalize: a component's label token may be a stale original id;
    // map through index when it still exists, else keep (it is only an
    // equivalence-class token, but tests expect min-vertex labels, so
    // do one canonicalization pass).
    let mut canon: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    for (dense, &l) in labels.iter().enumerate() {
        let orig = ids[dense];
        let entry = canon.entry(l).or_insert(orig);
        *entry = (*entry).min(orig);
    }
    let out = labels
        .iter()
        .enumerate()
        .map(|(dense, l)| (ids[dense], canon[l]))
        .collect();
    let _ = index;
    (out, iterations)
}

/// GraphX-style PageRank: each superstep materializes the full message
/// collection and groups it by destination — the RDD shuffle that
/// dominates GraphX's per-iteration cost (every iteration produces new
/// immutable datasets; §4.2's baseline behavior, reproduced as real
/// allocation/grouping work rather than simulated delay).
pub fn rdd_pagerank(csr: &Csr, damping: f64, iters: usize) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        // Stage 1: materialize the message dataset (like
        // `triplets.map(...)`).
        let mut messages: Vec<(VertexId, f64)> = Vec::with_capacity(csr.num_edges());
        let mut dangling = 0.0;
        for v in 0..n {
            let deg = csr.out_degree(v as VertexId);
            if deg == 0 {
                dangling += rank[v];
                continue;
            }
            let share = rank[v] / deg as f64;
            for &t in csr.out_neighbors(v as VertexId) {
                messages.push((t, share));
            }
        }
        // Stage 2: shuffle — group by destination (sort-based, as a
        // Spark hash/sort shuffle materializes and reorders).
        messages.sort_unstable_by_key(|&(t, _)| t);
        // Stage 3: reduce and join into the new immutable rank dataset.
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        let mut next = vec![base; n];
        for (t, share) in messages {
            next[t as usize] += damping * share;
        }
        rank = next;
    }
    rank
}

/// GraphX-style WCC with the same materialize-shuffle-reduce structure.
/// Returns `(labels, supersteps)`.
pub fn rdd_wcc(csr: &Csr) -> (Vec<VertexId>, usize) {
    let n = csr.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as u64).collect();
    let mut steps = 0;
    loop {
        steps += 1;
        let mut messages: Vec<(VertexId, VertexId)> = Vec::with_capacity(csr.num_edges() * 2);
        for v in 0..n {
            let l = labels[v];
            for &t in csr.out_neighbors(v as VertexId) {
                messages.push((t, l));
            }
            for &t in csr.in_neighbors(v as VertexId) {
                messages.push((t, l));
            }
        }
        messages.sort_unstable();
        let mut next = labels.clone();
        let mut changed = false;
        for (t, l) in messages {
            if l < next[t as usize] {
                next[t as usize] = l;
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    (labels, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elga_graph::reference;
    use elga_graph::types::EdgeChange;

    #[test]
    fn rdd_pagerank_matches_reference() {
        let csr = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let got = rdd_pagerank(&csr, 0.85, 20);
        let expect = reference::pagerank(&csr, 0.85, 20);
        assert!(reference::linf(&got, &expect) < 1e-12);
    }

    #[test]
    fn rdd_wcc_matches_reference() {
        let edges = [(0u64, 1u64), (1, 2), (5, 6), (7, 5)];
        let csr = Csr::from_edges(None, &edges);
        let (labels, steps) = rdd_wcc(&csr);
        assert!(steps >= 1);
        let expect = reference::wcc(edges.iter().copied());
        for (v, &l) in labels.iter().enumerate() {
            let want = expect.get(&(v as u64)).copied().unwrap_or(v as u64);
            assert_eq!(l, want);
        }
    }

    #[test]
    fn load_computes_wcc() {
        let mut s = SnapshotEngine::new(2);
        let cost = s.load([(1, 2), (2, 3), (10, 11)]);
        assert!(cost.iterations >= 1);
        assert_eq!(s.label(3), Some(1));
        assert_eq!(s.label(11), Some(10));
        assert_eq!(s.num_edges(), 3);
    }

    #[test]
    fn insert_batch_merges_components_incrementally() {
        let mut s = SnapshotEngine::new(2);
        s.load([(1, 2), (10, 11)]);
        let cost = s.apply_batch(&Batch::new(1, vec![EdgeChange::insert(2, 10)]));
        assert!(cost.rebuild > Duration::ZERO);
        assert_eq!(s.label(11), Some(1));
        assert_eq!(s.label(1), Some(1));
    }

    #[test]
    fn delete_batch_splits_components() {
        let mut s = SnapshotEngine::new(2);
        s.load([(1, 2), (2, 3), (3, 4)]);
        s.apply_batch(&Batch::new(1, vec![EdgeChange::delete(2, 3)]));
        assert_eq!(s.label(1), Some(1));
        assert_eq!(s.label(2), Some(1));
        assert_eq!(s.label(3), Some(3));
        assert_eq!(s.label(4), Some(3));
    }

    #[test]
    fn matches_reference_after_random_batches() {
        let mut s = SnapshotEngine::new(3);
        let initial: Vec<(u64, u64)> = (0..40).map(|i| (i, (i * 7 + 3) % 40)).collect();
        s.load(initial.iter().copied());
        let b1 = Batch::new(
            1,
            vec![
                EdgeChange::delete(initial[5].0, initial[5].1),
                EdgeChange::insert(40, 41),
                EdgeChange::insert(41, 3),
            ],
        );
        s.apply_batch(&b1);
        let mut model: std::collections::HashSet<(u64, u64)> = initial.iter().copied().collect();
        model.remove(&initial[5]);
        model.insert((40, 41));
        model.insert((41, 3));
        let expect = reference::wcc(model.iter().copied());
        for (&v, &l) in &expect {
            assert_eq!(s.label(v), Some(l), "vertex {v}");
        }
    }

    #[test]
    fn rebuild_cost_scales_with_graph_not_batch() {
        // The defining snapshot property: a 1-edge batch on a larger
        // graph rebuilds more than on a small graph.
        let mut small = SnapshotEngine::new(1);
        small.load((0..200u64).map(|i| (i, i + 1)));
        let mut large = SnapshotEngine::new(1);
        large.load((0..20_000u64).map(|i| (i, i + 1)));
        // Median of several runs to dodge scheduler noise.
        let mut s_times: Vec<Duration> = Vec::new();
        let mut l_times: Vec<Duration> = Vec::new();
        for i in 0..5 {
            let b = Batch::new(i, vec![EdgeChange::insert(1_000_000 + i, 1_000_001 + i)]);
            s_times.push(small.apply_batch(&b).rebuild);
            l_times.push(large.apply_batch(&b).rebuild);
        }
        s_times.sort();
        l_times.sort();
        assert!(
            l_times[2] > s_times[2] * 5,
            "large rebuild {:?} should dwarf small {:?}",
            l_times[2],
            s_times[2]
        );
    }
}
