//! GAPbs-like shared-memory static kernels (paper §4.8).
//!
//! "We also compared with GAPbs, a shared-memory parallel static graph
//! system. GAPbs takes 0.94 seconds, including building its CSR from
//! an in-memory edge list and running WCC." The COST comparison needs
//! exactly that: CSR construction plus parallel static kernels, with
//! no dynamic support. WCC is Shiloach–Vishkin-style pointer hooking
//! with compression; PageRank is a parallel pull kernel.

use elga_graph::csr::Csr;
use elga_graph::types::VertexId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A static shared-memory graph with parallel kernels.
pub struct GapGraph {
    csr: Csr,
    threads: usize,
}

impl GapGraph {
    /// Build from an edge list (CSR construction is part of the
    /// measured cost in §4.8).
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn build(edges: &[(VertexId, VertexId)], threads: usize) -> Self {
        assert!(threads > 0);
        GapGraph {
            csr: Csr::from_edges(None, edges),
            threads,
        }
    }

    /// The graph.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Parallel Shiloach–Vishkin connected components (direction
    /// ignored). Returns min-id labels.
    pub fn wcc(&self) -> Vec<VertexId> {
        let n = self.csr.num_vertices();
        let comp: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();
        if n == 0 {
            return Vec::new();
        }
        let changed = AtomicUsize::new(1);
        while changed.swap(0, Ordering::SeqCst) != 0 {
            // Hooking: point the larger root at the smaller.
            self.par_for(n, |v| {
                let hook = |a: VertexId, b: VertexId| {
                    let ca = comp[a as usize].load(Ordering::Relaxed);
                    let cb = comp[b as usize].load(Ordering::Relaxed);
                    if ca == cb {
                        return;
                    }
                    let (hi, lo) = if ca > cb { (ca, cb) } else { (cb, ca) };
                    // Hook only roots to keep the forest consistent.
                    if comp[hi as usize].load(Ordering::Relaxed) == hi {
                        comp[hi as usize].store(lo, Ordering::Relaxed);
                        changed.fetch_add(1, Ordering::Relaxed);
                    }
                };
                for &w in self.csr.out_neighbors(v) {
                    hook(v, w);
                }
            });
            // Compression: pointer jumping to the root.
            self.par_for(n, |v| {
                let mut c = comp[v as usize].load(Ordering::Relaxed);
                while comp[c as usize].load(Ordering::Relaxed) != c {
                    c = comp[c as usize].load(Ordering::Relaxed);
                }
                comp[v as usize].store(c, Ordering::Relaxed);
            });
        }
        comp.into_iter().map(AtomicU64::into_inner).collect()
    }

    /// Parallel pull PageRank (each thread owns a vertex range; reads
    /// the previous iteration's ranks — no atomics on the hot path).
    pub fn pagerank(&self, damping: f64, iters: usize) -> Vec<f64> {
        let n = self.csr.num_vertices();
        if n == 0 {
            return Vec::new();
        }
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        let mut contrib = vec![0.0f64; n];
        for _ in 0..iters {
            let mut dangling = 0.0;
            for v in 0..n {
                let deg = self.csr.out_degree(v as VertexId);
                if deg == 0 {
                    dangling += rank[v];
                    contrib[v] = 0.0;
                } else {
                    contrib[v] = rank[v] / deg as f64;
                }
            }
            let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
            // Pull phase, parallel over disjoint chunks of `next`.
            let chunk = n.div_ceil(self.threads);
            std::thread::scope(|scope| {
                for (t, out) in next.chunks_mut(chunk).enumerate() {
                    let contrib = &contrib;
                    let csr = &self.csr;
                    scope.spawn(move || {
                        let lo = t * chunk;
                        for (i, slot) in out.iter_mut().enumerate() {
                            let v = (lo + i) as VertexId;
                            let mut sum = 0.0;
                            for &u in csr.in_neighbors(v) {
                                sum += contrib[u as usize];
                            }
                            *slot = base + damping * sum;
                        }
                    });
                }
            });
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }

    /// Static parallel for over `0..n`.
    fn par_for<F>(&self, n: usize, f: F)
    where
        F: Fn(VertexId) + Sync,
    {
        let chunk = n.div_ceil(self.threads).max(1);
        std::thread::scope(|scope| {
            for t in 0..self.threads {
                let f = &f;
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    for v in lo..hi {
                        f(v as VertexId);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elga_graph::reference;

    fn edges() -> Vec<(u64, u64)> {
        vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (5, 6)]
    }

    #[test]
    fn wcc_matches_union_find() {
        for threads in [1, 2, 4] {
            let g = GapGraph::build(&edges(), threads);
            let labels = g.wcc();
            let expect = reference::wcc(edges());
            for (v, &l) in labels.iter().enumerate() {
                let want = expect.get(&(v as u64)).copied().unwrap_or(v as u64);
                assert_eq!(l, want, "threads={threads} vertex {v}");
            }
        }
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = GapGraph::build(&edges(), 3);
        let got = g.pagerank(0.85, 25);
        let expect = reference::pagerank(g.csr(), 0.85, 25);
        assert!(reference::linf(&got, &expect) < 1e-12);
    }

    #[test]
    fn empty_graph_kernels() {
        let g = GapGraph::build(&[], 2);
        assert!(g.wcc().is_empty());
        assert!(g.pagerank(0.85, 5).is_empty());
    }

    #[test]
    fn larger_random_graph_consistent() {
        let edges: Vec<(u64, u64)> = (0..2000)
            .map(|i| {
                (
                    elga_hash::wang64(i) % 500,
                    elga_hash::wang64(i * 13 + 1) % 500,
                )
            })
            .collect();
        let g = GapGraph::build(&edges, 4);
        let labels = g.wcc();
        let expect = reference::wcc(edges.iter().copied());
        for (v, &l) in labels.iter().enumerate() {
            let want = expect.get(&(v as u64)).copied().unwrap_or(v as u64);
            assert_eq!(l, want, "vertex {v}");
        }
    }
}
