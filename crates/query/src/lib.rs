//! Continuous-query serving plane.
//!
//! [`elga_core::client::ClientProxy`] answers one vertex per blocking
//! round trip — the paper's low-latency REQ/REP path (§3.5). This
//! crate is the front for *serving workloads*: many clients, many
//! vertices per question, answers flowing continuously as the graph
//! computes. Three mechanisms, all riding the existing comms plane:
//!
//! * **Batched point reads.** [`QueryClient::query_batch`] groups the
//!   asked vertices by primary agent, ships one `QUERY_BATCH` frame
//!   per agent (borrowed-view wire records, zero-copy decode on the
//!   agent), and issues the per-agent requests concurrently — one
//!   round trip per *agent*, not per vertex.
//! * **Standing subscriptions.** [`QueryClient::subscribe`] registers
//!   vertex interest with every agent; after each completed run the
//!   vertices' primaries push only the values that changed, coalesced
//!   per client through the same credit/backpressure-bounded
//!   [`elga_net::CoalescingOutbox`] the data plane uses. Polling
//!   becomes push.
//! * **Snapshot consistency.** Agents double-buffer the last
//!   *completed* run's values and serve queries exclusively from that
//!   buffer, tagged with the run id and the ingest batch watermark it
//!   was taken at. A reader never observes torn mid-superstep state —
//!   across live runs, elastic view changes, and crash recovery.
//!
//! Query traffic is uncounted in the Mattern barrier sums (like the
//! proxy's), so serving load never perturbs run termination.

#![warn(missing_docs)]

use elga_core::config::SystemConfig;
use elga_core::msg::{self, packet, DirectoryView};
use elga_graph::types::VertexId;
use elga_hash::{AgentId, EdgeLocator};
use elga_net::{Addr, Frame, Mailbox, NetError, Transport, TransportExt};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One served value: the snapshot the answering agent holds for the
/// vertex, plus the consistency tag identifying which completed run
/// (and which ingest watermark) it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotValue {
    /// Encoded program state (decode with the algorithm's `decode`).
    pub state: u64,
    /// Id of the completed run the snapshot was taken from (0 when the
    /// values were restored from a checkpoint, whose run id went
    /// unrecorded).
    pub run: u64,
    /// The answering agent's ingest batch watermark when the snapshot
    /// was taken — the staleness handle of Definition 2.6.
    pub watermark: u64,
}

/// One subscription push: a watched vertex whose value changed in the
/// run that just completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubUpdate {
    /// The subscription the update belongs to.
    pub sub: u64,
    /// The watched vertex.
    pub vertex: VertexId,
    /// Its new snapshot state.
    pub state: u64,
    /// Run id of the completed run that produced the value.
    pub run: u64,
    /// Batch watermark the snapshot was taken at.
    pub watermark: u64,
}

/// Distinguishes client mailboxes when several live in one process.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A serving-plane client: batched reads plus standing subscriptions.
///
/// One `QueryClient` models one downstream consumer; a serving bench
/// or gateway holds many, all sharing the one `Arc<dyn Transport>`.
pub struct QueryClient {
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    directory: Addr,
    view: DirectoryView,
    locator: EdgeLocator,
    /// Bound lazily on the first `subscribe`: the address agents push
    /// `SUB_PUSH` frames to.
    mailbox: Option<Mailbox>,
    /// Client-chosen subscription ids and their watched vertices, kept
    /// so registrations can be replayed at new agents after a view
    /// change.
    subs: HashMap<u64, Vec<VertexId>>,
    next_sub: u64,
}

impl QueryClient {
    /// Connect through a directory address.
    pub fn connect(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        directory: Addr,
    ) -> Result<QueryClient, NetError> {
        let rep = transport.request(
            &directory,
            Frame::signal(packet::GET_VIEW),
            cfg.request_timeout,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        let locator = view.locator();
        Ok(QueryClient {
            transport,
            cfg,
            directory,
            view,
            locator,
            mailbox: None,
            subs: HashMap::new(),
            next_sub: 1,
        })
    }

    /// Refresh the view (after elasticity events) and replay every
    /// standing subscription at the agents of the new view, so vertex
    /// interest follows primaryship.
    pub fn refresh(&mut self) -> Result<(), NetError> {
        let (rep, _) = self.transport.request_with_retry(
            &self.directory,
            Frame::signal(packet::GET_VIEW),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        if view.epoch >= self.view.epoch {
            self.locator = view.locator();
            self.view = view;
        }
        if let Some(addr) = self.mailbox.as_ref().map(|m| m.addr().clone()) {
            for (&sub, vertices) in &self.subs {
                let frame = msg::encode_sub_reg(&addr, sub, vertices);
                for a in &self.view.agents {
                    let _ = self.transport.request_with_retry(
                        &a.addr,
                        frame.clone(),
                        self.cfg.request_timeout,
                        &self.cfg.send_policy,
                    );
                }
            }
        }
        Ok(())
    }

    /// The client's current view.
    pub fn view(&self) -> &DirectoryView {
        &self.view
    }

    // ------------------------------------------------------------------
    // Batched point reads
    // ------------------------------------------------------------------

    /// Query many vertices in one sweep: one `QUERY_BATCH` round trip
    /// per distinct primary agent, issued concurrently. Answers come
    /// back in the order asked; `None` marks a vertex the primary
    /// authoritatively does not hold (never created, or deleted), a
    /// vertex with no completed-run snapshot yet, or an unreachable
    /// agent.
    ///
    /// Every `Some` in the slice an agent answered shares that agent's
    /// single `(run, watermark)` snapshot tag: a batch can straddle
    /// agents (and therefore runs, briefly, while a flip propagates),
    /// but never a superstep.
    pub fn query_batch(&self, vertices: &[VertexId]) -> Vec<Option<SnapshotValue>> {
        let mut answers: Vec<Option<SnapshotValue>> = vec![None; vertices.len()];
        // Group positions by primary agent.
        let mut by_agent: HashMap<AgentId, Vec<usize>> = HashMap::new();
        for (i, &v) in vertices.iter().enumerate() {
            if let Some(primary) = self.locator.ring().owner(v) {
                by_agent.entry(primary).or_default().push(i);
            }
        }
        // One REQ per agent, all in flight at once: scoped threads
        // block on their own round trip while the others progress.
        let groups: Vec<(AgentId, Vec<usize>)> = by_agent.into_iter().collect();
        let mut replies: Vec<Option<(u64, u64, Vec<msg::QueryAnswer>)>> =
            Vec::with_capacity(groups.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .map(|(agent, positions)| {
                    let asked: Vec<VertexId> = positions.iter().map(|&i| vertices[i]).collect();
                    scope.spawn(move || self.batch_one_agent(*agent, &asked))
                })
                .collect();
            for h in handles {
                replies.push(h.join().unwrap_or(None));
            }
        });
        for ((_, positions), reply) in groups.iter().zip(replies) {
            let Some((run, watermark, answers_one)) = reply else {
                continue;
            };
            for (&i, a) in positions.iter().zip(answers_one) {
                if a.found == msg::ANSWER_HIT {
                    answers[i] = Some(SnapshotValue {
                        state: a.state,
                        run,
                        watermark,
                    });
                }
            }
        }
        answers
    }

    /// One agent's slice of a batch. `None` on transport failure or a
    /// malformed reply; otherwise the agent's snapshot tag plus one
    /// answer per asked vertex, in asking order.
    fn batch_one_agent(
        &self,
        agent: AgentId,
        vertices: &[VertexId],
    ) -> Option<(u64, u64, Vec<msg::QueryAnswer>)> {
        let addr = self.view.addr_of(agent)?;
        let (rep, _) = self
            .transport
            .request_with_retry(
                addr,
                msg::encode_query_batch(vertices),
                self.cfg.request_timeout,
                &self.cfg.send_policy,
            )
            .ok()?;
        let (run, watermark, recs) = msg::decode_query_batch_rep(&rep)?;
        let answers: Vec<msg::QueryAnswer> = recs.iter().collect();
        if answers.len() != vertices.len() {
            return None;
        }
        Some((run, watermark, answers))
    }

    // ------------------------------------------------------------------
    // Standing subscriptions
    // ------------------------------------------------------------------

    /// The client's push mailbox, bound on first use.
    fn mailbox_addr(&mut self) -> Result<Addr, NetError> {
        if self.mailbox.is_none() {
            let seq = CLIENT_SEQ.fetch_add(1, Ordering::Relaxed);
            let addr = Addr::parse(&format!(
                "inproc://query-client-{}-{seq}",
                std::process::id()
            ))
            .map_err(|_| NetError::Protocol("bad client mailbox addr"))?;
            self.mailbox = Some(self.transport.bind(&addr)?);
        }
        Ok(self.mailbox.as_ref().expect("just bound").addr().clone())
    }

    /// Register a standing subscription for `vertices` and return its
    /// id. Every agent learns the interest set; after each completed
    /// run, each watched vertex's *primary* pushes the vertices whose
    /// snapshot value changed (the first completed run pushes
    /// everything watched, since every value is new).
    pub fn subscribe(&mut self, vertices: &[VertexId]) -> Result<u64, NetError> {
        let addr = self.mailbox_addr()?;
        let sub = self.next_sub;
        self.next_sub += 1;
        let frame = msg::encode_sub_reg(&addr, sub, vertices);
        for a in &self.view.agents {
            let (rep, _) = self.transport.request_with_retry(
                &a.addr,
                frame.clone(),
                self.cfg.request_timeout,
                &self.cfg.send_policy,
            )?;
            if rep.packet_type() != packet::OK {
                return Err(NetError::Protocol("subscription refused"));
            }
        }
        self.subs.insert(sub, vertices.to_vec());
        Ok(sub)
    }

    /// Cancel a subscription (an empty vertex set is the cancel form
    /// on the wire).
    pub fn unsubscribe(&mut self, sub: u64) -> Result<(), NetError> {
        if self.subs.remove(&sub).is_none() {
            return Ok(());
        }
        let addr = self.mailbox_addr()?;
        let frame = msg::encode_sub_reg(&addr, sub, &[]);
        for a in &self.view.agents {
            let _ = self.transport.request_with_retry(
                &a.addr,
                frame.clone(),
                self.cfg.request_timeout,
                &self.cfg.send_policy,
            );
        }
        Ok(())
    }

    /// Drain every subscription update currently queued, waiting up to
    /// `wait` for the first one. Updates arrive coalesced (many
    /// records per frame) and are flattened here, in the order pushed.
    pub fn poll_updates(&mut self, wait: Duration) -> Vec<SubUpdate> {
        let Some(mb) = self.mailbox.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut first = true;
        loop {
            let d = if first {
                match mb.recv_timeout(wait) {
                    Ok(d) => d,
                    Err(_) => break,
                }
            } else {
                match mb.try_recv() {
                    Ok(Some(d)) => d,
                    _ => break,
                }
            };
            first = false;
            if d.frame.packet_type() != packet::SUB_PUSH {
                continue;
            }
            let Some((sub, run, watermark, recs)) = msg::decode_sub_push(&d.frame) else {
                continue;
            };
            for (vertex, state) in recs.iter() {
                out.push(SubUpdate {
                    sub,
                    vertex,
                    state,
                    run,
                    watermark,
                });
            }
        }
        out
    }

    /// Updates for one subscription, keeping only the newest value per
    /// vertex (pushes from successive runs may be queued together).
    pub fn latest_for(&mut self, sub: u64, wait: Duration) -> HashMap<VertexId, SnapshotValue> {
        let mut latest: HashMap<VertexId, SnapshotValue> = HashMap::new();
        for u in self.poll_updates(wait) {
            if u.sub != sub {
                continue;
            }
            let e = latest.entry(u.vertex).or_insert(SnapshotValue {
                state: u.state,
                run: u.run,
                watermark: u.watermark,
            });
            if u.run >= e.run {
                *e = SnapshotValue {
                    state: u.state,
                    run: u.run,
                    watermark: u.watermark,
                };
            }
        }
        latest
    }
}
