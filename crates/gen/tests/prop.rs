//! Property tests for the workload generators.

use elga_gen::bter::BterModel;
use elga_gen::catalog::catalog;
use elga_gen::powerlaw::{erdos_renyi, power_law};
use elga_gen::rmat::{rmat, RmatParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// R-MAT respects its vertex bound and is seed-deterministic.
    #[test]
    fn rmat_bounds_and_determinism(scale in 2u32..12, m in 1usize..2000, seed in any::<u64>()) {
        let edges = rmat(scale, m, RmatParams::GRAPH500, seed);
        prop_assert_eq!(edges.len(), m);
        let n = 1u64 << scale;
        prop_assert!(edges.iter().all(|&(u, v)| u < n && v < n));
        prop_assert_eq!(rmat(scale, m, RmatParams::GRAPH500, seed), edges);
    }

    /// Power-law output is within the vertex range, loop-free, and
    /// near the requested size.
    #[test]
    fn power_law_contract(n in 2u64..2000, m in 1usize..4000, seed in any::<u64>()) {
        let edges = power_law(n, m, 2.1, seed);
        prop_assert!(edges.len() <= m);
        prop_assert!(edges.iter().all(|&(u, v)| u < n && v < n && u != v));
    }

    /// Erdős–Rényi returns exactly m loop-free edges.
    #[test]
    fn erdos_renyi_contract(n in 2u64..500, m in 0usize..2000, seed in any::<u64>()) {
        let edges = erdos_renyi(n, m, seed);
        prop_assert_eq!(edges.len(), m);
        prop_assert!(edges.iter().all(|&(u, v)| u < n && v < n && u != v));
    }

    /// Every catalog dataset generates within bounds at any valid
    /// fraction.
    #[test]
    fn catalog_generates_at_any_fraction(idx in 0usize..14, frac in 1e-8f64..1e-5) {
        let ds = catalog()[idx];
        let (n, edges) = ds.generate(frac, 3);
        prop_assert!(!edges.is_empty());
        let bound = n.next_power_of_two(); // R-MAT rounds up
        prop_assert!(edges.iter().all(|&(u, v)| u < bound && v < bound));
    }

    /// BTER replicas roughly track the requested scale in edges and
    /// vertices.
    #[test]
    fn bter_scale_tracks_request(scale in 1u32..6, seed in any::<u64>()) {
        let seed_edges = power_law(300, 2400, 2.0, 17);
        let model = BterModel::from_seed(&seed_edges, 8);
        let rep = model.generate(f64::from(scale), seed);
        let expect_m = model.num_edges() as f64 * f64::from(scale);
        let ratio = rep.edges.len() as f64 / expect_m;
        prop_assert!((0.6..1.6).contains(&ratio), "edge ratio {}", ratio);
        prop_assert!(rep.edges.iter().all(|&(u, v)| u < rep.n && v < rep.n));
    }
}
