//! R-MAT recursive-matrix graph generation (Chakrabarti, Zhan &
//! Faloutsos), the model behind the paper's Graph500-30 dataset.
//!
//! Each edge picks one quadrant of the adjacency matrix per recursion
//! level with probabilities `(a, b, c, d)`; Graph500 fixes
//! `(0.57, 0.19, 0.19, 0.05)`, producing the heavily skewed degree
//! distributions ElGA's sketch-based replication targets (Goal 1).

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// Graph500 reference parameters.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// A web-crawl-like skew (heavier diagonal than Graph500).
    pub const WEB: RmatParams = RmatParams {
        a: 0.65,
        b: 0.15,
        c: 0.15,
    };

    /// The implied bottom-right probability.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generate `m` R-MAT edges over `2^scale` vertices.
///
/// Vertex labels are scrambled with a fixed bijection so that degree
/// skew does not correlate with vertex id (Graph500 requires the same).
///
/// # Panics
/// Panics when the probabilities are invalid or `scale >= 63`.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> EdgeList {
    assert!(scale < 63, "scale too large");
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && params.d() >= 0.0,
        "invalid R-MAT probabilities"
    );
    let n = 1u64 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let ab = params.a + params.b;
    let a_frac = params.a / ab.max(f64::MIN_POSITIVE);
    let c_frac = params.c / (1.0 - ab).max(f64::MIN_POSITIVE);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // Add noise per level (SKG smoothing) to avoid exact
            // self-similar artifacts.
            let roll: f64 = rng.gen();
            if roll < ab {
                // top half
                if rng.gen::<f64>() < a_frac {
                    // a: (0,0)
                } else {
                    v |= 1; // b: (0,1)
                }
            } else if rng.gen::<f64>() < c_frac {
                u |= 1; // c: (1,0)
            } else {
                u |= 1;
                v |= 1; // d: (1,1)
            }
        }
        edges.push((scramble(u, n), scramble(v, n)));
    }
    edges
}

/// A fixed bijective scramble of `0..n` (n a power of two). Each step
/// is invertible modulo `n`: multiplication by an odd constant and a
/// right-shift xor, so the composition permutes `0..n`.
#[inline]
fn scramble(x: u64, n: u64) -> u64 {
    let mask = n - 1;
    let bits = n.trailing_zeros().max(1);
    let mut y = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
    y ^= y >> (bits / 2).max(1);
    y = y.wrapping_mul(0xBF58_476D_1CE4_E5B9) & mask;
    y ^ (y >> (bits / 2).max(1)) & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_edge_count_in_range() {
        let edges = rmat(10, 5000, RmatParams::GRAPH500, 1);
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|&(u, v)| u < 1024 && v < 1024));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(8, 1000, RmatParams::GRAPH500, 7);
        let b = rmat(8, 1000, RmatParams::GRAPH500, 7);
        let c = rmat(8, 1000, RmatParams::GRAPH500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let edges = rmat(12, 40_000, RmatParams::GRAPH500, 3);
        let mut deg = vec![0u64; 1 << 12];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<u64>() as f64 / deg.len() as f64;
        assert!(
            max as f64 > 10.0 * mean,
            "R-MAT should be skewed: max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn scramble_is_bijective_on_small_domain() {
        let n = 1u64 << 10;
        let mut seen = std::collections::HashSet::new();
        for x in 0..n {
            assert!(seen.insert(scramble(x, n)));
        }
    }

    #[test]
    fn web_params_sum_to_one() {
        let p = RmatParams::WEB;
        assert!((p.a + p.b + p.c + p.d() - 1.0).abs() < 1e-12);
    }
}
