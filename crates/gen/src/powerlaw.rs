//! Configuration-model power-law generator and an Erdős–Rényi control.
//!
//! Social-network datasets in the paper's Table 2 (Twitter, Friendster,
//! LiveJournal, Pokec, …) share heavy-tailed degree distributions; the
//! power-law generator reproduces that family with a tunable exponent.
//! The Erdős–Rényi generator provides an unskewed control used by
//! load-balance tests.

use crate::EdgeList;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Sample a degree from `P(d) ∝ d^{-gamma}` over `1..=dmax` via
/// inverse-transform on the precomputed CDF.
fn degree_cdf(gamma: f64, dmax: usize) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(dmax);
    let mut total = 0.0;
    for d in 1..=dmax {
        total += (d as f64).powf(-gamma);
        cdf.push(total);
    }
    for v in cdf.iter_mut() {
        *v /= total;
    }
    cdf
}

/// Generate a directed power-law graph with `n` vertices and roughly
/// `target_m` edges using the configuration model: sample a degree
/// sequence with exponent `gamma`, create stubs, shuffle, and pair.
/// Self-loops are dropped; duplicates are kept (downstream stores
/// deduplicate, matching how real edge lists repeat).
///
/// # Panics
/// Panics when `n == 0`.
pub fn power_law(n: u64, target_m: usize, gamma: f64, seed: u64) -> EdgeList {
    assert!(n > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let dmax = ((n as f64).sqrt() as usize).clamp(4, 100_000);
    let cdf = degree_cdf(gamma, dmax);
    // Sample degrees until the stub total reaches 2 * target_m, cycling
    // vertices so every vertex gets at least a chance of degree.
    let mut stubs: Vec<u64> = Vec::with_capacity(target_m * 2);
    let mut v = 0u64;
    while stubs.len() < target_m * 2 {
        let roll: f64 = rng.gen();
        let d = cdf.partition_point(|&c| c < roll) + 1;
        for _ in 0..d {
            stubs.push(v);
        }
        v = (v + 1) % n;
    }
    stubs.truncate(target_m * 2);
    stubs.shuffle(&mut rng);
    let mut edges = Vec::with_capacity(target_m);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            edges.push((pair[0], pair[1]));
        }
    }
    edges
}

/// `G(n, m)`: `m` uniformly random directed edges (self-loops
/// excluded).
///
/// # Panics
/// Panics when `n < 2`.
pub fn erdos_renyi(n: u64, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_size_and_range() {
        let edges = power_law(1000, 10_000, 2.0, 1);
        assert!(edges.len() <= 10_000);
        assert!(edges.len() > 9_000, "few self-loops expected");
        assert!(edges.iter().all(|&(u, v)| u < 1000 && v < 1000 && u != v));
    }

    #[test]
    fn power_law_is_deterministic() {
        assert_eq!(power_law(100, 500, 2.2, 9), power_law(100, 500, 2.2, 9));
        assert_ne!(power_law(100, 500, 2.2, 9), power_law(100, 500, 2.2, 10));
    }

    #[test]
    fn smaller_gamma_is_more_skewed() {
        let skew = |gamma: f64| {
            let edges = power_law(2000, 30_000, gamma, 5);
            let mut deg = vec![0u64; 2000];
            for &(u, v) in &edges {
                deg[u as usize] += 1;
                deg[v as usize] += 1;
            }
            let max = *deg.iter().max().unwrap() as f64;
            let mean = deg.iter().sum::<u64>() as f64 / deg.len() as f64;
            max / mean
        };
        assert!(skew(1.8) > skew(3.5));
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let edges = erdos_renyi(500, 20_000, 2);
        assert_eq!(edges.len(), 20_000);
        let mut deg = vec![0u64; 500];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        let mean = deg.iter().sum::<u64>() as f64 / deg.len() as f64;
        assert!(max < 2.0 * mean, "ER should be balanced: {max} vs {mean}");
    }

    #[test]
    fn erdos_renyi_no_self_loops() {
        assert!(erdos_renyi(2, 50, 3).iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let cdf = degree_cdf(2.0, 50);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
