//! BTER-style scaled-replica generation — the A-BTER substitution.
//!
//! The paper uses A-BTER (Slota et al.) to scale public graphs up by
//! 100–10000× while keeping "degree and clustering coefficient
//! distributions within 2% error" (§4.4, Figure 10). A-BTER itself is
//! not redistributable, so this module implements the underlying BTER
//! construction from scratch:
//!
//! 1. **Measure** a seed graph: total-degree histogram and mean local
//!    clustering per degree.
//! 2. **Scale** the histogram by the requested factor.
//! 3. **Phase 1 (affinity blocks)**: consecutive vertices of similar
//!    degree `d` form blocks of `d+1` vertices wired as dense
//!    Erdős–Rényi subgraphs with density `ρ_d = c(d)^{1/3}`, producing
//!    the triangles that give the target clustering.
//! 4. **Phase 2 (excess degree)**: remaining degree is satisfied with a
//!    configuration model over the leftover stubs.
//!
//! The replica generator also exposes the paper's streaming extension
//! ("We extended A-BTER to stream edge updates"): [`ScaledReplica::stream`]
//! yields the edges as a turnstile insertion stream.

use crate::EdgeList;
use elga_graph::csr::Csr;
use elga_graph::stats;
use elga_graph::types::EdgeChange;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Distributional model extracted from a seed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct BterModel {
    /// `degree_counts[d]` = number of vertices with total degree `d`.
    pub degree_counts: Vec<u64>,
    /// `clustering[d]` = mean local clustering of degree-`d` vertices
    /// (0 when unmeasured).
    pub clustering: Vec<f64>,
}

impl BterModel {
    /// Measure a seed edge list. Clustering is sampled on up to
    /// `cc_sample` vertices per degree to bound the O(k²) cost.
    pub fn from_seed(edges: &[(u64, u64)], cc_sample: usize) -> Self {
        let csr = Csr::from_edges(None, edges);
        let degree_counts = stats::total_degree_histogram(&csr);
        let maxd = degree_counts.len();
        let mut cc_sum = vec![0.0; maxd];
        let mut cc_n = vec![0usize; maxd];
        for v in 0..csr.num_vertices() {
            let d = csr.out_degree(v as u64) + csr.in_degree(v as u64);
            if d >= 2 && cc_n[d] < cc_sample.max(1) {
                cc_sum[d] += stats::local_clustering(&csr, v as u64);
                cc_n[d] += 1;
            }
        }
        let clustering = cc_sum
            .iter()
            .zip(&cc_n)
            .map(|(&s, &n)| if n > 0 { s / n as f64 } else { 0.0 })
            .collect();
        BterModel {
            degree_counts,
            clustering,
        }
    }

    /// Build a model directly from distributions (for tests and the
    /// weak-scaling harness, which reuses one measured model at many
    /// scales).
    pub fn from_distributions(degree_counts: Vec<u64>, clustering: Vec<f64>) -> Self {
        let mut clustering = clustering;
        clustering.resize(degree_counts.len(), 0.0);
        BterModel {
            degree_counts,
            clustering,
        }
    }

    /// Number of vertices in the modeled graph.
    pub fn num_vertices(&self) -> u64 {
        self.degree_counts.iter().sum()
    }

    /// Number of edges in the modeled graph (half the degree mass).
    pub fn num_edges(&self) -> u64 {
        self.degree_counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum::<u64>()
            / 2
    }

    /// Generate a replica at `scale`× the seed's size.
    ///
    /// # Panics
    /// Panics when `scale <= 0`.
    pub fn generate(&self, scale: f64, seed: u64) -> ScaledReplica {
        assert!(scale > 0.0, "scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed);

        // Scaled degree sequence: vertices sorted by degree ascending.
        let mut degrees: Vec<u32> = Vec::new();
        for (d, &count) in self.degree_counts.iter().enumerate().skip(1) {
            let scaled = count as f64 * scale;
            let mut whole = scaled.floor() as u64;
            if rng.gen::<f64>() < scaled.fract() {
                whole += 1;
            }
            for _ in 0..whole {
                degrees.push(d as u32);
            }
        }
        let n = degrees.len() as u64;
        let mut edges: EdgeList = Vec::new();
        let mut excess: Vec<f64> = degrees.iter().map(|&d| f64::from(d)).collect();

        // Phase 1: affinity blocks over vertices of degree >= 2.
        let first_blockable = degrees.partition_point(|&d| d < 2);
        let mut i = first_blockable;
        while i < degrees.len() {
            let d = degrees[i] as usize;
            let block_end = (i + d + 1).min(degrees.len());
            let cc = self
                .clustering
                .get(d)
                .copied()
                .unwrap_or(0.0)
                .clamp(0.0, 1.0);
            let rho = cc.cbrt();
            if rho > 0.0 && block_end - i >= 2 {
                for a in i..block_end {
                    for b in (a + 1)..block_end {
                        if rng.gen::<f64>() < rho {
                            edges.push((a as u64, b as u64));
                            excess[a] -= 1.0;
                            excess[b] -= 1.0;
                        }
                    }
                }
            }
            i = block_end;
        }

        // Phase 2: configuration model over the excess degree.
        let mut stubs: Vec<u64> = Vec::new();
        for (v, &e) in excess.iter().enumerate() {
            let mut whole = e.max(0.0).floor() as u64;
            if rng.gen::<f64>() < e.max(0.0).fract() {
                whole += 1;
            }
            for _ in 0..whole {
                stubs.push(v as u64);
            }
        }
        stubs.shuffle(&mut rng);
        for pair in stubs.chunks_exact(2) {
            if pair[0] != pair[1] {
                edges.push((pair[0], pair[1]));
            }
        }

        // Randomize orientation so in/out degrees are symmetric in
        // expectation, then scramble ids so degree doesn't correlate
        // with vertex id.
        let perm = permutation(n, &mut rng);
        for e in edges.iter_mut() {
            let (u, v) = (perm[e.0 as usize], perm[e.1 as usize]);
            *e = if rng.gen() { (u, v) } else { (v, u) };
        }
        ScaledReplica { n, edges }
    }
}

fn permutation(n: u64, rng: &mut StdRng) -> Vec<u64> {
    let mut p: Vec<u64> = (0..n).collect();
    p.shuffle(rng);
    p
}

/// A generated scaled replica.
#[derive(Debug, Clone)]
pub struct ScaledReplica {
    /// Number of vertices.
    pub n: u64,
    /// The generated edges.
    pub edges: EdgeList,
}

impl ScaledReplica {
    /// The paper's streaming A-BTER extension: edges as a turnstile
    /// insertion stream, ready to feed Streamers.
    pub fn stream(&self) -> impl Iterator<Item = EdgeChange> + '_ {
        self.edges.iter().map(|&(u, v)| EdgeChange::insert(u, v))
    }

    /// Relative degree-distribution error versus a model — the
    /// fidelity check behind Figure 4 and the Appendix's "under 5%
    /// error" tuning target. Histograms are compared after normalizing
    /// the replica's histogram back down by `scale`.
    pub fn degree_error(&self, model: &BterModel, scale: f64) -> f64 {
        let csr = Csr::from_edges(Some(self.n as usize), &self.edges);
        let hist = stats::total_degree_histogram(&csr);
        let descaled: Vec<u64> = hist
            .iter()
            .map(|&c| (c as f64 / scale).round() as u64)
            .collect();
        // skip degree-0 bin: isolated vertices are not represented
        let a = &model.degree_counts[1.min(model.degree_counts.len())..];
        let b = if descaled.len() > 1 {
            &descaled[1..]
        } else {
            &[]
        };
        stats::histogram_error(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::power_law;

    fn seed_graph() -> EdgeList {
        power_law(500, 4000, 2.0, 11)
    }

    #[test]
    fn model_measures_seed() {
        let edges = seed_graph();
        let m = BterModel::from_seed(&edges, 16);
        assert!(m.num_vertices() > 0);
        assert!(m.num_edges() > 0);
        assert_eq!(m.degree_counts.len(), m.clustering.len());
    }

    #[test]
    fn unit_scale_replica_matches_seed_sizes() {
        let edges = seed_graph();
        let model = BterModel::from_seed(&edges, 16);
        let rep = model.generate(1.0, 3);
        let n_ratio = rep.n as f64 / model.num_vertices() as f64;
        let m_ratio = rep.edges.len() as f64 / model.num_edges() as f64;
        assert!((0.85..1.15).contains(&n_ratio), "n ratio {n_ratio}");
        assert!((0.8..1.25).contains(&m_ratio), "m ratio {m_ratio}");
    }

    #[test]
    fn scaling_multiplies_sizes() {
        let model = BterModel::from_seed(&seed_graph(), 16);
        let x1 = model.generate(1.0, 5);
        let x10 = model.generate(10.0, 5);
        let ratio = x10.edges.len() as f64 / x1.edges.len() as f64;
        assert!((8.0..12.0).contains(&ratio), "edge ratio {ratio}");
        let vratio = x10.n as f64 / x1.n as f64;
        assert!((9.0..11.0).contains(&vratio), "vertex ratio {vratio}");
    }

    #[test]
    fn replica_preserves_degree_distribution() {
        let model = BterModel::from_seed(&seed_graph(), 16);
        let rep = model.generate(4.0, 7);
        let err = rep.degree_error(&model, 4.0);
        assert!(err < 0.5, "degree distribution error {err}");
    }

    #[test]
    fn clustered_model_produces_triangles() {
        // A model demanding degree-4 vertices with clustering 0.8
        // should yield clustering far above a configuration model.
        let model =
            BterModel::from_distributions(vec![0, 0, 0, 0, 200], vec![0.0, 0.0, 0.0, 0.0, 0.8]);
        let rep = model.generate(1.0, 9);
        let csr = Csr::from_edges(Some(rep.n as usize), &rep.edges).symmetrized();
        let cc = stats::mean_clustering(&csr, 200);
        assert!(cc > 0.2, "expected clustered replica, got cc={cc}");
    }

    #[test]
    fn stream_yields_all_edges_as_insertions() {
        let model = BterModel::from_seed(&seed_graph(), 4);
        let rep = model.generate(0.5, 1);
        let stream: Vec<EdgeChange> = rep.stream().collect();
        assert_eq!(stream.len(), rep.edges.len());
        assert!(stream.iter().all(|c| c.is_insert()));
    }

    #[test]
    fn generation_is_deterministic() {
        let model = BterModel::from_seed(&seed_graph(), 8);
        assert_eq!(model.generate(2.0, 42).edges, model.generate(2.0, 42).edges);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        BterModel::from_distributions(vec![0, 10], vec![]).generate(0.0, 1);
    }
}
