//! The Table 2 dataset catalog, regenerated synthetically.
//!
//! The paper evaluates on fourteen graphs from 1.3 B to 112 B edges
//! (Table 2). The real datasets are multi-terabyte downloads; per the
//! substitution policy (DESIGN.md) each entry here records the
//! *published* `n`/`m` and a generator family whose degree structure
//! matches the dataset's domain, and regenerates the graph at a caller
//! chosen fraction of the published size. Harnesses default to
//! `frac = 1e-5` (tens of thousands of edges) and scale up with
//! `ELGA_SCALE`.

use crate::powerlaw::{erdos_renyi, power_law};
use crate::rmat::{rmat, RmatParams};
use crate::EdgeList;

/// Generator family standing in for a dataset's domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Social network: power law with the given exponent.
    Social {
        /// Degree exponent (smaller = more skewed).
        gamma: f64,
    },
    /// Web crawl: R-MAT with heavy diagonal skew.
    Web,
    /// Graph500 R-MAT.
    Rmat,
    /// Near-uniform degree (road-/location-like).
    Uniform,
}

/// One Table 2 row.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Dataset name as printed in Table 2.
    pub name: &'static str,
    /// A-BTER scale factor from Table 2 (1 for natively large graphs).
    pub abter_scale: u64,
    /// Published vertex count.
    pub n_full: u64,
    /// Published edge count.
    pub m_full: u64,
    /// Generator family for the synthetic stand-in.
    pub family: Family,
}

impl Dataset {
    /// Regenerate the dataset at `frac` of its published size, e.g.
    /// `1e-5`. Returns `(n, edges)`.
    ///
    /// # Panics
    /// Panics when `frac` is not in `(0, 1]`.
    pub fn generate(&self, frac: f64, seed: u64) -> (u64, EdgeList) {
        assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0, 1]");
        let n = ((self.n_full as f64 * frac).round() as u64).max(16);
        let m = ((self.m_full as f64 * frac).round() as usize).max(64);
        let edges = match self.family {
            Family::Social { gamma } => power_law(n, m, gamma, seed),
            Family::Web => {
                let scale = (n as f64).log2().ceil() as u32;
                rmat(scale, m, RmatParams::WEB, seed)
            }
            Family::Rmat => {
                let scale = (n as f64).log2().ceil() as u32;
                rmat(scale, m, RmatParams::GRAPH500, seed)
            }
            Family::Uniform => erdos_renyi(n.max(2), m, seed),
        };
        (n, edges)
    }

    /// Average published degree `m/n`.
    pub fn avg_degree(&self) -> f64 {
        self.m_full as f64 / self.n_full as f64
    }
}

/// All Table 2 datasets, in the paper's row order.
pub fn catalog() -> &'static [Dataset] {
    const B: u64 = 1_000_000_000;
    const M: u64 = 1_000_000;
    &[
        Dataset {
            name: "Twitter-2010",
            abter_scale: 1,
            n_full: 42 * M,
            m_full: 1_500 * M,
            family: Family::Social { gamma: 1.9 },
        },
        Dataset {
            name: "Friendster",
            abter_scale: 1,
            n_full: 65 * M,
            m_full: 1_800 * M,
            family: Family::Social { gamma: 2.1 },
        },
        Dataset {
            name: "UK-2007-05",
            abter_scale: 1,
            n_full: 105 * M,
            m_full: 3_700 * M,
            family: Family::Web,
        },
        Dataset {
            name: "Datagen-9.3-zf",
            abter_scale: 1,
            n_full: 555 * M,
            m_full: 1_300 * M,
            family: Family::Uniform,
        },
        Dataset {
            name: "Datagen-9.4-fb",
            abter_scale: 1,
            n_full: 29 * M,
            m_full: 2_600 * M,
            family: Family::Social { gamma: 2.3 },
        },
        Dataset {
            name: "Email-EuAll",
            abter_scale: 5000,
            n_full: 1_300 * M,
            m_full: 5_600 * M,
            family: Family::Social { gamma: 2.2 },
        },
        Dataset {
            name: "Skitter",
            abter_scale: 200,
            n_full: 339 * M,
            m_full: 6_300 * M,
            family: Family::Social { gamma: 2.1 },
        },
        Dataset {
            name: "LiveJournal",
            abter_scale: 100,
            n_full: 484 * M,
            m_full: 8_600 * M,
            family: Family::Social { gamma: 2.0 },
        },
        Dataset {
            name: "Amazon0601",
            abter_scale: 2000,
            n_full: 807 * M,
            m_full: 9_800 * M,
            family: Family::Uniform,
        },
        Dataset {
            name: "Graph500-30",
            abter_scale: 1,
            n_full: 448 * M,
            m_full: 17 * B,
            family: Family::Rmat,
        },
        Dataset {
            name: "Gowalla",
            abter_scale: 10_000,
            n_full: 2 * B,
            m_full: 28 * B,
            family: Family::Social { gamma: 2.2 },
        },
        Dataset {
            name: "Patents",
            abter_scale: 1000,
            n_full: 3_700 * M,
            m_full: 33 * B,
            family: Family::Uniform,
        },
        Dataset {
            name: "Pokec-1000",
            abter_scale: 1000,
            n_full: 1_600 * M,
            m_full: 44 * B,
            family: Family::Social { gamma: 2.0 },
        },
        Dataset {
            name: "Pokec-2500",
            abter_scale: 2500,
            n_full: 4 * B,
            m_full: 112 * B,
            family: Family::Social { gamma: 2.0 },
        },
    ]
}

/// Find a dataset by name.
pub fn find(name: &str) -> Option<Dataset> {
    catalog().iter().find(|d| d.name == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2_shape() {
        let c = catalog();
        assert_eq!(c.len(), 14);
        // All names are unique and sizes are the published ones.
        let names: std::collections::HashSet<_> = c.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 14);
        assert_eq!(c.last().unwrap().m_full, 112_000_000_000);
        assert_eq!(c[0].m_full, 1_500_000_000);
    }

    #[test]
    fn find_by_name() {
        assert!(find("Twitter-2010").is_some());
        assert!(find("LiveJournal").is_some());
        assert!(find("NoSuchGraph").is_none());
    }

    #[test]
    fn generate_scales_published_sizes() {
        let d = find("Twitter-2010").unwrap();
        let (n, edges) = d.generate(1e-5, 1);
        assert_eq!(n, 420);
        // power_law drops self-loops, so allow slight shortfall
        let target = (d.m_full as f64 * 1e-5) as usize;
        assert!(edges.len() >= target * 9 / 10);
        assert!(edges.iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn every_family_generates() {
        for d in catalog() {
            let (n, edges) = d.generate(2e-7, 3);
            assert!(!edges.is_empty(), "{} empty", d.name);
            // R-MAT rounds n up to a power of two.
            let bound = n.next_power_of_two();
            assert!(
                edges.iter().all(|&(u, v)| u < bound && v < bound),
                "{} out of range",
                d.name
            );
        }
    }

    #[test]
    fn avg_degree_reflects_table() {
        let zf = find("Datagen-9.3-zf").unwrap();
        assert!(zf.avg_degree() < 3.0, "zf is sparse");
        let fb = find("Datagen-9.4-fb").unwrap();
        assert!(fb.avg_degree() > 50.0, "fb is dense");
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn zero_frac_rejected() {
        find("Skitter").unwrap().generate(0.0, 1);
    }
}
