//! Workload generators for the ElGA evaluation (paper §4.4).
//!
//! The paper evaluates on public graphs (LAW, SNAP, LDBC) and on
//! *scaled-up replicas* produced by A-BTER, which preserves a seed
//! graph's degree and clustering-coefficient distributions. Those
//! datasets are not redistributable here, so this crate provides (see
//! DESIGN.md, "Substitutions"):
//!
//! * [`mod@rmat`] — the R-MAT recursive-matrix generator with Graph500
//!   parameters (the paper's Graph500-30 dataset);
//! * [`powerlaw`] — a configuration-model power-law generator and an
//!   Erdős–Rényi control;
//! * [`bter`] — a BTER-style scaled-replica generator standing in for
//!   A-BTER: it measures a seed graph's degree histogram and per-degree
//!   clustering, then emits a scaled graph matching both;
//! * [`mod@catalog`] — the Table 2 dataset inventory, regenerated
//!   synthetically at a configurable fraction of the published sizes.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod bter;
pub mod catalog;
pub mod powerlaw;
pub mod rmat;

pub use bter::{BterModel, ScaledReplica};
pub use catalog::{catalog, Dataset, Family};
pub use powerlaw::{erdos_renyi, power_law};
pub use rmat::{rmat, RmatParams};

/// Edge list type produced by every generator.
pub type EdgeList = Vec<(u64, u64)>;
