//! ClientProxies: the query path (paper §3.1: "ClientProxies proxy
//! end-user queries to Agents to receive algorithm results").
//!
//! Queries are ElGA's low-latency REQ/REP traffic (§3.5). A query for
//! vertex `v` goes to one of `v`'s replicas — "if only *some* Agent
//! responsible for the vertex is required, e.g., for a vertex query,
//! then the last consistent hash is bypassed and one replica is chosen
//! at random" (§3.4.1) — with a fallback to the primary, which always
//! holds the authoritative state.
//!
//! Answers are *snapshot-consistent*: agents serve a double-buffered
//! copy of the last completed run's values, tagged with that run's id
//! and the ingest batch watermark current when it finished, so a
//! reader never observes torn mid-superstep state. An agent's answer
//! is one of three things — a hit, a non-authoritative miss ("no
//! snapshot here, try another replica"), or an *authoritative*
//! negative from the vertex's primary ("this vertex does not exist"),
//! which short-circuits the replica walk instead of burning a view
//! refresh and another round of requests on a vertex that was never
//! there.

use crate::config::SystemConfig;
use crate::msg::{self, packet, DirectoryView};
use elga_graph::types::VertexId;
use elga_hash::EdgeLocator;
use elga_net::{Addr, Frame, NetError, Transport, TransportExt};
use std::sync::Arc;

/// The result of a vertex query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// Encoded program state (decode with the algorithm's `decode`).
    pub state: u64,
    /// The ingest batch watermark at the answering agent when the
    /// served snapshot was taken — the staleness handle of
    /// Definition 2.6.
    pub batch_id: u64,
    /// Id of the completed run the snapshot belongs to (0 when the
    /// values were restored from a checkpoint, whose run id went
    /// unrecorded).
    pub run: u64,
}

/// One agent's answer to a point query, before the walk policy is
/// applied.
enum AgentAnswer {
    /// Transport failure or undecodable reply: try another replica.
    Unreachable,
    /// The agent holds no snapshot for the vertex (not authoritative).
    Miss,
    /// The vertex's primary says it does not exist: stop searching.
    Gone,
    Hit(QueryResult),
}

/// A query client.
pub struct ClientProxy {
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    directory: Addr,
    view: DirectoryView,
    locator: EdgeLocator,
    salt: u64,
}

impl ClientProxy {
    /// Connect through a directory address.
    pub fn connect(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        directory: Addr,
    ) -> Result<ClientProxy, NetError> {
        let rep = transport.request(
            &directory,
            Frame::signal(packet::GET_VIEW),
            cfg.request_timeout,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        let locator = view.locator();
        Ok(ClientProxy {
            transport,
            cfg,
            directory,
            view,
            locator,
            salt: 0,
        })
    }

    /// Refresh the view (after elasticity events).
    pub fn refresh(&mut self) -> Result<(), NetError> {
        let (rep, _) = self.transport.request_with_retry(
            &self.directory,
            Frame::signal(packet::GET_VIEW),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        if view.epoch >= self.view.epoch {
            self.locator = view.locator();
            self.view = view;
        }
        Ok(())
    }

    /// The proxy's current view.
    pub fn view(&self) -> &DirectoryView {
        &self.view
    }

    fn query_agent(&self, agent: elga_hash::AgentId, v: VertexId) -> AgentAnswer {
        let Some(addr) = self.view.addr_of(agent).cloned() else {
            return AgentAnswer::Unreachable;
        };
        let Ok((rep, _)) = self.transport.request_with_retry(
            &addr,
            Frame::builder(packet::QUERY).u64(v).finish(),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        ) else {
            return AgentAnswer::Unreachable;
        };
        let mut r = rep.reader();
        let (Some(found), Some(state), Some(batch_id), Some(run)) =
            (r.u8(), r.u64(), r.u64(), r.u64())
        else {
            return AgentAnswer::Unreachable;
        };
        match found {
            msg::ANSWER_HIT => AgentAnswer::Hit(QueryResult {
                state,
                batch_id,
                run,
            }),
            msg::ANSWER_GONE => AgentAnswer::Gone,
            _ => AgentAnswer::Miss,
        }
    }

    /// Query a random replica of `v` (the paper's fast path), walking
    /// the remaining replicas when it is unreachable or has no state
    /// yet, and finally refreshing the view once and retrying the
    /// adopted primary before giving up. An authoritative negative
    /// from the primary ends the walk immediately.
    pub fn query(&mut self, v: VertexId) -> Option<QueryResult> {
        self.salt = self.salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let est = self.view.sketch.estimate(v);
        let sampled = self.locator.any_replica(v, est, self.salt)?;
        match self.query_agent(sampled, v) {
            AgentAnswer::Hit(r) => return Some(r),
            AgentAnswer::Gone => return None,
            _ => {}
        }
        // Walk the rest of the replica set, ending on the primary —
        // it always holds the authoritative state.
        let mut candidates: Vec<elga_hash::AgentId> = self
            .locator
            .replicas_of_vertex(v, est)
            .into_iter()
            .filter(|&a| a != sampled)
            .collect();
        if let Some(primary) = self.locator.ring().owner(v) {
            candidates.retain(|&a| a != primary);
            if primary != sampled {
                candidates.push(primary);
            }
        }
        for agent in candidates {
            match self.query_agent(agent, v) {
                AgentAnswer::Hit(r) => return Some(r),
                AgentAnswer::Gone => return None,
                _ => {}
            }
        }
        // Every replica under the cached view failed or had no
        // snapshot: the view may be stale (agents joined, left, or
        // were evicted). Refresh once and ask the adopted primary.
        self.refresh().ok()?;
        let primary = self.locator.ring().owner(v)?;
        match self.query_agent(primary, v) {
            AgentAnswer::Hit(r) => Some(r),
            _ => None,
        }
    }

    /// Query the primary replica directly (authoritative state; used
    /// by the correctness tests).
    pub fn query_primary(&self, v: VertexId) -> Option<QueryResult> {
        let primary = self.locator.ring().owner(v)?;
        match self.query_agent(primary, v) {
            AgentAnswer::Hit(r) => Some(r),
            _ => None,
        }
    }
}
