//! ClientProxies: the query path (paper §3.1: "ClientProxies proxy
//! end-user queries to Agents to receive algorithm results").
//!
//! Queries are ElGA's low-latency REQ/REP traffic (§3.5). A query for
//! vertex `v` goes to one of `v`'s replicas — "if only *some* Agent
//! responsible for the vertex is required, e.g., for a vertex query,
//! then the last consistent hash is bypassed and one replica is chosen
//! at random" (§3.4.1) — with a fallback to the primary, which always
//! holds the authoritative state.

use crate::config::SystemConfig;
use crate::msg::{packet, DirectoryView};
use elga_graph::types::VertexId;
use elga_hash::EdgeLocator;
use elga_net::{Addr, Frame, NetError, Transport, TransportExt};
use std::sync::Arc;

/// The result of a vertex query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryResult {
    /// Encoded program state (decode with the algorithm's `decode`).
    pub state: u64,
    /// The batch clock at the answering agent — the staleness handle
    /// of Definition 2.6.
    pub batch_id: u64,
}

/// A query client.
pub struct ClientProxy {
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    directory: Addr,
    view: DirectoryView,
    locator: EdgeLocator,
    salt: u64,
}

impl ClientProxy {
    /// Connect through a directory address.
    pub fn connect(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        directory: Addr,
    ) -> Result<ClientProxy, NetError> {
        let rep = transport.request(
            &directory,
            Frame::signal(packet::GET_VIEW),
            cfg.request_timeout,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        let locator = view.locator();
        Ok(ClientProxy {
            transport,
            cfg,
            directory,
            view,
            locator,
            salt: 0,
        })
    }

    /// Refresh the view (after elasticity events).
    pub fn refresh(&mut self) -> Result<(), NetError> {
        let (rep, _) = self.transport.request_with_retry(
            &self.directory,
            Frame::signal(packet::GET_VIEW),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        if view.epoch >= self.view.epoch {
            self.locator = view.locator();
            self.view = view;
        }
        Ok(())
    }

    /// The proxy's current view.
    pub fn view(&self) -> &DirectoryView {
        &self.view
    }

    fn query_agent(&self, agent: elga_hash::AgentId, v: VertexId) -> Option<QueryResult> {
        let addr = self.view.addr_of(agent)?.clone();
        let (rep, _) = self
            .transport
            .request_with_retry(
                &addr,
                Frame::builder(packet::QUERY).u64(v).finish(),
                self.cfg.request_timeout,
                &self.cfg.send_policy,
            )
            .ok()?;
        let mut r = rep.reader();
        let found = r.u8()?;
        let state = r.u64()?;
        let batch_id = r.u64()?;
        (found != 0).then_some(QueryResult { state, batch_id })
    }

    /// Query a random replica of `v` (the paper's fast path), walking
    /// the remaining replicas when it is unreachable or has no state
    /// yet, and finally refreshing the view once and retrying the
    /// adopted primary before giving up.
    pub fn query(&mut self, v: VertexId) -> Option<QueryResult> {
        self.salt = self.salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let est = self.view.sketch.estimate(v);
        let sampled = self.locator.any_replica(v, est, self.salt)?;
        if let Some(r) = self.query_agent(sampled, v) {
            return Some(r);
        }
        // Walk the rest of the replica set, ending on the primary —
        // it always holds the authoritative state.
        let mut candidates: Vec<elga_hash::AgentId> = self
            .locator
            .replicas_of_vertex(v, est)
            .into_iter()
            .filter(|&a| a != sampled)
            .collect();
        if let Some(primary) = self.locator.ring().owner(v) {
            candidates.retain(|&a| a != primary);
            if primary != sampled {
                candidates.push(primary);
            }
        }
        for agent in candidates {
            if let Some(r) = self.query_agent(agent, v) {
                return Some(r);
            }
        }
        // Every replica under the cached view failed: the view may be
        // stale (agents joined, left, or were evicted). Refresh once
        // and ask the adopted primary.
        self.refresh().ok()?;
        let primary = self.locator.ring().owner(v)?;
        self.query_agent(primary, v)
    }

    /// Query the primary replica directly (authoritative state; used
    /// by the correctness tests).
    pub fn query_primary(&self, v: VertexId) -> Option<QueryResult> {
        let primary = self.locator.ring().owner(v)?;
        self.query_agent(primary, v)
    }
}
