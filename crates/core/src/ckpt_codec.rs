//! Checkpoint payload codec.
//!
//! One checkpoint *shard* is one agent's entire in-memory graph
//! partition, serialized as a flat little-endian record stream: a `u64`
//! record count, then one [`CkptVertexRecord`] per vertex entry in the
//! agent's deterministic shard order. The same codec is used by the
//! agent when writing a shard (`CKPT_SAVE`) and by the driver when
//! reading shards back during recovery — the driver re-routes each
//! record under the *post-recovery* view, so the payload deliberately
//! stores raw adjacency, not placement.
//!
//! Run-state fields (partials, async waiting sets) are not serialized:
//! checkpoints are taken only at quiesced batch boundaries, where no
//! run is in flight and that state is vacant by construction. Framing
//! integrity (checksum, length) is `elga-ckpt`'s job; this codec only
//! defines the payload bytes the checksum covers.

use elga_graph::VertexId;

/// One vertex entry as held by an agent: replica-visible fields, both
/// adjacency directions, and (when the holding agent was the primary)
/// the primary-side meta.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CkptVertexRecord {
    /// The vertex.
    pub vertex: VertexId,
    /// Encoded program state (meaningless when `has_state` is false).
    pub state: u64,
    /// Whether `state` is initialized.
    pub has_state: bool,
    /// Replica-visible out-degree snapshot (scatter denominators).
    pub rep_out_degree: u64,
    /// Active flag.
    pub active: bool,
    /// Whether the entry carries primary meta (`g_out`/`g_in`,
    /// existence).
    pub is_meta: bool,
    /// Touched by changes since the last run.
    pub dirty: bool,
    /// Global out-degree accumulated at the primary.
    pub g_out: i64,
    /// Global in-degree accumulated at the primary.
    pub g_in: i64,
    /// Unapplied incremental-run residual at the primary (meaningless
    /// when `has_residual` is false). Persisting it lets a restart
    /// resume a delta computation instead of falling back to a full
    /// re-run.
    pub residual: u64,
    /// Whether `residual` holds an accumulated delta.
    pub has_residual: bool,
    /// Local out-edge targets.
    pub out: Vec<VertexId>,
    /// Local in-edge sources.
    pub inn: Vec<VertexId>,
}

const FLAG_HAS_STATE: u8 = 1 << 0;
const FLAG_ACTIVE: u8 = 1 << 1;
const FLAG_IS_META: u8 = 1 << 2;
const FLAG_DIRTY: u8 = 1 << 3;
const FLAG_HAS_RESIDUAL: u8 = 1 << 4;

/// Fixed bytes per record before its two endpoint lists.
const RECORD_FIXED: usize = 8 + 8 + 8 + 8 + 8 + 8 + 1 + 4 + 4;

/// Serialize `records` into a payload byte vector.
pub fn encode_payload(records: &[CkptVertexRecord]) -> Vec<u8> {
    let edges: usize = records.iter().map(|r| r.out.len() + r.inn.len()).sum();
    let mut b = Vec::with_capacity(8 + records.len() * RECORD_FIXED + edges * 8);
    b.extend_from_slice(&(records.len() as u64).to_le_bytes());
    for r in records {
        b.extend_from_slice(&r.vertex.to_le_bytes());
        b.extend_from_slice(&r.state.to_le_bytes());
        b.extend_from_slice(&r.rep_out_degree.to_le_bytes());
        b.extend_from_slice(&(r.g_out as u64).to_le_bytes());
        b.extend_from_slice(&(r.g_in as u64).to_le_bytes());
        b.extend_from_slice(&r.residual.to_le_bytes());
        let mut flags = 0u8;
        if r.has_state {
            flags |= FLAG_HAS_STATE;
        }
        if r.active {
            flags |= FLAG_ACTIVE;
        }
        if r.is_meta {
            flags |= FLAG_IS_META;
        }
        if r.dirty {
            flags |= FLAG_DIRTY;
        }
        if r.has_residual {
            flags |= FLAG_HAS_RESIDUAL;
        }
        b.push(flags);
        b.extend_from_slice(&(r.out.len() as u32).to_le_bytes());
        b.extend_from_slice(&(r.inn.len() as u32).to_le_bytes());
        for &w in &r.out {
            b.extend_from_slice(&w.to_le_bytes());
        }
        for &u in &r.inn {
            b.extend_from_slice(&u.to_le_bytes());
        }
    }
    b
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let v = u32::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }
}

/// Parse a payload back into records. `None` on any truncation or
/// trailing garbage — a shard that fails here is treated exactly like
/// a checksum mismatch (the generation is skipped).
pub fn decode_payload(bytes: &[u8]) -> Option<Vec<CkptVertexRecord>> {
    let mut c = Cursor { bytes, pos: 0 };
    let n = c.u64()? as usize;
    // Bound the preallocation by what the payload could actually hold.
    let mut records = Vec::with_capacity(n.min(c.remaining() / RECORD_FIXED));
    for _ in 0..n {
        let vertex = c.u64()?;
        let state = c.u64()?;
        let rep_out_degree = c.u64()?;
        let g_out = c.u64()? as i64;
        let g_in = c.u64()? as i64;
        let residual = c.u64()?;
        let flags = c.u8()?;
        if flags & !(FLAG_HAS_STATE | FLAG_ACTIVE | FLAG_IS_META | FLAG_DIRTY | FLAG_HAS_RESIDUAL)
            != 0
        {
            return None;
        }
        let n_out = c.u32()? as usize;
        let n_in = c.u32()? as usize;
        let mut out = Vec::with_capacity(n_out.min(c.remaining() / 8));
        for _ in 0..n_out {
            out.push(c.u64()?);
        }
        let mut inn = Vec::with_capacity(n_in.min(c.remaining() / 8));
        for _ in 0..n_in {
            inn.push(c.u64()?);
        }
        records.push(CkptVertexRecord {
            vertex,
            state,
            has_state: flags & FLAG_HAS_STATE != 0,
            rep_out_degree,
            active: flags & FLAG_ACTIVE != 0,
            is_meta: flags & FLAG_IS_META != 0,
            dirty: flags & FLAG_DIRTY != 0,
            g_out,
            g_in,
            residual,
            has_residual: flags & FLAG_HAS_RESIDUAL != 0,
            out,
            inn,
        });
    }
    if c.remaining() != 0 {
        return None;
    }
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CkptVertexRecord> {
        vec![
            CkptVertexRecord {
                vertex: 10,
                state: 42,
                has_state: true,
                rep_out_degree: 3,
                active: true,
                is_meta: true,
                dirty: false,
                g_out: 3,
                g_in: -1,
                residual: 0.125f64.to_bits(),
                has_residual: true,
                out: vec![11, 12, 13],
                inn: vec![9],
            },
            CkptVertexRecord {
                vertex: 11,
                ..CkptVertexRecord::default()
            },
        ]
    }

    #[test]
    fn payload_roundtrip() {
        let records = sample();
        let bytes = encode_payload(&records);
        assert_eq!(decode_payload(&bytes).unwrap(), records);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_payload(&[]);
        assert_eq!(bytes.len(), 8);
        assert_eq!(decode_payload(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let bytes = encode_payload(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_payload(&bytes[..cut]).is_none(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_payload(&sample());
        bytes.push(0);
        assert!(decode_payload(&bytes).is_none());
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        // Future-proofing: a payload written by a newer format must not
        // silently decode with its extra semantics dropped.
        let mut bytes = encode_payload(&sample());
        let flag_off = 8 + 48; // count + six u64 fields of record 0
        bytes[flag_off] |= 0x80;
        assert!(decode_payload(&bytes).is_none());
    }
}
