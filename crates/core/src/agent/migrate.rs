//! Elasticity: view adoption and edge/meta migration (§3.4.3).

use super::*;

/// Edges grouped by destination agent during migration.
type MovedEdges = FxHashMap<AgentId, Vec<(VertexId, VertexId)>>;

/// One migration bundle entry: placement side, the sender's replica
/// snapshot of the vertex (plus whether the state is initialized), and
/// the edges moving with it.
type VertexEdgeBundle = (Side, StateRecord, bool, Vec<(VertexId, VertexId)>);

impl Agent {
    pub(super) fn on_view(&mut self, view: DirectoryView) {
        if view.epoch < self.view.epoch || view.epoch <= self.migrated_epoch {
            return;
        }
        let epoch = view.epoch;
        // A sketch-only update (same membership, same ring parameters)
        // cannot move primaries or k=1 placements: only vertices whose
        // replication factor grew need re-placement. This keeps the
        // per-batch cost proportional to affected vertices, not edges
        // (§3.4.3's "graph changes enough to impact load balancing").
        let membership_same = self.view.agents == view.agents
            && self.view.hash == view.hash
            && self.view.virtual_agents == view.virtual_agents
            && self.view.replication_threshold == view.replication_threshold
            && self.view.max_replicas == view.max_replicas;
        let filter = if membership_same && !self.departing {
            let mut changed: FxHashSet<VertexId> = FxHashSet::default();
            for (&v, _) in self.vertices.iter() {
                let k_old = self
                    .locator
                    .replication_factor(self.view.sketch.estimate(v));
                let k_new = self.locator.replication_factor(view.sketch.estimate(v));
                if k_old != k_new {
                    changed.insert(v);
                }
            }
            Some(changed)
        } else {
            None
        };
        self.view = view;
        self.locator = self.view.locator();
        self.tracer
            .instant(EventKind::ViewAdopt, epoch, self.view.agents.len() as u64);
        if filter.is_none() {
            // Membership changed: the cached senders' addresses are
            // stale. Flush what they hold (the old peers are still
            // alive and will forward) before dropping them.
            self.tracer
                .instant(EventKind::ViewRetire, epoch, self.outboxes.len() as u64);
            self.retire_outboxes();
        }
        if !self.departing && self.view.addr_of(self.id).is_none() {
            self.departing = true;
        }
        if let Some(run) = self.run.as_mut() {
            if run.async_live {
                // A view change landed mid-async-run. Pause: suppress
                // idle reports (the directory's migrate barrier is the
                // one consuming READYs now) while frames keep flowing
                // under the adopted view. The directory re-publishes
                // the async advance once the barrier settles; that
                // resume re-scatters the surviving frontier.
                run.paused = true;
            }
        }
        self.migrated_epoch = epoch;
        self.migrate(epoch, filter);
    }

    /// Re-evaluate the placement of local edges and primary meta
    /// records; forward whatever no longer belongs here (§3.4.3). With
    /// `filter = Some(vs)`, only the placements of the given vertices
    /// are re-evaluated (sketch-only view changes) and primary meta
    /// never moves (the ring is unchanged).
    pub(super) fn migrate(&mut self, epoch: u64, filter: Option<FxHashSet<VertexId>>) {
        #[derive(Default)]
        struct Bundle {
            metas: Vec<MetaRecord>,
            vertex_edges: Vec<VertexEdgeBundle>,
        }
        let mut bundles: FxHashMap<AgentId, Bundle> = FxHashMap::default();

        let verts: Vec<VertexId> = match &filter {
            Some(set) => set.iter().copied().collect(),
            None => self.vertices.keys().collect(),
        };
        let sketch_only = filter.is_some();
        self.route_cache.ensure_epoch(self.view.epoch);
        // Batch-estimate every vertex up front: one row-seed setup for
        // the whole sweep instead of per-vertex.
        let ests = self.view.sketch.estimate_many(&verts);
        for (v, est) in verts.into_iter().zip(ests) {
            if !self.vertices.contains_key(&v) {
                continue;
            }
            // Place v once per retain sweep: both edge directions of v
            // hash through the same (k, replica-set), so the cache does
            // the ring walk a single time and the per-edge work is one
            // second-hash lookup.
            let (mut moved_out, mut moved_in): (MovedEdges, MovedEdges) =
                (MovedEdges::default(), MovedEdges::default());
            let rebuild = {
                let locator = &self.locator;
                let placement = self.route_cache.placement(locator, v, || est);
                let my_id = self.id;
                let e = self.vertices.get_mut(&v).expect("exists");
                let before = (e.out.len(), e.inn.len());
                e.out
                    .retain(|&w| match locator.owner_from_placement(placement, w) {
                        Some(owner) if owner != my_id => {
                            moved_out.entry(owner).or_default().push((v, w));
                            false
                        }
                        _ => true,
                    });
                e.inn
                    .retain(|&u| match locator.owner_from_placement(placement, u) {
                        Some(owner) if owner != my_id => {
                            moved_in.entry(owner).or_default().push((u, v));
                            false
                        }
                        _ => true,
                    });
                (before.0 != e.out.len(), before.1 != e.inn.len())
            };
            // Retain compacts the adjacency vectors, so the surviving
            // edges' position indices must be rebuilt.
            if rebuild.0 || rebuild.1 {
                let e = self.vertices.get(&v).expect("exists");
                if rebuild.0 {
                    for (i, &w) in e.out.iter().enumerate() {
                        self.out_pos.insert((v, w), i as u32);
                    }
                }
                if rebuild.1 {
                    for (i, &u) in e.inn.iter().enumerate() {
                        self.in_pos.insert((u, v), i as u32);
                    }
                }
            }
            let snapshot = {
                let e = self.vertices.get(&v).expect("exists");
                (
                    StateRecord {
                        vertex: v,
                        state: e.state,
                        out_degree: e.rep_out_degree,
                        // A delta run's un-scattered pending delta moves
                        // with the edge slice so the new owner pushes it
                        // for the migrated edges (aux == 0 = none).
                        aux: if e.has_pending_delta {
                            e.pending_delta
                        } else {
                            0
                        },
                        active: e.active,
                    },
                    e.has_state,
                )
            };
            for (agent, edges) in moved_out {
                for &(a, b) in &edges {
                    self.out_pos.remove(&(a, b));
                }
                bundles.entry(agent).or_default().vertex_edges.push((
                    Side::Out,
                    snapshot.0,
                    snapshot.1,
                    edges,
                ));
            }
            for (agent, edges) in moved_in {
                for &(a, b) in &edges {
                    self.in_pos.remove(&(a, b));
                }
                bundles.entry(agent).or_default().vertex_edges.push((
                    Side::In,
                    snapshot.0,
                    snapshot.1,
                    edges,
                ));
            }
            // Primary meta handoff (never needed on sketch-only
            // changes: the ring did not move).
            if sketch_only {
                if self.vertices.get(&v).is_some_and(|e| e.is_empty()) {
                    self.vertices.remove(&v);
                }
                continue;
            }
            let is_primary_now = self.is_primary(v);
            let e = self.vertices.get_mut(&v).expect("exists");
            // The primary meta record moves with primaryship — and so
            // does the async run state (a pending combined partial and
            // its waiting-set progress), which can exist even where no
            // meta record does (messages beat the meta to a previous
            // primary). `has_meta` tells the receiver which parts of
            // the record to adopt.
            if (e.is_meta || e.has_ppartial || e.wait_recv > 0 || e.has_residual) && !is_primary_now
            {
                let meta = MetaRecord {
                    vertex: v,
                    state: e.state,
                    out_degree: e.g_out.max(0) as u64,
                    active: e.active,
                    dirty: e.dirty,
                    has_state: e.has_state,
                    has_meta: e.is_meta,
                    ppartial: e.ppartial,
                    has_ppartial: e.has_ppartial,
                    wait_recv: e.wait_recv,
                    residual: e.residual,
                    has_residual: e.has_residual,
                    snap: e.snap,
                    has_snap: e.has_snap,
                };
                // g_in travels via a degree delta piggybacked in the
                // meta record's move: encode as a second meta with the
                // in-degree is ugly; instead extend: reuse out_degree
                // for out and send g_in through a deg delta.
                if let Some(new_primary) = self.locator.ring().owner(v) {
                    let b = bundles.entry(new_primary).or_default();
                    b.metas.push(meta);
                    // Move the in-degree alongside.
                    let g_in = e.g_in;
                    if g_in != 0 {
                        b.vertex_edges.push((
                            Side::Out,
                            StateRecord {
                                vertex: v,
                                state: g_in as u64,
                                out_degree: 0,
                                aux: 0,
                                active: false,
                            },
                            false,
                            Vec::new(),
                        ));
                    }
                }
                e.is_meta = false;
                e.g_out = 0;
                e.g_in = 0;
                e.dirty = false;
                e.has_ppartial = false;
                e.ppartial = 0;
                e.wait_recv = 0;
                e.residual = 0;
                e.has_residual = false;
            }
            if self.vertices.get(&v).is_some_and(|e| e.is_empty()) {
                self.vertices.remove(&v);
            }
        }
        // Ship the bundles. Migration frames are one-shot encodes, not
        // record-coalesced; they still leave through the coalescing
        // outboxes so ordering against in-flight appends holds.
        for (agent, bundle) in bundles {
            if self.tracer.enabled() {
                let records = bundle.metas.len() as u64
                    + bundle
                        .vertex_edges
                        .iter()
                        .map(|(_, _, _, edges)| edges.len() as u64 + 1)
                        .sum::<u64>();
                self.tracer.instant(EventKind::MigrateSend, agent, records);
            }
            if !bundle.metas.is_empty() {
                for chunk in bundle.metas.chunks(BATCH) {
                    self.counters.mig_sent += chunk.len() as u64;
                    let frame = msg::encode_mig_meta(chunk, self.snap_run, self.snap_watermark);
                    self.push_to(agent, frame);
                }
            }
            for (side, snap, has_state, edges) in bundle.vertex_edges {
                self.counters.mig_sent += edges.len() as u64 + 1;
                let frame = encode_mig_edges(side, &snap, has_state, &edges);
                self.push_to(agent, frame);
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        // Dangling-mass handoff (delta engine): while an async delta
        // run is live the migrate READY carries the cumulative report
        // (the lead folds a departer's final value before dropping its
        // seen entry); a departer outside such a run hands its
        // unreported accumulator over for the lead to carry into the
        // next delta run's Scatter reduce.
        let async_delta = self
            .run
            .as_ref()
            .is_some_and(|r| r.async_live && r.info.delta);
        let contrib = if async_delta {
            self.dangling_report()
        } else if self.departing {
            std::mem::take(&mut self.dangling_acc)
        } else {
            0.0
        };
        self.send_ready(0, epoch as u32, Phase::Migrate, 0, contrib, 0);
    }

    pub(super) fn on_mig_edges(&mut self, frame: Frame) {
        let Some((side, snap, has_state, g_in_delta, edges)) = decode_mig_edges(&frame) else {
            return;
        };
        self.counters.mig_recv += edges.len() as u64 + 1;
        self.tracer
            .instant(EventKind::MigrateRecv, edges.len() as u64 + 1, 0);
        let v = snap.vertex;
        let e = self.vertices.entry_or_default(v);
        if g_in_delta != 0 {
            // In-degree handoff piggybacking a meta move.
            e.g_in += g_in_delta;
            e.is_meta = e.g_out > 0 || e.g_in > 0;
        }
        if has_state && !e.has_state {
            e.state = snap.state;
            e.has_state = true;
            e.active = e.active || snap.active;
        }
        if has_state {
            // The snapshot's out-degree is the vertex's global
            // out-degree; adopt it even when the state itself arrived
            // first through a MIG_META (scatter shares divide by it).
            e.rep_out_degree = e.rep_out_degree.max(snap.out_degree);
        }
        if snap.aux != 0 && !e.has_pending_delta {
            // Un-scattered delta moving with the edge slice. If we
            // already hold the same broadcast (has_pending_delta), our
            // copy covers the migrated-in edges too — adopting again
            // would double-push.
            e.pending_delta = snap.aux;
            e.has_pending_delta = true;
        }
        match side {
            Side::Out => {
                for (a, b) in edges {
                    self.insert_out_edge(a, b);
                }
            }
            Side::In => {
                for (a, b) in edges {
                    self.insert_in_edge(a, b);
                }
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        self.re_report();
    }

    pub(super) fn on_mig_meta(&mut self, frame: Frame) {
        let Some((snap_run, snap_watermark, metas)) = msg::decode_mig_meta(&frame) else {
            return;
        };
        // Adopt the sender's serving-snapshot tag when it is newer:
        // every agent that finished the last run carries the same tag,
        // so this only moves a joiner (tag 0, no snaps of its own yet)
        // up to the tag of the snaps now migrating in.
        if snap_run > self.snap_run {
            self.snap_run = snap_run;
            self.snap_watermark = snap_watermark;
        }
        self.counters.mig_recv += metas.len() as u64;
        self.tracer
            .instant(EventKind::MigrateRecv, metas.len() as u64, 0);
        let program = self.run.as_ref().map(|r| r.program.clone());
        // Residuals merge with the residual program's own rule; the
        // armed delta seed covers the between-runs window.
        let merger = program
            .clone()
            .or_else(|| self.delta_seed.as_ref().map(|s| Arc::clone(&s.program)));
        for m in metas {
            let e = self.vertices.entry_or_default(m.vertex);
            if m.has_meta {
                e.g_out += m.out_degree as i64;
                e.is_meta = true;
                e.dirty = e.dirty || m.dirty;
            }
            e.active = e.active || m.active;
            if m.has_state {
                e.state = m.state;
                e.has_state = true;
                e.rep_out_degree = e.rep_out_degree.max(m.out_degree);
            }
            if m.has_ppartial {
                // Async run state handoff: fold the sender's pending
                // combined partial into ours (both sides may have
                // collected messages for the same waiting set).
                if e.has_ppartial {
                    if let Some(p) = &program {
                        e.ppartial = p.combine(e.ppartial, m.ppartial);
                    } else {
                        e.ppartial = m.ppartial;
                    }
                } else {
                    e.ppartial = m.ppartial;
                    e.has_ppartial = true;
                }
                e.wait_recv += m.wait_recv;
            }
            if m.has_residual {
                e.residual = if e.has_residual {
                    match &merger {
                        Some(p) => p.merge_residual(e.residual, m.residual),
                        None => (f64::from_bits(e.residual) + f64::from_bits(m.residual)).to_bits(),
                    }
                } else {
                    m.residual
                };
                e.has_residual = true;
            }
            if m.has_snap {
                // Serving snapshot follows primaryship. Both sides can
                // only hold the same completed run's value, so adopt
                // unconditionally.
                e.snap = m.snap;
                e.has_snap = true;
            }
        }
        self.re_report();
    }
}

/// MIG_EDGES wire format: side, vertex snapshot (with optional state),
/// a piggybacked in-degree delta for meta moves, and the edges.
fn encode_mig_edges(
    side: Side,
    snap: &StateRecord,
    has_state: bool,
    edges: &[(VertexId, VertexId)],
) -> Frame {
    let mut b = Frame::builder(packet::MIG_EDGES)
        .u8(match side {
            Side::Out => 0,
            Side::In => 1,
        })
        .u64(snap.vertex)
        .u64(snap.state)
        .u64(snap.out_degree)
        .u64(snap.aux)
        .u8(snap.active as u8)
        .u8(has_state as u8)
        .u64(if edges.is_empty() && !has_state {
            // The "g_in handoff" encoding: state field carries the
            // delta; flag it via this marker.
            snap.state
        } else {
            0
        })
        .u32(edges.len() as u32);
    for &(x, y) in edges {
        b = b.u64(x).u64(y);
    }
    b.finish()
}

type DecodedMigEdges = (Side, StateRecord, bool, i64, Vec<(VertexId, VertexId)>);

fn decode_mig_edges(frame: &Frame) -> Option<DecodedMigEdges> {
    let mut r = frame.reader();
    let side = match r.u8()? {
        0 => Side::Out,
        1 => Side::In,
        _ => return None,
    };
    let vertex = r.u64()?;
    let state = r.u64()?;
    let out_degree = r.u64()?;
    let aux = r.u64()?;
    let active = r.u8()? != 0;
    let has_state = r.u8()? != 0;
    let g_in_delta = r.u64()? as i64;
    let n = r.u32()? as usize;
    let mut edges = Vec::with_capacity(n.min(r.remaining() / 16));
    for _ in 0..n {
        edges.push((r.u64()?, r.u64()?));
    }
    Some((
        side,
        StateRecord {
            vertex,
            state,
            out_degree,
            aux,
            active,
        },
        has_state,
        g_in_delta,
        edges,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mig_edges_roundtrip() {
        let snap = StateRecord {
            vertex: 5,
            state: 42,
            out_degree: 3,
            aux: 0.25f64.to_bits(),
            active: true,
        };
        let edges = vec![(5u64, 6u64), (5, 7)];
        let f = encode_mig_edges(Side::Out, &snap, true, &edges);
        let (side, s2, has_state, g_in, e2) = decode_mig_edges(&f).unwrap();
        assert_eq!(side, Side::Out);
        assert_eq!(s2, snap);
        assert!(has_state);
        assert_eq!(g_in, 0);
        assert_eq!(e2, edges);
    }

    #[test]
    fn mig_edges_g_in_handoff() {
        let snap = StateRecord {
            vertex: 9,
            state: 7, // the in-degree delta
            out_degree: 0,
            aux: 0,
            active: false,
        };
        let f = encode_mig_edges(Side::Out, &snap, false, &[]);
        let (_, _, has_state, g_in, edges) = decode_mig_edges(&f).unwrap();
        assert!(!has_state);
        assert_eq!(g_in, 7);
        assert!(edges.is_empty());
    }

    #[test]
    fn vertex_entry_emptiness() {
        let mut e = VertexEntry::default();
        assert!(e.is_empty());
        e.out.push(3);
        assert!(!e.is_empty());
        e.out.clear();
        e.is_meta = true;
        assert!(!e.is_empty());
    }
}
