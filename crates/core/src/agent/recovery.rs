//! Liveness and failure recovery: heartbeats to the directory and the
//! full-reset response to a peer's eviction.

use super::*;

impl Agent {
    /// Push a liveness heartbeat if one is due. Heartbeats are cheap
    /// pushes; the lead directory evicts us after
    /// `heartbeat_interval * heartbeat_misses` of silence.
    pub(super) fn maybe_heartbeat(&mut self) {
        if self.heartbeat_sent.elapsed() >= self.cfg.heartbeat_interval {
            self.heartbeat_sent = Instant::now();
            let _ = self.dir_push.send(msg::encode_heartbeat(self.id));
        }
    }

    /// A peer was declared dead. Exact counter reconciliation is
    /// impossible (messages in flight to/from the dead agent are
    /// unaccounted on one side), so recovery is a full reset: drop all
    /// graph state and counters, adopt the post-eviction view, and
    /// settle the recovery migrate-barrier trivially with zeroed
    /// counters. The driver then replays the retained change log and
    /// restarts any aborted run.
    pub(super) fn on_recover(&mut self, rec: msg::Recover) -> bool {
        if rec.view.addr_of(self.id).is_none() {
            // We were the one evicted (a false positive if we are still
            // alive). Fail-stop: exiting keeps the cluster's view of
            // the world consistent.
            return false;
        }
        if rec.epoch <= self.migrated_epoch {
            // Duplicate broadcast (chaos transport, or the lead
            // re-publishing an open barrier): already handled; resetting
            // again would wipe state replayed since.
            return true;
        }
        let epoch = rec.epoch;
        self.tracer
            .instant(EventKind::RecoveryTrigger, epoch, rec.dead_agent);
        self.vertices.clear();
        self.out_pos.clear();
        self.in_pos.clear();
        // Open frames hold records counted under the pre-reset regime;
        // pushing them now would corrupt the fresh barrier sums, so
        // they are discarded along with the stale senders.
        self.discard_outboxes();
        self.counters = Counters::default();
        self.buffered_changes.clear();
        self.buffered_frames.clear();
        self.run = None;
        // Residual seed dies with the state it described; the driver's
        // change-log replay re-dirties vertices for a fresh run. (The
        // driver re-arms the seed before a checkpoint-restore replay so
        // the replayed suffix regenerates its residual corrections.)
        self.delta_seed = None;
        self.delta_hot.clear();
        self.dangling_acc = 0.0;
        self.dangling_cum = 0.0;
        self.reported = None;
        self.reported_counters = None;
        self.last_idle_counters = None;
        // The serving snapshots died with the vertex entries; the tag
        // must not claim a run whose values are gone. (A checkpoint
        // restore re-seeds the snapshots, still under tag 0.)
        self.snap_run = 0;
        self.snap_watermark = 0;
        self.metrics.edges = 0;
        self.view = rec.view;
        self.locator = self.view.locator();
        self.migrated_epoch = epoch;
        self.send_ready(0, epoch as u32, Phase::Migrate, 0, 0.0, 0);
        true
    }
}
