//! The agent's send side: per-destination [`CoalescingOutbox`]es,
//! phase-end flushes, dead-peer retries, READY reports, and metrics
//! publication.
//!
//! Every data-plane send leaves through a coalescing outbox, whether
//! the `coalescing` knob is on (records accumulate into large frames,
//! flushed on size/count thresholds and phase ends) or off (the
//! outbox degrades to a plain pass-through and callers send eagerly
//! encoded batches). Either way the per-destination byte stream is a
//! strict FIFO of the records handed in, which is what keeps sync-mode
//! results bit-identical across the ablation.
//!
//! Flush discipline: the termination protocol (Mattern-style counter
//! barriers) counts *records*, and a READY/DRAIN report must never
//! claim a record the wire has not seen. Hence [`Agent::send_ready`]
//! and the DRAIN handler flush all open frames first, and
//! [`Agent::on_idle`] flushes once the mailbox drains so async-mode
//! traffic keeps moving between barriers.

use super::*;

impl Agent {
    /// The coalescer tuning for sends to `agent`, derived from the
    /// system config.
    fn coalesce_config(&self, agent: AgentId) -> CoalesceConfig {
        let mut c = if self.cfg.coalescing {
            CoalesceConfig::default()
        } else {
            CoalesceConfig::disabled()
        };
        if agent == self.id {
            // Self-sends drain from this same thread: blocking on our
            // own queue's credit would deadlock.
            c.credit_bytes = 0;
        }
        c
    }

    fn make_outbox(&self, out: Outbox, agent: AgentId) -> CoalescingOutbox {
        let co = CoalescingOutbox::new(out, self.coalesce_config(agent))
            .with_net_stats(self.net.clone());
        if self.tracer.enabled() {
            co.with_tracer(self.tracer.clone())
        } else {
            co
        }
    }

    fn outbox(&mut self, agent: AgentId) -> Option<&mut CoalescingOutbox> {
        if !self.outboxes.contains_key(&agent) {
            let addr = self
                .view
                .addr_of(agent)
                .cloned()
                .unwrap_or_else(|| agent_addr(agent));
            match self.transport.sender(&addr) {
                Ok(out) => {
                    let co = self.make_outbox(out, agent);
                    self.outboxes.insert(agent, co);
                }
                Err(_) => return None,
            }
        }
        self.outboxes.get_mut(&agent)
    }

    /// Run `f` against the (created on demand) outbox for `agent`,
    /// then hand any frames the transport refused to the retry path.
    /// This is the append-side twin of [`Agent::push_to`].
    pub(super) fn with_outbox(&mut self, agent: AgentId, f: impl FnOnce(&mut CoalescingOutbox)) {
        let failed = match self.outbox(agent) {
            Some(out) => {
                f(out);
                out.has_failed()
            }
            None => false,
        };
        if failed {
            self.retry_failed(agent);
        }
    }

    /// Send a pre-built frame to `agent`. Any open coalesced frame for
    /// that destination is flushed first, so record order stays FIFO.
    pub(super) fn push_to(&mut self, agent: AgentId, frame: Frame) {
        self.with_outbox(agent, |out| out.send(frame));
    }

    /// The cached outbox to `agent` is dead (TCP writer broke, or the
    /// peer's mailbox went away). Retire it, re-push the refused
    /// frames with fresh senders under the configured policy, and
    /// re-cache a working outbox; if the peer is really gone, failure
    /// detection will evict it and recovery re-owns its edges.
    fn retry_failed(&mut self, agent: AgentId) {
        let Some(mut dead) = self.outboxes.remove(&agent) else {
            return;
        };
        // Close any open frame; its send fails onto the refused list.
        dead.flush();
        self.coalesce_retired.absorb(dead.stats());
        let frames = dead.take_failed();
        let addr = self
            .view
            .addr_of(agent)
            .cloned()
            .unwrap_or_else(|| agent_addr(agent));
        self.metrics.retries_attempted += 1;
        let mut all_ok = true;
        for frame in frames {
            match self
                .transport
                .push_with_retry(&addr, frame, &self.cfg.send_policy)
            {
                Ok(retries) => self.metrics.retries_attempted += retries as u64,
                Err(_) => {
                    // Peer gone; senders recover on the next view
                    // update, and the failure detector will reconcile
                    // the lost records.
                    all_ok = false;
                    break;
                }
            }
        }
        if all_ok {
            if let Ok(out) = self.transport.sender(&addr) {
                let co = self.make_outbox(out, agent);
                self.outboxes.insert(agent, co);
            }
        }
    }

    /// Phase-end flush: close every destination's open frame and push
    /// it, retrying whatever the transport refuses. Called before
    /// every READY/DRAIN report and at idle, so barrier counters never
    /// run ahead of delivered frames.
    pub(super) fn flush_outboxes(&mut self) {
        let mut failed: Vec<AgentId> = Vec::new();
        for (&agent, out) in self.outboxes.iter_mut() {
            out.flush();
            if out.has_failed() {
                failed.push(agent);
            }
        }
        for agent in failed {
            self.retry_failed(agent);
        }
    }

    /// Drop every cached outbox (their addresses went stale with a
    /// view change), flushing open frames to the old — still live —
    /// peers first and preserving their counters. Receivers forward
    /// anything that no longer belongs to them.
    pub(super) fn retire_outboxes(&mut self) {
        self.flush_outboxes();
        for (_, out) in self.outboxes.drain() {
            self.coalesce_retired.absorb(out.stats());
        }
    }

    /// Drop every cached outbox *without* flushing: recovery resets
    /// all counters, so pushing half-built frames counted under the
    /// old regime would only corrupt the fresh barrier sums.
    pub(super) fn discard_outboxes(&mut self) {
        for (_, out) in self.outboxes.drain() {
            self.coalesce_retired.absorb(out.stats());
        }
    }

    /// Coalescer counters summed across live and retired outboxes.
    pub(super) fn coalesce_totals(&self) -> CoalesceStats {
        let mut total = self.coalesce_retired;
        for out in self.outboxes.values() {
            total.absorb(out.stats());
        }
        total
    }

    pub(super) fn send_ready(
        &mut self,
        run: u64,
        step: u32,
        phase: Phase,
        active: u64,
        contrib: f64,
        n_primary: u64,
    ) {
        // The report's counters claim these records as sent; make it
        // true before the directory can act on it.
        self.flush_outboxes();
        self.reported = Some((run, step, phase));
        self.reported_counters = Some(self.counters);
        self.ready_seq += 1;
        let rep = ReadyReport {
            agent: self.id,
            run,
            step,
            phase,
            counters: self.counters,
            active,
            global_contrib: contrib,
            n_primary,
            seq: self.ready_seq,
            epoch: self.view.epoch,
        };
        let _ = self.dir_push.send(msg::encode_ready(&rep));
    }

    /// Re-send the last READY with fresh counters after processing a
    /// late message (the directory replaces the old report and
    /// re-evaluates its barrier).
    pub(super) fn re_report(&mut self) {
        if let Some((run, step, phase)) = self.reported {
            let (active, contrib, n_primary) = if phase == Phase::Apply {
                self.apply_summary()
            } else if phase == Phase::Scatter {
                let (c, n) = self.scatter_summary();
                (0, c, n)
            } else {
                (0, 0.0, 0)
            };
            self.send_ready(run, step, phase, active, contrib, n_primary);
        }
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    /// Data-plane traffic accounting for this agent: per-packet-type
    /// frames/bytes from its own [`NetStats`] sink plus the coalescer
    /// flush counters. RX pool hits/misses are recorded by the
    /// transport's receive loops, not the agent's private sink, so
    /// they are drained (claimed once) into the private sink first —
    /// with a shared in-process transport the counts distribute across
    /// agents but sum exactly cluster-wide.
    pub(super) fn comms_snapshot(&self) -> CommsMetrics {
        if let Some(ts) = self.transport.net_stats() {
            let (h, m) = ts.drain_rx_pool();
            self.net.record_rx_pool(h, m);
        }
        CommsMetrics::snapshot(&self.net, &self.coalesce_totals())
    }

    pub(super) fn flush_metrics(&mut self, force: bool) {
        if force || self.metrics_flushed.elapsed() > Duration::from_millis(100) {
            self.metrics_flushed = Instant::now();
            let (mut hits, mut misses) = self.route_cache.stats();
            for c in &self.worker_caches {
                let (h, m) = c.stats();
                hits += h;
                misses += m;
            }
            self.metrics.owner_cache_hits = hits;
            self.metrics.owner_cache_misses = misses;
            self.metrics.comms = self.comms_snapshot();
            let _ = self.dir_push.send(self.metrics.encode());
        }
    }
}
