//! Superstep execution: the sync scatter/combine/apply phases, the
//! parallel shard kernels, the message handlers that feed them, and
//! the async event-driven mode.

use super::*;

/// Reusable per-superstep buffers. The kernels write per-shard batch
/// maps which are merged (in shard order, for determinism) into the
/// `merged` maps before encoding; all inner `Vec`s are cleared but
/// never dropped, so steady-state supersteps allocate nothing.
#[derive(Default)]
pub(super) struct StepScratch {
    /// Per-shard `(vertex, value)` batches (scatter vmsgs, combine
    /// partials). Indexed like the vertex shards.
    per_shard: Vec<FxHashMap<AgentId, Vec<(VertexId, u64)>>>,
    merged: FxHashMap<AgentId, Vec<(VertexId, u64)>>,
    /// Per-shard state broadcasts (apply).
    per_shard_states: Vec<FxHashMap<AgentId, Vec<StateRecord>>>,
    merged_states: FxHashMap<AgentId, Vec<StateRecord>>,
    /// Per-shard dangling-mass change from this step's folds (delta
    /// apply); summed in shard order for determinism.
    per_shard_dangling: Vec<f64>,
}

impl StepScratch {
    pub(super) fn new() -> Self {
        StepScratch {
            per_shard: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
            per_shard_states: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
            per_shard_dangling: vec![0.0; SHARDS],
            ..Default::default()
        }
    }
}

/// Shared read-only context handed to the parallel shard kernels.
#[derive(Clone, Copy)]
pub(super) struct KernelCtx<'a> {
    program: &'a dyn VertexProgram,
    locator: &'a EdgeLocator,
    sketch: &'a CountMinSketch,
    my_id: AgentId,
    n_vertices: u64,
    step: u32,
    scatter_all: bool,
    reuse: bool,
    global: f64,
    /// Residual delta run: frontier seeded from accumulated residuals,
    /// scatter pushes applied deltas instead of full states.
    delta: bool,
    /// Vertex count the carried-over residuals were computed under
    /// (0 = unknown); drives the step-0 teleport reseed.
    prev_n: u64,
    /// Per-vertex dangling term baked into carried states (from
    /// [`msg::RunInfo::dangling_base`]); seeds vertices that first
    /// appear in this run.
    dangling_base: f64,
}

impl Agent {
    // ------------------------------------------------------------------
    // Sync phases
    // ------------------------------------------------------------------

    pub(super) fn phase_scatter(&mut self) {
        let run = self.run.as_ref().expect("scatter without run");
        let run_id = run.info.run_id;
        let step = run.step;
        if step == 0 {
            // Step 0 is preparation: report the primary vertex count so
            // the directory can hand `n` to initialization.
            let (contrib, n_primary) = self.scatter_summary();
            self.send_ready(run_id, 0, Phase::Scatter, 0, contrib, n_primary);
            return;
        }
        self.run_kernel(Phase::Scatter);
        let (contrib, n_primary) = self.scatter_summary();
        self.send_ready(run_id, step, Phase::Scatter, 0, contrib, n_primary);
    }

    pub(super) fn phase_combine(&mut self) {
        let run = self.run.as_ref().expect("combine without run");
        let run_id = run.info.run_id;
        let step = run.step;
        self.run_kernel(Phase::Combine);
        self.send_ready(run_id, step, Phase::Combine, 0, 0.0, 0);
    }

    pub(super) fn phase_apply(&mut self) {
        let run = self.run.as_ref().expect("apply without run");
        let run_id = run.info.run_id;
        let step = run.step;
        self.run_kernel(Phase::Apply);
        let (active, contrib, n_primary) = self.apply_summary();
        self.send_ready(run_id, step, Phase::Apply, active, contrib, n_primary);
    }

    /// Run one superstep kernel over all vertex shards on the worker
    /// pool, then merge and send the per-shard batches.
    ///
    /// Determinism: the shard count is fixed (independent of the worker
    /// count), each shard is processed by exactly one worker, and the
    /// per-shard batches are merged in shard index order — so the
    /// per-destination byte streams are identical for any worker count.
    fn run_kernel(&mut self, phase: Phase) {
        let run = self.run.as_ref().expect("kernel without run");
        let program = run.program.clone();
        let run_id = run.info.run_id;
        let step = run.step;
        let ctx = KernelCtx {
            program: &*program,
            locator: &self.locator,
            sketch: &self.view.sketch,
            my_id: self.id,
            n_vertices: run.n_vertices,
            step,
            scatter_all: program.scatter_all(),
            reuse: run.info.reuse_state,
            global: run.global,
            delta: run.info.delta,
            prev_n: self.delta_seed.as_ref().map_or(0, |s| s.n),
            dangling_base: run.info.dangling_base,
        };
        let epoch = self.view.epoch;
        for c in &mut self.worker_caches {
            c.ensure_epoch(epoch);
        }
        self.scratch.per_shard_dangling.fill(0.0);
        // Tiny stores run serially: thread-spawn overhead would dwarf
        // the kernel. Harmless for determinism — output bytes do not
        // depend on the worker count.
        let workers = if self.vertices.len() < 1024 {
            1
        } else {
            self.workers.clamp(1, SHARDS)
        };
        let chunk = SHARDS.div_ceil(workers);
        {
            let shards = self.vertices.shards_mut();
            let scratch = &mut self.scratch.per_shard;
            let scratch_states = &mut self.scratch.per_shard_states;
            let scratch_dangling = &mut self.scratch.per_shard_dangling;
            let caches = &mut self.worker_caches;
            if workers == 1 {
                // Serial fast path: no thread spawn overhead.
                let cache = &mut caches[0];
                for (i, shard) in shards.iter_mut().enumerate() {
                    kernel_shard(
                        phase,
                        ctx,
                        cache,
                        shard,
                        &mut scratch[i],
                        &mut scratch_states[i],
                        &mut scratch_dangling[i],
                    );
                }
            } else {
                std::thread::scope(|scope| {
                    let work = shards
                        .chunks_mut(chunk)
                        .zip(scratch.chunks_mut(chunk))
                        .zip(scratch_states.chunks_mut(chunk))
                        .zip(scratch_dangling.chunks_mut(chunk))
                        .zip(caches.iter_mut());
                    for ((((sh, sc), scs), scd), cache) in work {
                        scope.spawn(move || {
                            for (((shard, out), out_states), out_dangling) in sh
                                .iter_mut()
                                .zip(sc.iter_mut())
                                .zip(scs.iter_mut())
                                .zip(scd.iter_mut())
                            {
                                kernel_shard(
                                    phase,
                                    ctx,
                                    cache,
                                    shard,
                                    out,
                                    out_states,
                                    out_dangling,
                                );
                            }
                        });
                    }
                });
            }
        }
        if phase == Phase::Apply {
            // Shard-order sum: deterministic for any worker count.
            self.dangling_acc += self.scratch.per_shard_dangling.iter().sum::<f64>();
        }
        // Merge per-shard batches in shard index order: each
        // destination's messages end up in the same order no matter how
        // many workers produced them. The records then leave through
        // the per-destination coalescing outboxes (or, with coalescing
        // off, as eagerly encoded `BATCH`-sized frames); both paths
        // preserve that per-destination order exactly.
        let coalescing = self.cfg.coalescing;
        match phase {
            Phase::Apply => {
                let mut merged = std::mem::take(&mut self.scratch.merged_states);
                for shard_states in &mut self.scratch.per_shard_states {
                    for (&agent, recs) in shard_states.iter_mut() {
                        if !recs.is_empty() {
                            merged.entry(agent).or_default().append(recs);
                        }
                    }
                }
                for (&agent, recs) in merged.iter_mut() {
                    if recs.is_empty() {
                        continue;
                    }
                    self.counters.state_sent += recs.len() as u64;
                    if coalescing {
                        let recs = &recs[..];
                        self.with_outbox(agent, |out| {
                            for rec in recs {
                                msg::append_state(out, run_id, step, rec);
                            }
                        });
                    } else {
                        for chunk in recs.chunks(BATCH) {
                            let frame = msg::encode_states(run_id, step, chunk);
                            self.push_to(agent, frame);
                        }
                    }
                    recs.clear();
                }
                self.scratch.merged_states = merged;
            }
            _ => {
                let mut merged = std::mem::take(&mut self.scratch.merged);
                for shard_batches in &mut self.scratch.per_shard {
                    for (&agent, msgs) in shard_batches.iter_mut() {
                        if !msgs.is_empty() {
                            merged.entry(agent).or_default().append(msgs);
                        }
                    }
                }
                for (&agent, msgs) in merged.iter_mut() {
                    if msgs.is_empty() {
                        continue;
                    }
                    if phase == Phase::Scatter {
                        self.counters.vmsg_sent += msgs.len() as u64;
                    } else {
                        self.counters.part_sent += msgs.len() as u64;
                    }
                    if coalescing {
                        let msgs = &msgs[..];
                        self.with_outbox(agent, |out| {
                            for &(v, value) in msgs {
                                if phase == Phase::Scatter {
                                    msg::append_vmsg(out, run_id, step, v, value);
                                } else {
                                    msg::append_partial(out, run_id, step, v, value);
                                }
                            }
                        });
                    } else {
                        for chunk in msgs.chunks(BATCH) {
                            let frame = if phase == Phase::Scatter {
                                msg::encode_vmsgs(run_id, step, chunk)
                            } else {
                                msg::encode_partials(run_id, step, chunk)
                            };
                            self.push_to(agent, frame);
                        }
                    }
                    msgs.clear();
                }
                self.scratch.merged = merged;
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handlers (sync + async)
    // ------------------------------------------------------------------

    pub(super) fn on_vmsg(&mut self, frame: Frame) {
        // The decoded view borrows the frame's pooled receive buffer;
        // records are parsed in place as the loops below consume them,
        // with no intermediate Vec.
        let Some(view) = msg::decode_vmsgs(&frame) else {
            return;
        };
        let (run_id, step) = (view.run, view.step);
        match self.current_phase() {
            Some((cur_run, _, _, true)) if cur_run == run_id => {
                // Async: apply immediately at the primary.
                self.counters.vmsg_recv += view.records.len() as u64;
                self.metrics.vmsgs += view.records.len() as u64;
                for (v, value) in view.records {
                    self.async_apply(v, value);
                }
                self.re_report_async();
            }
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Scatter =>
            {
                self.counters.vmsg_recv += view.records.len() as u64;
                self.metrics.vmsgs += view.records.len() as u64;
                let program = self.run.as_ref().expect("run").program.clone();
                for (v, value) in view.records {
                    let (e, dirty) = self.vertices.entry_and_dirty(v);
                    if e.has_partial {
                        e.partial = program.combine(e.partial, value);
                    } else {
                        e.partial = value;
                        e.has_partial = true;
                        // First partial since the last combine: record
                        // it so phase_combine only walks receivers.
                        dirty.push(v);
                    }
                }
                // Late-arrival re-report happens from on_idle, once
                // per drain batch, not once per frame.
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                // Future step or wrong phase: store until we catch up.
                self.buffered_frames.push(frame);
            }
            // Stale run: the sender had not yet seen our ADVANCE(done)
            // or RECOVER when it flushed. Drop the frame — its receive
            // will never be counted, but neither will the finished
            // run's barrier consult these counters again.
            _ => self.metrics.stale_frames += 1,
        }
    }

    pub(super) fn on_partial(&mut self, frame: Frame) {
        let Some(view) = msg::decode_partials(&frame) else {
            return;
        };
        let (run_id, step) = (view.run, view.step);
        match self.current_phase() {
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Combine =>
            {
                self.counters.part_recv += view.records.len() as u64;
                let program = self.run.as_ref().expect("run").program.clone();
                for (v, value) in view.records {
                    let e = self.vertices.entry_or_default(v);
                    if e.has_ppartial {
                        e.ppartial = program.combine(e.ppartial, value);
                    } else {
                        e.ppartial = value;
                        e.has_ppartial = true;
                    }
                }
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                self.buffered_frames.push(frame);
            }
            _ => self.metrics.stale_frames += 1, // stale run: drop
        }
    }

    pub(super) fn on_state(&mut self, frame: Frame) {
        let Some(view) = msg::decode_states(&frame) else {
            return;
        };
        let (run_id, step) = (view.run, view.step);
        match self.current_phase() {
            Some((cur_run, _, _, true)) if cur_run == run_id => {
                // Async: adopt the state and scatter right away. Delta
                // runs push the applied delta the record carries (zero
                // aux — e.g. a rescatter refresh — pushes nothing).
                self.counters.state_recv += view.records.len() as u64;
                let delta_run = self.run.as_ref().is_some_and(|r| r.info.delta);
                for rec in view.records {
                    let e = self.vertices.entry_or_default(rec.vertex);
                    e.state = rec.state;
                    e.has_state = true;
                    e.rep_out_degree = rec.out_degree;
                    e.active = rec.active;
                    if delta_run {
                        if rec.aux != 0 {
                            self.scatter_delta_one(rec.vertex, rec.aux);
                        }
                    } else if rec.active {
                        self.scatter_one(rec.vertex);
                    }
                }
                self.re_report_async();
            }
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Apply =>
            {
                self.counters.state_recv += view.records.len() as u64;
                let delta_run = self.run.as_ref().is_some_and(|r| r.info.delta);
                for rec in view.records {
                    let e = self.vertices.entry_or_default(rec.vertex);
                    e.state = rec.state;
                    e.has_state = true;
                    e.rep_out_degree = rec.out_degree;
                    e.active = rec.active;
                    if delta_run {
                        // Scattered at the next Scatter phase.
                        e.pending_delta = rec.aux;
                        e.has_pending_delta = true;
                    }
                }
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                self.buffered_frames.push(frame);
            }
            _ => self.metrics.stale_frames += 1, // stale run: drop
        }
    }

    // ------------------------------------------------------------------
    // Async mode
    // ------------------------------------------------------------------

    /// Initial scatter when entering async mode: all active vertices
    /// fire once, then execution is event-driven. Delta runs fire the
    /// pending deltas the step-0 apply broadcast instead.
    pub(super) fn async_initial_scatter(&mut self) {
        if self.run.as_ref().is_some_and(|r| r.info.delta) {
            let pending: Vec<(VertexId, u64)> = self
                .vertices
                .iter()
                .filter(|(_, e)| e.has_pending_delta)
                .map(|(&v, e)| (v, e.pending_delta))
                .collect();
            for (v, delta) in pending {
                if let Some(e) = self.vertices.get_mut(&v) {
                    e.pending_delta = 0;
                    e.has_pending_delta = false;
                }
                self.scatter_delta_one(v, delta);
            }
            self.re_report_async();
            return;
        }
        let actives: Vec<VertexId> = self
            .vertices
            .iter()
            .filter(|(_, e)| e.active && e.has_state)
            .map(|(&v, _)| v)
            .collect();
        for v in actives {
            self.scatter_one(v);
        }
        self.re_report_async();
    }

    /// Resume after a mid-run view change: every primary re-broadcasts
    /// its authoritative state — marked active — to the vertex's
    /// (new-view) replica set. Replicas adopt the state and re-scatter
    /// their local edge slices, which regenerates everything a moved
    /// placement can lose: messages that were in flight toward departed
    /// primaries, and state copies that went stale on freshly migrated
    /// edges. The round costs one message per edge — the same as async
    /// initialization — and keeps §3.2 waiting sets aligned, since
    /// every receiver sees exactly one message per in-edge.
    pub(super) fn async_rescatter(&mut self) {
        // Waiting sets completed by a migration merge (the final
        // message landed at the old primary) have no further incoming
        // message to trigger their apply; drain them first so their
        // progress is not held against the fresh round.
        let waiting: Vec<VertexId> = self
            .vertices
            .iter()
            .filter(|(_, e)| e.has_ppartial && e.wait_recv > 0)
            .map(|(&v, _)| v)
            .collect();
        for v in waiting {
            self.async_try_complete(v);
        }
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let run_id = run.info.run_id;
        let owned: Vec<(VertexId, StateRecord)> = self
            .vertices
            .iter()
            .filter(|&(&v, e)| e.is_meta && e.has_state && self.is_primary(v))
            .map(|(&v, e)| {
                (
                    v,
                    StateRecord {
                        vertex: v,
                        state: e.state,
                        out_degree: e.g_out.max(0) as u64,
                        // A refresh, not an applied delta: replicas on
                        // delta runs must not re-push (aux == 0 is the
                        // "nothing to scatter" sentinel).
                        aux: 0,
                        active: true,
                    },
                )
            })
            .collect();
        let count = owned.len() as u64;
        self.route_cache.ensure_epoch(self.view.epoch);
        for (v, rec) in owned {
            let replicas: Vec<AgentId> = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .replicas(&self.locator, v, || sketch.estimate(v))
                    .to_vec()
            };
            for replica in replicas {
                self.counters.state_sent += 1;
                self.with_outbox(replica, |out| msg::append_state(out, run_id, 1, &rec));
            }
        }
        self.tracer
            .instant(EventKind::AsyncRescatter, self.view.epoch, count);
        // Delta runs: residuals that were hot when the pause hit — or
        // that migrated in with their vertices — have no arriving
        // message left to re-trigger them. Mark every above-zero parked
        // residual hot so the next idle drain folds it.
        if self.run.as_ref().is_some_and(|r| r.info.delta) {
            let parked: Vec<VertexId> = self
                .vertices
                .iter()
                .filter(|&(&v, e)| e.is_meta && e.has_residual && self.is_primary(v))
                .map(|(&v, _)| v)
                .collect();
            self.delta_hot.extend(parked);
        }
    }

    /// Complete `v`'s waiting set if the program's requirement is
    /// already met — possible after a migration merged two primaries'
    /// progress, leaving no further message to trigger the apply.
    fn async_try_complete(&mut self, v: VertexId) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let Some(e) = self.vertices.get_mut(&v) else {
            return;
        };
        if !(e.has_ppartial && e.wait_recv > 0) {
            return;
        }
        let ctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices,
            step: 1,
            global: 0.0,
        };
        let needed = program.waits_for(v, &ctx);
        if needed == 0 || e.wait_recv < needed {
            return;
        }
        let agg = e.ppartial;
        e.has_ppartial = false;
        e.ppartial = 0;
        e.wait_recv = 0;
        self.async_commit(v, agg);
    }

    /// Event-driven single-vertex delta push (async delta mode): the
    /// applied delta a primary just broadcast is transformed by
    /// `scatter_delta` and routed along this replica's local out-edge
    /// slice to each target's primary.
    pub(super) fn scatter_delta_one(&mut self, v: VertexId, delta: u64) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let step = run.step;
        let run_id = run.info.run_id;
        self.route_cache.ensure_epoch(self.view.epoch);
        let mut batches: FxHashMap<AgentId, Vec<(VertexId, u64)>> = FxHashMap::default();
        {
            let locator = &self.locator;
            let sketch = &self.view.sketch;
            let cache = &mut self.route_cache;
            let Some(e) = self.vertices.get(&v) else {
                return;
            };
            let ctx = VertexCtx {
                out_degree: e.rep_out_degree,
                in_degree: 0,
                n_vertices,
                step,
                global: 0.0,
            };
            if let Some(val) = program.scatter_delta(v, e.state, delta, &ctx) {
                for &w in &e.out {
                    let vv = program.along_edge(v, w, val);
                    if let Some(owner) = cache.primary(locator, w, || sketch.estimate(w)) {
                        batches.entry(owner).or_default().push((w, vv));
                    }
                }
            }
        }
        let coalescing = self.cfg.coalescing;
        for (agent, msgs) in batches {
            self.counters.vmsg_sent += msgs.len() as u64;
            if coalescing {
                self.with_outbox(agent, |out| {
                    for &(w, vv) in &msgs {
                        msg::append_vmsg(out, run_id, step, w, vv);
                    }
                });
            } else {
                for chunk in msgs.chunks(BATCH) {
                    let frame = msg::encode_vmsgs(run_id, step, chunk);
                    self.push_to(agent, frame);
                }
            }
        }
    }

    /// Event-driven single-vertex scatter (async mode): messages route
    /// straight to the target's primary.
    pub(super) fn scatter_one(&mut self, v: VertexId) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let scatter_all = program.scatter_all();
        let n_vertices = run.n_vertices;
        let step = run.step;
        let run_id = run.info.run_id;
        self.route_cache.ensure_epoch(self.view.epoch);
        let mut batches: FxHashMap<AgentId, Vec<(VertexId, u64)>> = FxHashMap::default();
        {
            let locator = &self.locator;
            let sketch = &self.view.sketch;
            let cache = &mut self.route_cache;
            let Some(e) = self.vertices.get(&v) else {
                return;
            };
            if e.has_state && (e.active || scatter_all) {
                let ctx = VertexCtx {
                    out_degree: e.rep_out_degree,
                    in_degree: 0,
                    n_vertices,
                    step,
                    global: 0.0,
                };
                if let Some(val) = program.scatter_out(v, e.state, &ctx) {
                    for &w in &e.out {
                        let vv = program.along_edge(v, w, val);
                        if let Some(owner) = cache.primary(locator, w, || sketch.estimate(w)) {
                            batches.entry(owner).or_default().push((w, vv));
                        }
                    }
                }
                if let Some(val) = program.scatter_in(v, e.state, &ctx) {
                    for &u in &e.inn {
                        let vv = program.along_edge(v, u, val);
                        if let Some(owner) = cache.primary(locator, u, || sketch.estimate(u)) {
                            batches.entry(owner).or_default().push((u, vv));
                        }
                    }
                }
            }
        }
        if let Some(e) = self.vertices.get_mut(&v) {
            e.active = false;
        }
        let coalescing = self.cfg.coalescing;
        for (agent, msgs) in batches {
            self.counters.vmsg_sent += msgs.len() as u64;
            if coalescing {
                self.with_outbox(agent, |out| {
                    for &(w, vv) in &msgs {
                        msg::append_vmsg(out, run_id, step, w, vv);
                    }
                });
            } else {
                for chunk in msgs.chunks(BATCH) {
                    let frame = msg::encode_vmsgs(run_id, step, chunk);
                    self.push_to(agent, frame);
                }
            }
        }
    }

    /// Async apply-at-primary: combine the incoming value, apply, and
    /// broadcast on change.
    pub(super) fn async_apply(&mut self, v: VertexId, value: u64) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let run_id = run.info.run_id;
        if !self.is_primary(v) {
            // Stale routing: the sender resolved `v` under an older
            // view. Re-resolve against the adopted epoch and forward to
            // the vertex's current primary.
            self.route_cache.ensure_epoch(self.view.epoch);
            let primary = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .primary(&self.locator, v, || sketch.estimate(v))
            };
            if let Some(primary) = primary {
                self.counters.vmsg_sent += 1;
                self.with_outbox(primary, |out| msg::append_vmsg(out, run_id, 1, v, value));
            }
            return;
        }
        if run.info.delta {
            // Residual pushes accumulate commutatively; the §3.2
            // waiting-set machinery (which exists to impose rounds on
            // non-commutative programs) does not apply.
            self.async_delta_commit(v, value);
            return;
        }
        let e = self.vertices.entry_or_default(v);
        let ctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices,
            step: 1,
            global: 0.0,
        };
        if !e.has_state {
            e.state = program.init(v, &ctx);
            e.has_state = true;
        }
        // §3.2 waiting set: collect messages until the program's
        // requirement is met, then process once with the combined
        // aggregate.
        let needed = program.waits_for(v, &ctx);
        let value = if needed > 0 {
            if e.has_ppartial {
                e.ppartial = program.combine(e.ppartial, value);
            } else {
                e.ppartial = value;
                e.has_ppartial = true;
            }
            e.wait_recv += 1;
            if e.wait_recv < needed {
                return; // still waiting on specific messages
            }
            let agg = e.ppartial;
            e.has_ppartial = false;
            e.ppartial = 0;
            e.wait_recv = 0;
            agg
        } else {
            value
        };
        self.async_commit(v, value);
    }

    /// The async-delta apply-at-primary head: merge the pushed delta
    /// into the vertex's residual and mark the vertex hot. The fold +
    /// broadcast happen in [`Self::drain_delta_hot`] once the mailbox
    /// empties, so every push queued behind this one lands in the same
    /// fold — one broadcast per vertex per drain instead of one per
    /// arriving message.
    fn async_delta_commit(&mut self, v: VertexId, value: u64) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let e = self.vertices.entry_or_default(v);
        e.residual = if e.has_residual {
            program.merge_residual(e.residual, value)
        } else {
            value
        };
        e.has_residual = true;
        self.delta_hot.insert(v);
    }

    /// Fold every hot residual and broadcast the applied deltas.
    ///
    /// Runs at mailbox-idle, *before* the idle READY report: the
    /// termination barrier only ever sees counters taken with an empty
    /// hot set, so it cannot settle while an above-tolerance residual
    /// is still waiting to fire. During a mid-run pause the hot set is
    /// left alone — the migrate machinery moves parked residuals with
    /// their vertices and [`Self::async_rescatter`] re-marks them on
    /// resume.
    pub(super) fn drain_delta_hot(&mut self) {
        if self.delta_hot.is_empty() {
            return;
        }
        let Some(run) = self.run.as_ref() else {
            self.delta_hot.clear();
            return;
        };
        if !run.info.delta || !run.async_live {
            self.delta_hot.clear();
            return;
        }
        if run.paused {
            return;
        }
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let run_id = run.info.run_id;
        let dangling_base = run.info.dangling_base;
        let hot: Vec<VertexId> = self.delta_hot.drain().collect();
        self.route_cache.ensure_epoch(self.view.epoch);
        let mut dangling = 0.0;
        for v in hot {
            let mut broadcast: Option<StateRecord> = None;
            {
                let Some(e) = self.vertices.get_mut(&v) else {
                    continue;
                };
                let ctx = VertexCtx {
                    out_degree: e.g_out.max(0) as u64,
                    in_degree: e.g_in.max(0) as u64,
                    n_vertices,
                    step: 1,
                    global: 0.0,
                };
                if !e.has_state {
                    let (s, mut r0) = program.delta_init(v, &ctx);
                    // Same newcomer seeding as the sync step-0 apply.
                    if let Some(seed) = program.dangling_seed_residual(dangling_base, &ctx) {
                        r0 = program.merge_residual(r0, seed);
                    }
                    e.state = s;
                    e.has_state = true;
                    e.residual = if e.has_residual {
                        program.merge_residual(r0, e.residual)
                    } else {
                        r0
                    };
                    e.has_residual = true;
                }
                if !e.has_residual {
                    continue;
                }
                match program.fold_residual(v, e.state, e.residual, &ctx) {
                    Some((new, applied)) => {
                        // Folds at sinks move global dangling mass;
                        // the change rides the next idle report.
                        let g_out = e.g_out.max(0) as u64;
                        dangling += program.dangling_mass(new, g_out)
                            - program.dangling_mass(e.state, g_out);
                        e.state = new;
                        e.residual = 0;
                        e.has_residual = false;
                        e.active = true;
                        broadcast = Some(StateRecord {
                            vertex: v,
                            state: new,
                            out_degree: e.g_out.max(0) as u64,
                            aux: applied,
                            active: true,
                        });
                    }
                    None => {
                        // Below tolerance: stays parked in `e.residual`
                        // for the next batch.
                        e.active = false;
                    }
                }
            }
            if let Some(rec) = broadcast {
                let replicas: Vec<AgentId> = {
                    let sketch = &self.view.sketch;
                    self.route_cache
                        .replicas(&self.locator, v, || sketch.estimate(v))
                        .to_vec()
                };
                for replica in replicas {
                    self.counters.state_sent += 1;
                    self.with_outbox(replica, |out| msg::append_state(out, run_id, 1, &rec));
                }
            }
        }
        self.dangling_acc += dangling;
    }

    /// The apply-and-broadcast tail of the async path: run the
    /// program's apply with the combined `value` and, on change,
    /// broadcast the new state to the vertex's replica set.
    fn async_commit(&mut self, v: VertexId, value: u64) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let run_id = run.info.run_id;
        let e = self.vertices.entry_or_default(v);
        let ctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices,
            step: 1,
            global: 0.0,
        };
        let (new, changed) = program.apply(v, e.state, Some(value), &ctx);
        if changed {
            e.state = new;
            e.active = true;
            let rec = StateRecord {
                vertex: v,
                state: new,
                out_degree: e.g_out.max(0) as u64,
                aux: 0,
                active: true,
            };
            self.route_cache.ensure_epoch(self.view.epoch);
            let replicas: Vec<AgentId> = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .replicas(&self.locator, v, || sketch.estimate(v))
                    .to_vec()
            };
            for replica in replicas {
                self.counters.state_sent += 1;
                self.with_outbox(replica, |out| msg::append_state(out, run_id, 1, &rec));
            }
        }
    }

    /// Push an idle report when the async counters moved.
    pub(super) fn re_report_async(&mut self) {
        // Reports are sent from on_idle; nothing to do here (counters
        // will differ from the last idle snapshot).
    }

    pub(super) fn on_idle(&mut self) {
        // Fold the residuals that accumulated while the mailbox was
        // busy. Must precede the flush and the idle report: the folds
        // append broadcasts, and the barrier may only see counters
        // taken with an empty hot set.
        self.drain_delta_hot();
        // The mailbox drained: whatever the handlers appended must
        // reach the wire now — peers (and the termination barrier)
        // cannot make progress on records parked in open frames. A
        // no-op when nothing is open.
        self.flush_outboxes();
        let Some(run) = self.run.as_ref() else {
            return;
        };
        if !run.async_live || run.paused {
            // Sync mode — or an async run paused for a mid-run view
            // change, where the migrate barrier is the one consuming
            // READYs: late counted frames (retransmits, delayed
            // deliveries) moved the counters since the last READY, so
            // re-send it once now that the mailbox drained. Doing this
            // here instead of per-frame keeps the barrier live without
            // flooding the directory under chaos.
            if self.reported.is_some() && self.reported_counters != Some(self.counters) {
                self.re_report();
            }
            return;
        }
        if self.last_idle_counters == Some(self.counters) {
            return;
        }
        self.last_idle_counters = Some(self.counters);
        let (run_id, delta) = (run.info.run_id, run.info.delta);
        // Async delta runs report the *cumulative* dangling-mass change
        // since release; the lead telescopes per-agent differences into
        // redistribution rounds, so stale or re-sent values self-correct.
        let global_contrib = if delta { self.dangling_report() } else { 0.0 };
        self.ready_seq += 1;
        let rep = ReadyReport {
            agent: self.id,
            run: run_id,
            step: u32::MAX,
            phase: Phase::Scatter,
            counters: self.counters,
            active: 0,
            global_contrib,
            n_primary: 0,
            seq: self.ready_seq,
            epoch: self.view.epoch,
        };
        let _ = self.dir_push.send(msg::encode_ready(&rep));
    }
}

/// Dispatch one shard through the kernel for `phase`. Runs on a worker
/// thread; touches only its own shard, scratch maps, and owner cache.
fn kernel_shard(
    phase: Phase,
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
    out_states: &mut FxHashMap<AgentId, Vec<StateRecord>>,
    out_dangling: &mut f64,
) {
    match phase {
        Phase::Scatter => scatter_shard(ctx, cache, shard, out),
        Phase::Combine => combine_shard(ctx, cache, shard, out),
        Phase::Apply => apply_shard(ctx, cache, shard, out_states, out_dangling),
        Phase::Migrate => {}
    }
}

/// Scatter messages for one shard's eligible vertices, routing each to
/// the target's aggregation replica via the owner cache.
fn scatter_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
) {
    let program = ctx.program;
    if ctx.delta {
        // Delta runs scatter the applied delta the primary broadcast
        // last apply, not the full state, and only along out-edges —
        // the residual invariant is directed.
        for (&v, e) in shard.map.iter_mut() {
            e.active = false;
            if !e.has_pending_delta {
                continue;
            }
            let delta = e.pending_delta;
            e.pending_delta = 0;
            e.has_pending_delta = false;
            let vctx = VertexCtx {
                out_degree: e.rep_out_degree,
                in_degree: 0,
                n_vertices: ctx.n_vertices,
                step: ctx.step,
                global: 0.0,
            };
            if let Some(val) = program.scatter_delta(v, e.state, delta, &vctx) {
                for &w in &e.out {
                    let vv = program.along_edge(v, w, val);
                    if let Some(owner) =
                        cache.owner_of_edge(ctx.locator, w, v, || ctx.sketch.estimate(w))
                    {
                        out.entry(owner).or_default().push((w, vv));
                    }
                }
            }
        }
        return;
    }
    for (&v, e) in shard.map.iter_mut() {
        if !(e.has_state && (e.active || ctx.scatter_all)) {
            // Scatter clears active flags unconditionally (they are
            // re-armed by STATE broadcasts at the next apply).
            e.active = false;
            continue;
        }
        let vctx = VertexCtx {
            out_degree: e.rep_out_degree,
            in_degree: 0,
            n_vertices: ctx.n_vertices,
            step: ctx.step,
            global: 0.0,
        };
        if let Some(val) = program.scatter_out(v, e.state, &vctx) {
            for &w in &e.out {
                let vv = program.along_edge(v, w, val);
                if let Some(owner) =
                    cache.owner_of_edge(ctx.locator, w, v, || ctx.sketch.estimate(w))
                {
                    out.entry(owner).or_default().push((w, vv));
                }
            }
        }
        if let Some(val) = program.scatter_in(v, e.state, &vctx) {
            for &u in &e.inn {
                let vv = program.along_edge(v, u, val);
                if let Some(owner) =
                    cache.owner_of_edge(ctx.locator, u, v, || ctx.sketch.estimate(u))
                {
                    out.entry(owner).or_default().push((u, vv));
                }
            }
        }
        e.active = false;
    }
}

/// Forward one shard's scatter partials to their primaries. Touches
/// only the shard's dirty list — vertices that actually received
/// messages — instead of scanning the whole map; sorts it so the sent
/// order is deterministic regardless of arrival order.
fn combine_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
) {
    let mut dirty = std::mem::take(&mut shard.partial_dirty);
    dirty.sort_unstable();
    for v in dirty.drain(..) {
        let Some(e) = shard.map.get_mut(&v) else {
            continue;
        };
        if !e.has_partial {
            continue;
        }
        if let Some(primary) = cache.primary(ctx.locator, v, || ctx.sketch.estimate(v)) {
            out.entry(primary).or_default().push((v, e.partial));
        }
        e.has_partial = false;
        e.partial = 0;
    }
    // Hand the (drained) buffer back so its capacity is reused.
    shard.partial_dirty = dirty;
}

/// Apply one shard's primaries and queue state broadcasts to their
/// replica sets.
fn apply_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<StateRecord>>,
    out_dangling: &mut f64,
) {
    let program = ctx.program;
    for (&v, e) in shard.map.iter_mut() {
        if !(e.is_meta || e.has_ppartial) {
            continue;
        }
        if cache.primary(ctx.locator, v, || ctx.sketch.estimate(v)) != Some(ctx.my_id) {
            continue;
        }
        let vctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices: ctx.n_vertices,
            step: ctx.step,
            global: ctx.global,
        };
        let mut broadcast = false;
        let mut aux = 0u64;
        if ctx.delta {
            // Residual formulation: the frontier is whatever carries an
            // above-tolerance residual, regardless of step. Step 0
            // additionally folds in new-vertex seeds and the teleport
            // reseed; later steps merge the combined pushed deltas.
            let mut residual = e.has_residual.then_some(e.residual);
            // The global reduce carries this step's reported
            // dangling-mass change; every primary owes/receives its
            // uniform share as a residual correction.
            if ctx.global != 0.0 {
                if let Some(adj) = program.dangling_residual(&vctx) {
                    residual = Some(match residual {
                        Some(r) => program.merge_residual(r, adj),
                        None => adj,
                    });
                }
            }
            if ctx.step == 0 {
                let fresh = !e.has_state;
                if fresh {
                    let (s, mut r0) = program.delta_init(v, &vctx);
                    // A newcomer never baked the pre-run d·S/n term
                    // into its state; hand it the equivalent residual.
                    if let Some(seed) = program.dangling_seed_residual(ctx.dangling_base, &vctx) {
                        r0 = program.merge_residual(r0, seed);
                    }
                    e.state = s;
                    e.has_state = true;
                    residual = Some(match residual {
                        Some(r) => program.merge_residual(r0, r),
                        None => r0,
                    });
                }
                // The teleport reseed corrects *carried* state; a vertex
                // just seeded by `delta_init` already used the new n.
                if ctx.prev_n != 0 && !fresh {
                    if let Some(adj) = program.reseed_residual(ctx.prev_n, &vctx) {
                        residual = Some(match residual {
                            Some(r) => program.merge_residual(r, adj),
                            None => adj,
                        });
                    }
                }
                // Dirty flags seed the monotone path, not this one.
                e.dirty = false;
            } else if e.has_ppartial {
                let agg = e.ppartial;
                residual = Some(match residual {
                    Some(r) => program.merge_residual(r, agg),
                    None => agg,
                });
            }
            match residual {
                Some(r) => match program.fold_residual(v, e.state, r, &vctx) {
                    Some((new, applied)) => {
                        // A fold at a sink changes the global dangling
                        // mass; the change reports at the next scatter.
                        let g_out = e.g_out.max(0) as u64;
                        *out_dangling += program.dangling_mass(new, g_out)
                            - program.dangling_mass(e.state, g_out);
                        e.state = new;
                        e.has_state = true;
                        e.residual = 0;
                        e.has_residual = false;
                        e.active = true;
                        broadcast = true;
                        aux = applied;
                    }
                    None => {
                        // Below tolerance: park it for the next batch.
                        e.residual = r;
                        e.has_residual = true;
                        e.active = false;
                    }
                },
                None => e.active = false,
            }
        } else if ctx.step == 0 {
            // Initialization (fresh) / activation (incremental).
            if !e.has_state {
                e.state = program.init(v, &vctx);
                e.has_state = true;
                e.active = if ctx.reuse {
                    true // newly appeared vertex in an incremental run
                } else {
                    program.initially_active_ctx(v, &vctx)
                };
                broadcast = true;
            } else if ctx.reuse {
                e.active = e.dirty;
                broadcast = e.dirty;
            }
            e.dirty = false;
        } else {
            let has_msgs = e.has_ppartial;
            if has_msgs || program.applies_without_messages() {
                let agg = has_msgs.then_some(e.ppartial);
                let old = e.state;
                let (new, changed) = program.apply(v, e.state, agg, &vctx);
                e.state = new;
                e.has_state = true;
                e.active = changed;
                broadcast = changed || new != old || program.scatter_all();
            } else {
                e.active = false;
            }
        }
        e.has_ppartial = false;
        e.ppartial = 0;
        if broadcast {
            let rec = StateRecord {
                vertex: v,
                state: e.state,
                out_degree: e.g_out.max(0) as u64,
                aux,
                active: e.active,
            };
            for &replica in cache.replicas(ctx.locator, v, || ctx.sketch.estimate(v)) {
                out.entry(replica).or_default().push(rec);
            }
        }
    }
}
