//! Durable checkpointing: shard serialization and restore application.
//!
//! `CKPT_SAVE` (REQ) asks the agent to serialize its entire partition
//! and write it as one shard of a checkpoint generation through
//! `elga-ckpt`'s atomic tmp→fsync→rename protocol. `CKPT_EDGES` /
//! `CKPT_META` (pushes) arrive during recovery, after the driver reads
//! a valid generation back and re-routes every record under the
//! *post-recovery* view. Unlike their `MIG_*` cousins, restore
//! applications are **uncounted**: restore happens outside any barrier
//! (the cluster is quiesced with no run in flight), and counting the
//! injected records on the receive side only would permanently skew
//! the Mattern sent/received balance and wedge every later barrier.

use super::*;
use crate::ckpt_codec::{self, CkptVertexRecord};
use elga_ckpt::CheckpointStore;

impl Agent {
    /// CKPT_SAVE: serialize the partition, write one shard, reply with
    /// the outcome. Failure (including injected disk faults surfaced
    /// at write time) replies `ok = false`; the driver then refuses to
    /// commit the generation, so a half-written checkpoint can never
    /// become the recovery source.
    pub(super) fn on_ckpt_save(&mut self, frame: &Frame, reply: Option<ReplyHandle>) {
        let Some(reply) = reply else { return };
        let Some((generation, epoch, watermark)) = msg::decode_ckpt_save(frame) else {
            return;
        };
        let t0 = Instant::now();
        let written = self.write_checkpoint_shard(generation, epoch, watermark);
        let nanos = t0.elapsed().as_nanos() as u64;
        if let Some(bytes) = written {
            self.metrics.ckpt_writes += 1;
            self.metrics.ckpt_write_nanos += nanos;
            self.metrics.ckpt_bytes += bytes;
            self.tracer
                .span(EventKind::CkptWrite, t0, generation, bytes);
        }
        let report = msg::CkptSaveReport {
            ok: written.is_some(),
            bytes: written.unwrap_or(0),
            nanos,
        };
        let _ = reply.send(msg::encode_ckpt_save_reply(&report));
    }

    /// Write this agent's shard of `generation`. Returns the payload
    /// byte count, or `None` on any configuration or I/O failure.
    fn write_checkpoint_shard(
        &mut self,
        generation: u64,
        epoch: u64,
        watermark: u64,
    ) -> Option<u64> {
        if self.ckpt_store.is_none() {
            // Opened lazily and kept for the agent's lifetime: the
            // fault injector's RNG must advance across writes instead
            // of replaying the same damage each generation.
            let dir = self.cfg.checkpoint_dir.as_ref()?;
            let mut store = CheckpointStore::open(dir).ok()?;
            if let Some(faults) = self.cfg.disk_fault {
                // Offset the seed per agent so shards fail
                // independently, not in lockstep.
                store = store.with_faults(faults, self.cfg.disk_fault_seed ^ self.id);
            }
            self.ckpt_store = Some(store);
        }
        let payload = ckpt_codec::encode_payload(&self.checkpoint_records());
        self.ckpt_store
            .as_mut()?
            .write_shard(generation, epoch, self.id, watermark, &payload)
            .ok()
    }

    /// Snapshot every vertex entry this agent holds. Run-state fields
    /// (partials, async waiting sets, replica pending deltas) are
    /// intentionally dropped: checkpoints are taken only at quiesced
    /// batch boundaries, where that state is vacant. Parked residuals
    /// are NOT run state — they persist across batches — so they ride
    /// the record and survive recovery.
    fn checkpoint_records(&self) -> Vec<CkptVertexRecord> {
        let mut records = Vec::with_capacity(self.vertices.len());
        for (&v, e) in self.vertices.iter() {
            records.push(CkptVertexRecord {
                vertex: v,
                state: e.state,
                has_state: e.has_state,
                rep_out_degree: e.rep_out_degree,
                active: e.active,
                is_meta: e.is_meta,
                dirty: e.dirty,
                g_out: e.g_out,
                g_in: e.g_in,
                residual: e.residual,
                has_residual: e.has_residual,
                out: e.out.clone(),
                inn: e.inn.clone(),
            });
        }
        records
    }

    /// CKPT_EDGES: apply restored edge groups. Mirrors `on_mig_edges`
    /// minus the migration counters and READY re-report.
    pub(super) fn on_ckpt_edges(&mut self, frame: Frame) {
        let Some(groups) = msg::decode_ckpt_edges(&frame) else {
            return;
        };
        for g in groups {
            let v = g.vertex;
            let e = self.vertices.entry_or_default(v);
            if g.has_state && !e.has_state {
                e.state = g.state;
                e.has_state = true;
            }
            if g.has_state {
                e.rep_out_degree = e.rep_out_degree.max(g.rep_out_degree);
                // Checkpoints are cut at quiesced batch boundaries, so
                // the restored states are a completed-run snapshot:
                // serve them (tagged run 0 — the id went unrecorded).
                e.snap = e.state;
                e.has_snap = true;
            }
            e.active = e.active || g.active;
            match g.side {
                Side::Out => {
                    for w in g.others {
                        self.insert_out_edge(v, w);
                    }
                }
                Side::In => {
                    for u in g.others {
                        self.insert_in_edge(u, v);
                    }
                }
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
    }

    /// CKPT_META: apply restored primary meta. Mirrors `on_mig_meta`
    /// minus counters/re-report; degrees *accumulate* because exactly
    /// one shard carried each vertex's meta entry, while flags combine
    /// monotonically (`|=`) so replica-side records can't erase them.
    pub(super) fn on_ckpt_meta(&mut self, frame: Frame) {
        let Some(recs) = msg::decode_ckpt_meta(&frame) else {
            return;
        };
        for m in recs {
            let e = self.vertices.entry_or_default(m.vertex);
            if m.is_meta {
                e.is_meta = true;
            }
            e.g_out += m.g_out;
            e.g_in += m.g_in;
            e.dirty = e.dirty || m.dirty;
            e.active = e.active || m.active;
            if m.has_state {
                e.state = m.state;
                e.has_state = true;
                e.rep_out_degree = e.rep_out_degree.max(m.g_out.max(0) as u64);
                // As in `on_ckpt_edges`: restored states are a
                // consistent completed-run cut — serve them.
                e.snap = e.state;
                e.has_snap = true;
            }
            if m.has_residual {
                // At most one shard carried this vertex's primary
                // entry, but merge defensively like `on_mig_meta` in
                // case a correction landed before restore finished.
                e.residual = if e.has_residual {
                    match self.delta_seed.as_ref() {
                        Some(s) => s.program.merge_residual(e.residual, m.residual),
                        None => (f64::from_bits(e.residual) + f64::from_bits(m.residual)).to_bits(),
                    }
                } else {
                    m.residual
                };
                e.has_residual = true;
            }
        }
    }
}
