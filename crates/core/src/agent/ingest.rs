//! Graph changes: the indexed edge store helpers, change application
//! with ownership checks and forwarding, and degree-delta accounting.

use super::*;

impl Agent {
    /// Record out-edge `(u, v)`; false when already present.
    pub(super) fn insert_out_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.out_pos.contains_key(&(u, v)) {
            return false;
        }
        let e = self.vertices.entry_or_default(u);
        self.out_pos.insert((u, v), e.out.len() as u32);
        e.out.push(v);
        true
    }

    /// Remove out-edge `(u, v)` in O(1): swap_remove at its indexed
    /// position, then re-index the edge that swapped into the hole.
    pub(super) fn remove_out_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(pos) = self.out_pos.remove(&(u, v)) else {
            return false;
        };
        let pos = pos as usize;
        if let Some(e) = self.vertices.get_mut(&u) {
            e.out.swap_remove(pos);
            if pos < e.out.len() {
                let moved = e.out[pos];
                self.out_pos.insert((u, moved), pos as u32);
            }
        }
        true
    }

    /// Record in-edge `(u, v)` (stored on `v`); false when present.
    pub(super) fn insert_in_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.in_pos.contains_key(&(u, v)) {
            return false;
        }
        let e = self.vertices.entry_or_default(v);
        self.in_pos.insert((u, v), e.inn.len() as u32);
        e.inn.push(u);
        true
    }

    /// Remove in-edge `(u, v)` in O(1), as [`Agent::remove_out_edge`].
    pub(super) fn remove_in_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(pos) = self.in_pos.remove(&(u, v)) else {
            return false;
        };
        let pos = pos as usize;
        if let Some(e) = self.vertices.get_mut(&v) {
            e.inn.swap_remove(pos);
            if pos < e.inn.len() {
                let moved = e.inn[pos];
                self.in_pos.insert((moved, v), pos as u32);
            }
        }
        true
    }

    pub(super) fn on_changes(&mut self, frame: Frame) {
        // The view borrows the frame's pooled receive buffer; records
        // stream straight from it into apply_changes with no Vec.
        let Some(view) = msg::decode_edge_changes(&frame) else {
            return;
        };
        let (side, hop) = (view.side, view.hop);
        // Streamer-originated records (hop 0) are unmatched on the
        // send side (Streamers do not participate in barriers); only
        // agent-to-agent forwards are double counted. The receive is
        // counted even when the apply is deferred below: the sender's
        // chg_sent is already in the barrier sums, and deferring the
        // matching count would hold settled() false for the whole run
        // — no barrier (or async termination probe) could ever fire.
        if hop > 0 {
            self.counters.chg_recv += view.records.len() as u64;
        }
        if self.run.is_some() {
            self.buffered_changes.push(frame);
            return;
        }
        self.apply_changes(side, hop, view.records);
    }

    pub(super) fn apply_changes(
        &mut self,
        side: Side,
        hop: u8,
        changes: impl IntoIterator<Item = EdgeChange>,
    ) {
        let mut forwards: FxHashMap<AgentId, Vec<EdgeChange>> = FxHashMap::default();
        let mut deltas: FxHashMap<VertexId, (i64, i64)> = FxHashMap::default();
        let mut residuals: FxHashMap<AgentId, Vec<(VertexId, u64)>> = FxHashMap::default();
        self.route_cache.ensure_epoch(self.view.epoch);
        for change in changes {
            let (u, v) = (change.edge.src, change.edge.dst);
            let (key, other) = match side {
                Side::Out => (u, v),
                Side::In => (v, u),
            };
            let owner = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .owner_of_edge(&self.locator, key, other, || sketch.estimate(key))
            };
            if owner != Some(self.id) {
                if let Some(owner) = owner {
                    if hop < MAX_HOPS {
                        forwards.entry(owner).or_default().push(change);
                    }
                }
                continue;
            }
            let applied = match (side, change.action) {
                (Side::Out, Action::Insert) => {
                    self.insert_out_edge(u, v) && {
                        deltas.entry(u).or_default().0 += 1;
                        true
                    }
                }
                (Side::Out, Action::Delete) => {
                    self.remove_out_edge(u, v) && {
                        deltas.entry(u).or_default().0 -= 1;
                        true
                    }
                }
                (Side::In, Action::Insert) => {
                    self.insert_in_edge(u, v) && {
                        deltas.entry(v).or_default().1 += 1;
                        true
                    }
                }
                (Side::In, Action::Delete) => {
                    self.remove_in_edge(u, v) && {
                        deltas.entry(v).or_default().1 -= 1;
                        true
                    }
                }
            };
            if applied {
                self.metrics.changes += 1;
                // Residual correction (delta engine): the out-placement
                // holder of `(u, v)` knows the share `d·p_u/D_u` this
                // edge carries and tells `v`'s primary to gain (insert)
                // or lose (delete) it. The local `(state,
                // rep_out_degree)` pair is exact even when stale: the
                // primary's degree rescale keeps every edge's share
                // invariant, so any broadcast-consistent pair yields
                // the same share.
                if side == Side::Out {
                    if let Some(seed) = &self.delta_seed {
                        if let Some(e) = self.vertices.get(&u) {
                            if e.has_state {
                                if let Some(delta) = seed.program.edge_change_residual(
                                    u,
                                    e.state,
                                    e.rep_out_degree,
                                    change.action == Action::Insert,
                                ) {
                                    if let Some(primary) = self.locator.ring().owner(v) {
                                        residuals.entry(primary).or_default().push((v, delta));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let coalescing = self.cfg.coalescing;
        for (agent, fwd) in forwards {
            self.counters.chg_sent += fwd.len() as u64;
            if coalescing {
                self.with_outbox(agent, |out| {
                    for c in &fwd {
                        msg::append_edge_change(out, side, hop + 1, c);
                    }
                });
            } else {
                for chunk in fwd.chunks(BATCH) {
                    let frame = msg::encode_edge_changes(side, hop + 1, chunk);
                    self.push_to(agent, frame);
                }
            }
        }
        // Report degree deltas to each vertex's primary.
        let mut delta_batches: FxHashMap<AgentId, Vec<(VertexId, i64, i64)>> = FxHashMap::default();
        for (v, (dout, din)) in deltas {
            if let Some(primary) = self.locator.ring().owner(v) {
                delta_batches
                    .entry(primary)
                    .or_default()
                    .push((v, dout, din));
            }
        }
        for (agent, ds) in delta_batches {
            self.counters.chg_sent += ds.len() as u64;
            if coalescing {
                self.with_outbox(agent, |out| {
                    for &(v, dout, din) in &ds {
                        msg::append_deg_delta(out, v, dout, din);
                    }
                });
            } else {
                for chunk in ds.chunks(BATCH) {
                    let frame = msg::encode_deg_deltas(chunk);
                    self.push_to(agent, frame);
                }
            }
        }
        // Residual corrections ride the same chg_* counter class as
        // the changes that caused them, so the ingest barrier settles
        // only once every correction landed.
        for (agent, rs) in residuals {
            self.counters.chg_sent += rs.len() as u64;
            if coalescing {
                self.with_outbox(agent, |out| {
                    for &(w, d) in &rs {
                        msg::append_residual(out, w, d);
                    }
                });
            } else {
                for chunk in rs.chunks(BATCH) {
                    let frame = msg::encode_residuals(chunk);
                    self.push_to(agent, frame);
                }
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        self.re_report();
    }

    /// Merge residual corrections into their vertices (at the
    /// primary). The program that defines the merge is the armed delta
    /// seed; without one (e.g. a correction straggling past a recovery
    /// reset) the values are summed as f64 bits — the encoding every
    /// residual program in this workspace uses.
    pub(super) fn apply_residuals(&mut self, recs: impl IntoIterator<Item = (VertexId, u64)>) {
        let program = self.delta_seed.as_ref().map(|s| Arc::clone(&s.program));
        for (v, delta) in recs {
            let e = self.vertices.entry_or_default(v);
            e.residual = if e.has_residual {
                match &program {
                    Some(p) => p.merge_residual(e.residual, delta),
                    None => (f64::from_bits(e.residual) + f64::from_bits(delta)).to_bits(),
                }
            } else {
                delta
            };
            e.has_residual = true;
        }
    }

    pub(super) fn on_residual(&mut self, frame: Frame) {
        let n = match msg::decode_residuals(&frame) {
            Some(recs) => recs.len() as u64,
            None => return,
        };
        // Counted on arrival even when buffered, like edge changes:
        // the sender's chg_sent is already in the barrier sums.
        self.counters.chg_recv += n;
        if self.run.is_some() {
            self.buffered_changes.push(frame);
            return;
        }
        let Some(recs) = msg::decode_residuals(&frame) else {
            return;
        };
        self.apply_residuals(recs);
        self.re_report();
    }

    pub(super) fn on_deg_delta(&mut self, frame: Frame) {
        let Some(deltas) = msg::decode_deg_deltas(&frame) else {
            return;
        };
        self.counters.chg_recv += deltas.len() as u64;
        let program = self.delta_seed.as_ref().map(|s| Arc::clone(&s.program));
        let mut dangling = 0.0;
        for (v, dout, din) in deltas {
            let e = self.vertices.entry_or_default(v);
            // Residual correction (delta engine): an out-degree change
            // rescales the primary's value so every surviving edge's
            // share is unchanged; the rescale remainder moves into the
            // residual. Updating `rep_out_degree` alongside keeps this
            // entry's own share pair consistent for later batches.
            if dout != 0 && e.has_state {
                if let Some(p) = &program {
                    let d0 = e.g_out.max(0) as u64;
                    let d1 = (e.g_out + dout).max(0) as u64;
                    if let Some((new_state, radj)) = p.rescale_on_degree_change(e.state, d0, d1) {
                        // A sink gaining edges stops holding dangling
                        // mass (and vice versa); the change folds into
                        // the run-level redistribution accumulator.
                        dangling += p.dangling_mass(new_state, d1) - p.dangling_mass(e.state, d0);
                        e.state = new_state;
                        e.residual = if e.has_residual {
                            p.merge_residual(e.residual, radj)
                        } else {
                            radj
                        };
                        e.has_residual = true;
                        e.rep_out_degree = d1;
                    }
                }
            }
            e.g_out += dout;
            e.g_in += din;
            e.dirty = true;
            e.is_meta = e.g_out > 0 || e.g_in > 0;
            if !e.is_meta {
                // Vertex vanished from the graph; any dangling mass it
                // still held leaves with it.
                if e.has_state {
                    if let Some(p) = &program {
                        dangling -= p.dangling_mass(e.state, e.g_out.max(0) as u64);
                    }
                }
                e.has_state = false;
                e.active = false;
                e.dirty = false;
                e.residual = 0;
                e.has_residual = false;
                if e.is_empty() {
                    self.vertices.remove(&v);
                }
            }
        }
        self.dangling_acc += dangling;
        self.re_report();
    }

    pub(super) fn on_reset_labels(&mut self, frame: Frame) {
        let Some(labels) = msg::decode_reset_labels(&frame) else {
            return;
        };
        let set: FxHashSet<u64> = labels.into_iter().collect();
        for (_, e) in self.vertices.iter_mut() {
            if e.is_meta && e.has_state && set.contains(&e.state) {
                e.has_state = false;
                e.state = 0;
                e.dirty = true;
            }
        }
    }
}
