//! Agents: the workers that hold the graph and run vertex programs
//! (paper §3.4).
//!
//! "Agents are responsible for holding the graph in memory and carrying
//! out the computation on the graph. ... They operate as a state
//! machine and, during computation, either execute the algorithms on
//! their vertices, send updates to other Agents, or receive updates
//! from Agents. They continuously poll on their communication channel
//! and act on whatever packet they receive."
//!
//! Key behaviors reproduced from the paper:
//!
//! * **Ownership checks and forwarding** — every received edge change
//!   is re-validated against the current view; wrong-destination
//!   packets are "forwarded to the latest, correct Agent".
//! * **Buffering** — vertex messages for future phases are stored
//!   "until the computation can catch up"; edge changes arriving while
//!   a batch algorithm runs are buffered and applied afterwards.
//! * **Migration** — on any view change the agent recomputes "the
//!   correct destination for all current edges" and forwards misplaced
//!   ones; when leaving, it drains everything and only disconnects
//!   after the directory confirms.
//! * **Replication** — high-degree vertices are split: each replica
//!   holds a slice of the vertex's edges, pre-aggregates its incoming
//!   messages, and synchronizes state with the primary between
//!   supersteps.
//!
//! The module is organized by concern; this file holds the state
//! machine (join, dispatch, run lifecycle) and the submodules hold the
//! rest:
//!
//! * [`comms`] — the send side: per-destination coalescing outboxes,
//!   phase-end flushes, READY reports, and metrics publication.
//! * [`ingest`] — graph changes: edge indexes, change application and
//!   forwarding, degree deltas.
//! * [`superstep`] — the sync phase kernels (scatter/combine/apply),
//!   the parallel shard workers, and the async event-driven mode.
//! * [`migrate`] — view adoption and edge/meta migration.
//! * [`recovery`] — heartbeats and the peer-loss reset.

mod checkpoint;
mod comms;
mod ingest;
mod migrate;
mod recovery;
mod superstep;

use crate::config::SystemConfig;
use crate::directory::{agent_addr, bus_addr};
use crate::metrics::{AgentMetrics, CommsMetrics};
use crate::msg::{
    self, packet, Counters, DirectoryView, MetaRecord, Phase, ReadyReport, RunInfo, Side,
    StateRecord,
};
use crate::program::{DeltaKind, ProgramSpec, VertexCtx, VertexProgram};
use crate::store::{Shard, VertexStore, SHARDS};
use elga_graph::types::{Action, EdgeChange, VertexId};
use elga_hash::{AgentId, EdgeLocator, FxHashMap, FxHashSet, OwnerCache};
use elga_net::{
    Addr, CoalesceConfig, CoalesceStats, CoalescingOutbox, Delivery, Frame, NetError, NetStats,
    Outbox, ReplyHandle, Transport, TransportExt,
};
use elga_sketch::CountMinSketch;
use elga_trace::{EventKind, Tracer};
use std::sync::Arc;
use std::time::{Duration, Instant};

use superstep::StepScratch;

/// Records per frame on the eager (non-coalescing) ablation path.
const BATCH: usize = 4096;

/// Forwarding hop cap (views converge long before this).
const MAX_HOPS: u8 = 64;

/// Per-vertex data held by an agent. One entry serves all three roles
/// a vertex can have here: replica (edges + state copy), aggregation
/// target (partials), and primary (authoritative meta).
#[derive(Debug, Clone, Default)]
pub(crate) struct VertexEntry {
    /// Local out-edges (this agent owns their out-placement).
    pub(crate) out: Vec<VertexId>,
    /// Local in-edges (this agent owns their in-placement).
    pub(crate) inn: Vec<VertexId>,
    /// Replica state copy (from STATE broadcasts or local apply).
    pub(crate) state: u64,
    /// Whether `state` is initialized.
    pub(crate) has_state: bool,
    /// Replica copy of the global out-degree.
    pub(crate) rep_out_degree: u64,
    /// Active for the next scatter.
    pub(crate) active: bool,
    /// Scatter-phase partial aggregate.
    pub(crate) partial: u64,
    pub(crate) has_partial: bool,
    /// Combine-phase aggregate (primary side).
    pub(crate) ppartial: u64,
    pub(crate) has_ppartial: bool,
    /// §3.2 waiting set (async): messages collected so far toward the
    /// program's `waits_for` requirement.
    pub(crate) wait_recv: u64,
    /// Primary-only: authoritative global degrees.
    pub(crate) g_out: i64,
    pub(crate) g_in: i64,
    /// Primary-only: this agent holds the vertex's meta record.
    pub(crate) is_meta: bool,
    /// Primary-only: touched by changes since the last run.
    pub(crate) dirty: bool,
    /// Primary-only: unapplied residual of the incremental (delta)
    /// formulation. Accumulated by ingest-time corrections between
    /// runs, folded into `state` during a delta run, and carried across
    /// runs when it stays below the program's tolerance.
    pub(crate) residual: u64,
    pub(crate) has_residual: bool,
    /// Replica-side: the applied delta broadcast by the primary in the
    /// last STATE record, to be pushed along local out-edges at the
    /// next scatter. Transient within a sync delta superstep.
    pub(crate) pending_delta: u64,
    pub(crate) has_pending_delta: bool,
    /// Double-buffered copy of `state` taken when the last run
    /// *completed*. Queries serve this buffer, never the live `state`,
    /// so readers cannot observe torn mid-superstep values while the
    /// next run is writing. Tagged agent-wide by
    /// [`Agent::snap_run`] / [`Agent::snap_watermark`].
    pub(crate) snap: u64,
    pub(crate) has_snap: bool,
}

impl VertexEntry {
    fn is_empty(&self) -> bool {
        self.out.is_empty()
            && self.inn.is_empty()
            && !self.is_meta
            && !self.has_state
            && !self.has_partial
            && !self.has_ppartial
            && !self.has_residual
            && !self.has_pending_delta
            && !self.has_snap
    }
}

/// One standing subscription (client-registered vertex interest).
/// Value deltas ride a dedicated per-client [`CoalescingOutbox`] — the
/// same credit/backpressure machinery as the agent planes — and are
/// UNCOUNTED: like queries, subscription traffic is client-plane and
/// must not move the Mattern barrier counters.
struct Subscription {
    outbox: CoalescingOutbox,
    vertices: FxHashSet<VertexId>,
}

/// Per-run execution state.
struct AgentRun {
    info: RunInfo,
    program: Arc<dyn VertexProgram>,
    /// Latest directive from the directory.
    step: u32,
    phase: Phase,
    n_vertices: u64,
    global: f64,
    /// Async event-driven mode entered.
    async_live: bool,
    /// Async execution is paused for a mid-run view change: idle
    /// reports are suppressed (the migrate barrier is the one consuming
    /// READYs, and re-reports keep it fresh as counters move) until the
    /// directory re-publishes the async advance. Frames keep being
    /// processed — buffering them would strand counted sends and wedge
    /// the barrier's settled-counters check.
    paused: bool,
    /// Highest dangling-redistribution round applied (async delta
    /// runs); rounds arrive as `Phase::Apply` advances and a
    /// retransmitting bus may repeat them.
    dangling_round: u32,
}

/// What the agent remembers about the last residual-capable program
/// between runs, so ingest-time corrections can be computed while no
/// run is in flight (that is exactly when batches are applied).
pub(crate) struct DeltaSeed {
    /// The residual program (its `merge_residual`,
    /// `rescale_on_degree_change`, `edge_change_residual` hooks).
    pub(crate) program: Arc<dyn VertexProgram>,
    /// `n_vertices` the last run converged under; 0 = unknown (no run
    /// finished yet), in which case the teleport reseed is skipped.
    pub(crate) n: u64,
}

/// One ElGA agent. Spawned on its own thread by the cluster driver.
pub struct Agent {
    id: AgentId,
    cfg: SystemConfig,
    transport: Arc<dyn Transport>,
    mailbox: elga_net::Mailbox,
    dir_push: Outbox,
    view: DirectoryView,
    locator: EdgeLocator,
    /// Per-destination coalescing outboxes. Sends accumulate into at
    /// most one open frame per destination; phase boundaries flush.
    outboxes: FxHashMap<AgentId, CoalescingOutbox>,
    /// Flush/volume counters of outboxes since retired (view changes,
    /// dead peers); live outboxes are summed on top at snapshot time.
    coalesce_retired: CoalesceStats,
    /// This agent's own data-plane traffic accounting (per packet
    /// type). Distinct from the transport's cluster-wide `NetStats`:
    /// every in-process participant shares that transport, so only a
    /// per-agent sink attributes traffic to its sender/receiver.
    net: Arc<NetStats>,
    vertices: VertexStore,
    /// Position of out-edge `(u, v)` in `vertices[u].out` — O(1)
    /// duplicate detection *and* O(1) deletion (swap_remove + index
    /// fix-up instead of an O(deg) scan).
    out_pos: FxHashMap<(VertexId, VertexId), u32>,
    /// Position of in-edge `(u, v)` in `vertices[v].inn`.
    in_pos: FxHashMap<(VertexId, VertexId), u32>,
    /// Resolved superstep worker count.
    workers: usize,
    /// Owner cache for serial paths (change apply, migration, async).
    route_cache: OwnerCache,
    /// One owner cache per worker, used by the parallel kernels.
    worker_caches: Vec<OwnerCache>,
    scratch: StepScratch,
    counters: Counters,
    metrics: AgentMetrics,
    run: Option<AgentRun>,
    /// Armed by `begin_run` for residual-kind programs and kept after
    /// the run finishes: between runs, ingest uses it to turn edge
    /// changes into residual corrections (§ DESIGN.md "Incremental
    /// execution"). Cleared by recovery resets and non-residual runs.
    delta_seed: Option<DeltaSeed>,
    /// Primaries whose residual absorbed an async push since the last
    /// mailbox drain. Folding once per drain (instead of per arrival)
    /// batches every queued push to a vertex into one apply+broadcast —
    /// without it, tight tolerances turn the event-driven path into one
    /// broadcast per message and the run's cost explodes from O(E) per
    /// effective round toward the number of residual-carrying walks.
    delta_hot: FxHashSet<VertexId>,
    /// Unreported local change in dangling mass (delta engine): state
    /// changes at sinks (applies, folds), ingest-time rescales, and
    /// vertex vanishes accumulate here until the next report drains it.
    dangling_acc: f64,
    /// Cumulative dangling mass reported for the current async delta
    /// run. Every READY sent while such a run is live carries it, so
    /// the lead can telescope per-report differences into a pending
    /// redistribution — idempotent under re-sends and reorderings.
    dangling_cum: f64,
    /// Changes received while a run was active (§3.4: "While a batch is
    /// running, the graph does not change: any edge changes are
    /// buffered").
    buffered_changes: Vec<Frame>,
    /// Future-phase frames ("If it is for an iteration in the future,
    /// the packet is stored").
    buffered_frames: Vec<Frame>,
    /// Last READY context reported, for re-reporting on late arrivals.
    reported: Option<(u64, u32, Phase)>,
    /// Counters snapshot at the last READY send. Sync re-reports are
    /// debounced to the post-drain idle point and only fire when the
    /// counters moved, so a burst of late frames costs one READY.
    reported_counters: Option<Counters>,
    /// Counter snapshot at the last async idle report.
    last_idle_counters: Option<Counters>,
    departing: bool,
    /// Highest view epoch for which migration ran and was reported.
    migrated_epoch: u64,
    metrics_flushed: Instant,
    /// Last liveness heartbeat pushed to the directory.
    heartbeat_sent: Instant,
    /// Monotone READY sequence, so the lead can discard reports a
    /// retransmitting transport delivered out of order. Never reset —
    /// not even by recovery — or stale pre-reset reports could
    /// outrank fresh ones.
    ready_seq: u64,
    /// Event recorder (phase spans, view changes, migrations,
    /// recoveries). Disabled unless `cfg.tracing`; drained over the
    /// wire by TRACE_DUMP.
    tracer: Arc<Tracer>,
    /// Durable checkpoint store, opened lazily from
    /// `cfg.checkpoint_dir` at the first CKPT_SAVE and kept for the
    /// agent's lifetime (the disk-fault injector's RNG must advance
    /// across writes, not replay the same damage each generation).
    ckpt_store: Option<elga_ckpt::CheckpointStore>,
    /// Run id of the last completed run whose states were copied into
    /// the per-vertex `snap` buffers (0 = no run completed here yet;
    /// restored checkpoints also report 0, their run id being
    /// unrecorded).
    snap_run: u64,
    /// Ingest batch watermark (`view.batch_id`) current when that run
    /// completed. Every query answer carries the `(snap_run,
    /// snap_watermark)` pair, so a client knows exactly which
    /// completed computation it read.
    snap_watermark: u64,
    /// Standing subscriptions by client-chosen id.
    subs: FxHashMap<u64, Subscription>,
    /// Reverse index: watched vertex → subscribing ids. Kept in sync
    /// with `subs` so the post-run push sweep costs O(changed ∩
    /// watched), not O(changed × subscriptions).
    watchers: FxHashMap<VertexId, Vec<u64>>,
}

impl Agent {
    /// Bind the mailbox, subscribe to the bus and join through the
    /// given directory, using the in-process address conventions.
    pub fn join(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        id: AgentId,
        directory: Addr,
    ) -> Result<Agent, NetError> {
        Agent::join_at(transport, cfg, id, agent_addr(id), directory, bus_addr())
    }

    /// Deployment-agnostic join: bind the mailbox at `addr` (for TCP,
    /// a concrete `tcp://host:port`), subscribe to the broadcast bus at
    /// `bus`, and register with `directory`. Returns the ready-to-run
    /// agent.
    pub fn join_at(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        id: AgentId,
        addr: Addr,
        directory: Addr,
        bus: Addr,
    ) -> Result<Agent, NetError> {
        let mailbox = transport.bind(&addr)?;
        let addr = mailbox.addr().clone();
        // Subscribe broadcasts into the mailbox *before* joining so no
        // VIEW/START/ADVANCE can be missed.
        transport.subscribe_forward(
            &bus,
            &[
                packet::VIEW,
                packet::ADVANCE,
                packet::START,
                packet::SHUTDOWN,
                packet::RESET_LABELS,
                packet::RECOVER,
            ],
            &addr,
        )?;
        let join = Frame::builder(packet::JOIN)
            .u64(id)
            .bytes(addr.to_string().as_bytes())
            .finish();
        let (reply, join_retries) = transport.request_with_retry(
            &directory,
            join,
            cfg.request_timeout,
            &cfg.send_policy,
        )?;
        let (view, run_info) =
            msg::decode_join_reply(&reply).ok_or(NetError::Protocol("bad join reply"))?;
        let dir_push = transport.sender(&directory)?;
        let locator = view.locator();
        let workers = cfg.workers_effective();
        let new_cache = || {
            if cfg.owner_cache {
                OwnerCache::new()
            } else {
                OwnerCache::disabled()
            }
        };
        let mut agent = Agent {
            id,
            cfg: cfg.clone(),
            transport,
            mailbox,
            dir_push,
            view,
            locator,
            outboxes: FxHashMap::default(),
            coalesce_retired: CoalesceStats::default(),
            net: Arc::new(NetStats::default()),
            vertices: VertexStore::default(),
            out_pos: FxHashMap::default(),
            in_pos: FxHashMap::default(),
            workers,
            route_cache: new_cache(),
            worker_caches: (0..workers).map(|_| new_cache()).collect(),
            scratch: StepScratch::new(),
            counters: Counters::default(),
            metrics: AgentMetrics {
                agent: id,
                retries_attempted: join_retries as u64,
                ..Default::default()
            },
            run: None,
            delta_seed: None,
            delta_hot: FxHashSet::default(),
            dangling_acc: 0.0,
            dangling_cum: 0.0,
            buffered_changes: Vec::new(),
            buffered_frames: Vec::new(),
            reported: None,
            reported_counters: None,
            last_idle_counters: None,
            departing: false,
            migrated_epoch: 0,
            metrics_flushed: Instant::now(),
            heartbeat_sent: Instant::now(),
            ready_seq: 0,
            tracer: Arc::new(Tracer::from_flag(cfg.tracing)),
            ckpt_store: None,
            snap_run: 0,
            snap_watermark: 0,
            subs: FxHashMap::default(),
            watchers: FxHashMap::default(),
        };
        if let Some(info) = run_info {
            agent.begin_run(info);
        }
        Ok(agent)
    }

    /// Spawn the agent's thread.
    pub fn spawn(self) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("elga-agent-{}", self.id))
            .spawn(move || self.run_loop())
            .expect("spawn agent")
    }

    fn run_loop(mut self) {
        loop {
            match self.mailbox.recv_timeout(Duration::from_millis(20)) {
                Ok(d) => {
                    if !self.handle(d) {
                        break;
                    }
                    // Drain opportunistically so idle detection sees a
                    // truly empty mailbox.
                    loop {
                        match self.mailbox.try_recv() {
                            Ok(Some(d)) => {
                                if !self.handle(d) {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return,
                        }
                    }
                    self.on_idle();
                    self.maybe_heartbeat();
                }
                Err(NetError::Timeout) => {
                    self.on_idle();
                    self.flush_metrics(false);
                    self.maybe_heartbeat();
                }
                Err(_) => break,
            }
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, d: Delivery) -> bool {
        let frame = d.frame;
        self.net.record_recv(frame.packet_type(), frame.len());
        match frame.packet_type() {
            packet::VIEW => {
                if let Some(view) = DirectoryView::decode(&frame) {
                    self.on_view(view);
                }
            }
            packet::START => {
                if let Some(info) = msg::decode_start(&frame) {
                    self.begin_run(info);
                }
            }
            packet::ADVANCE => {
                if let Some(adv) = msg::decode_advance(&frame) {
                    self.on_advance(adv);
                }
            }
            // Data-plane receives: time decode + consume together (a
            // borrowed view makes them inseparable) so the per-agent
            // cost of the hot path is observable as `decode_nanos`.
            packet::VMSG => self.timed_data_plane(frame, Self::on_vmsg),
            packet::PARTIAL => self.timed_data_plane(frame, Self::on_partial),
            packet::STATE => self.timed_data_plane(frame, Self::on_state),
            packet::EDGE_CHANGES => self.timed_data_plane(frame, Self::on_changes),
            packet::DEG_DELTA => self.timed_data_plane(frame, Self::on_deg_delta),
            packet::RESIDUAL => self.timed_data_plane(frame, Self::on_residual),
            packet::MIG_EDGES => self.on_mig_edges(frame),
            packet::MIG_META => self.on_mig_meta(frame),
            packet::CKPT_SAVE => self.on_ckpt_save(&frame, d.reply),
            packet::CKPT_EDGES => self.on_ckpt_edges(frame),
            packet::CKPT_META => self.on_ckpt_meta(frame),
            packet::RESET_LABELS => self.on_reset_labels(frame),
            packet::QUERY => {
                if let Some(reply) = d.reply {
                    let v = frame.reader().u64().unwrap_or(0);
                    self.metrics.queries += 1;
                    let a = self.answer_query(v);
                    let _ = reply.send(
                        Frame::builder(packet::QUERY_REP)
                            .u8(a.found)
                            .u64(a.state)
                            .u64(self.snap_watermark)
                            .u64(self.snap_run)
                            .finish(),
                    );
                }
            }
            packet::QUERY_BATCH => {
                if let Some(reply) = d.reply {
                    if let Some(recs) = msg::decode_query_batch(&frame) {
                        self.metrics.queries += recs.len() as u64;
                        self.metrics.query_batches += 1;
                        let answers: Vec<msg::QueryAnswer> =
                            recs.iter().map(|v| self.answer_query(v)).collect();
                        let _ = reply.send(msg::encode_query_batch_rep(
                            self.snap_run,
                            self.snap_watermark,
                            &answers,
                        ));
                    }
                }
            }
            packet::SUB_REG => {
                if let Some((addr, sub, recs)) = msg::decode_sub_reg(&frame) {
                    self.on_sub_reg(addr, sub, recs.iter().collect());
                    if let Some(reply) = d.reply {
                        let _ = reply.send(Frame::signal(packet::OK));
                    }
                }
            }
            packet::ARM_DELTA => {
                if let Some((tag, params, n)) = msg::decode_arm_delta(&frame) {
                    let ok = self.on_arm_delta(tag, params, n);
                    if let Some(reply) = d.reply {
                        let _ = reply
                            .send(Frame::builder(packet::ARM_DELTA).u8(ok as u8).finish());
                    }
                }
            }
            packet::DUMP => {
                if let Some(reply) = d.reply {
                    let mut pairs: Vec<(VertexId, u64)> = Vec::new();
                    for (&v, e) in self.vertices.iter() {
                        if e.is_meta && e.has_state && self.is_primary(v) {
                            pairs.push((v, e.state));
                        }
                    }
                    let mut b = Frame::builder(packet::DUMP).u32(pairs.len() as u32);
                    for (v, state) in pairs {
                        b = b.u64(v).u64(state);
                    }
                    let _ = reply.send(b.finish());
                }
            }
            packet::DRAIN => {
                // A drain round settles only once every counted record
                // is on the wire; close the open frames first.
                self.flush_outboxes();
                self.flush_metrics(true);
                if let Some(reply) = d.reply {
                    let rep = Frame::builder(packet::COUNTERS)
                        .u64(self.counters.vmsg_sent)
                        .u64(self.counters.vmsg_recv)
                        .u64(self.counters.part_sent)
                        .u64(self.counters.part_recv)
                        .u64(self.counters.state_sent)
                        .u64(self.counters.state_recv)
                        .u64(self.counters.mig_sent)
                        .u64(self.counters.mig_recv)
                        .u64(self.counters.chg_sent)
                        .u64(self.counters.chg_recv)
                        .u64(self.view.epoch)
                        .finish();
                    let _ = reply.send(rep);
                }
            }
            packet::TRACE_DUMP => {
                if let Some(reply) = d.reply {
                    let (events, dropped) = self.tracer.drain();
                    let rep = Frame::builder(packet::TRACE_DUMP)
                        .raw(&elga_trace::encode_events(&events, dropped))
                        .finish();
                    let _ = reply.send(rep);
                }
            }
            packet::RECOVER => {
                if let Some(rec) = msg::decode_recover(&frame) {
                    return self.on_recover(rec);
                }
            }
            packet::KILL => {
                // Crash simulation: die without LEAVE, drains, or
                // goodbyes. Peers see a dead mailbox; the lead notices
                // missing heartbeats.
                return false;
            }
            packet::OK
                // Departure confirmed by the directory.
                if self.departing => {
                    return false;
                }
            packet::SHUTDOWN => return false,
            _ => {}
        }
        true
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn is_primary(&self, v: VertexId) -> bool {
        self.locator.ring().owner(v) == Some(self.id)
    }

    /// (active, contrib, n_primary) as reported at Apply barriers.
    fn apply_summary(&self) -> (u64, f64, u64) {
        let mut active = 0;
        let mut n_primary = 0;
        for (&v, e) in self.vertices.iter() {
            if e.is_meta && self.is_primary(v) {
                n_primary += 1;
                if e.active {
                    active += 1;
                }
            }
        }
        (active, 0.0, n_primary)
    }

    /// (contrib, n_primary) as reported at Scatter barriers.
    fn scatter_summary(&self) -> (f64, u64) {
        let Some(run) = self.run.as_ref() else {
            return (0.0, 0);
        };
        // Folded in shard order (VertexStore iteration), so the f64 sum
        // is identical for any worker count.
        let mut contrib = 0.0;
        let mut n_primary = 0;
        for (&v, e) in self.vertices.iter() {
            if e.is_meta && self.is_primary(v) {
                n_primary += 1;
                // Full runs recompute the global term (PageRank's
                // dangling mass) from scratch each step; delta runs
                // report the *change* below instead.
                if e.has_state && !run.info.delta {
                    let ctx = VertexCtx {
                        out_degree: e.g_out.max(0) as u64,
                        in_degree: e.g_in.max(0) as u64,
                        n_vertices: run.n_vertices,
                        step: run.step,
                        global: 0.0,
                    };
                    contrib += run.program.global_contrib(v, e.state, &ctx);
                }
            }
        }
        if run.info.delta {
            // Delta runs report the accumulated change in locally-held
            // dangling mass (ingest rescales/vanishes plus apply-time
            // folds at sinks); the lead's Scatter reduce sums it into
            // the step's global for uniform redistribution. Read
            // non-destructively — a re-report must replace the lead's
            // copy with the same value — and cleared when the Combine
            // advance confirms the reduce absorbed it.
            contrib = self.dangling_acc;
        }
        (contrib, n_primary)
    }

    /// Cumulative dangling-mass report for async delta runs: fold the
    /// unreported accumulator into the per-run running total and
    /// return it. Carried by every READY while such a run is live.
    fn dangling_report(&mut self) -> f64 {
        self.dangling_cum += std::mem::take(&mut self.dangling_acc);
        self.dangling_cum
    }

    /// Apply a dangling-redistribution round (async delta runs): merge
    /// each primary's uniform share of `global` — the pending mass the
    /// lead collected from cumulative reports — into its residual and
    /// mark it hot, so the next drain folds shares above tolerance and
    /// parks the rest.
    fn dangling_redistribute(&mut self, global: f64) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let program = Arc::clone(&run.program);
        let n_vertices = run.n_vertices;
        let id = self.id;
        let locator = &self.locator;
        let mut hot: Vec<VertexId> = Vec::new();
        for (&v, e) in self.vertices.iter_mut() {
            if !e.is_meta || locator.ring().owner(v) != Some(id) {
                continue;
            }
            let ctx = VertexCtx {
                out_degree: e.g_out.max(0) as u64,
                in_degree: e.g_in.max(0) as u64,
                n_vertices,
                step: 1,
                global,
            };
            if let Some(adj) = program.dangling_residual(&ctx) {
                e.residual = if e.has_residual {
                    program.merge_residual(e.residual, adj)
                } else {
                    adj
                };
                e.has_residual = true;
                hot.push(v);
            }
        }
        self.delta_hot.extend(hot);
    }

    // ------------------------------------------------------------------
    // Query serving
    // ------------------------------------------------------------------

    /// Answer a point query from the snapshot buffer. Live `state` is
    /// never served: mid-run it is torn (some vertices stepped, some
    /// not), and the snapshot is exactly the last completed run's
    /// values. A vertex with no entry at the agent that owns its meta
    /// record does not exist — that answer is authoritative
    /// ([`msg::ANSWER_GONE`]) and lets clients stop searching.
    fn answer_query(&self, v: VertexId) -> msg::QueryAnswer {
        match self.vertices.get(&v) {
            Some(e) if e.has_snap => msg::QueryAnswer {
                vertex: v,
                state: e.snap,
                found: msg::ANSWER_HIT,
            },
            Some(_) => msg::QueryAnswer {
                vertex: v,
                state: 0,
                found: msg::ANSWER_MISS,
            },
            None => msg::QueryAnswer {
                vertex: v,
                state: 0,
                found: if self.is_primary(v) {
                    msg::ANSWER_GONE
                } else {
                    msg::ANSWER_MISS
                },
            },
        }
    }

    /// SUB_REG: install (or replace; empty set cancels) a standing
    /// subscription. The push channel is a dedicated per-client
    /// coalescing outbox, so delta floods to slow clients hit the same
    /// credit/backpressure ceiling as agent-plane traffic.
    fn on_sub_reg(&mut self, addr: Addr, sub: u64, vertices: Vec<VertexId>) {
        if let Some(old) = self.subs.remove(&sub) {
            for v in old.vertices {
                let emptied = match self.watchers.get_mut(&v) {
                    Some(ids) => {
                        ids.retain(|&s| s != sub);
                        ids.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    self.watchers.remove(&v);
                }
            }
        }
        if vertices.is_empty() {
            self.metrics.subscriptions = self.subs.len() as u64;
            return;
        }
        let Ok(out) = self.transport.sender(&addr) else {
            return;
        };
        let cfg = if self.cfg.coalescing {
            CoalesceConfig::default()
        } else {
            CoalesceConfig::disabled()
        };
        let outbox = CoalescingOutbox::new(out, cfg).with_net_stats(self.net.clone());
        for &v in &vertices {
            self.watchers.entry(v).or_default().push(sub);
        }
        self.subs.insert(
            sub,
            Subscription {
                outbox,
                vertices: vertices.into_iter().collect(),
            },
        );
        self.metrics.subscriptions = self.subs.len() as u64;
    }

    /// ARM_DELTA (driver REQ, checkpoint restore): re-arm the
    /// ingest-time delta seed ahead of a log-suffix replay. The
    /// recovery reset wiped the seed with everything else; without it
    /// the replayed edge changes would mutate degrees but generate no
    /// residual corrections, and the next incremental run would
    /// converge against a silently stale frontier.
    fn on_arm_delta(&mut self, tag: u8, params: [u64; 3], n: u64) -> bool {
        let Some(spec) = ProgramSpec::decode(tag, params) else {
            return false;
        };
        let program = spec.instantiate();
        if program.delta_kind() != DeltaKind::Residual {
            return false;
        }
        self.delta_seed = Some(DeltaSeed { program, n });
        true
    }

    /// Publish a completed run to the serving plane: copy every
    /// settled state into its query snapshot buffer, advance the
    /// agent-wide snapshot tag, and push value deltas to matching
    /// subscriptions. Runs at ADVANCE(done): the termination barrier
    /// already confirmed every STATE broadcast of the run was received
    /// and processed, so `state` holds the completed value on replicas
    /// too — and since queries are handled on this same thread, the
    /// buffer flip is atomic with respect to readers.
    fn snapshot_states(&mut self) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        let run_id = run.info.run_id;
        self.snap_run = run_id;
        self.snap_watermark = self.view.batch_id;
        let id = self.id;
        let locator = &self.locator;
        let track = !self.subs.is_empty();
        let mut changed: Vec<(VertexId, u64)> = Vec::new();
        let mut emptied: Vec<VertexId> = Vec::new();
        for (&v, e) in self.vertices.iter_mut() {
            if !e.has_state {
                // The vertex vanished (or lost its state) since the
                // snapshot was taken; the old value stayed servable
                // until this run completed, and expires with it.
                if e.has_snap {
                    e.snap = 0;
                    e.has_snap = false;
                    if e.is_empty() {
                        emptied.push(v);
                    }
                }
                continue;
            }
            let moved = !e.has_snap || e.snap != e.state;
            e.snap = e.state;
            e.has_snap = true;
            // Collect from the primary only, so a subscriber hears
            // each change exactly once no matter how many replicas
            // hold state copies.
            if track && moved && e.is_meta && locator.ring().owner(v) == Some(id) {
                changed.push((v, e.state));
            }
        }
        for v in emptied {
            self.vertices.remove(&v);
        }
        if changed.is_empty() {
            return;
        }
        // Deterministic push order regardless of map iteration.
        changed.sort_unstable();
        let mut pushed = 0u64;
        for (v, state) in changed {
            let Some(ids) = self.watchers.get(&v) else {
                continue;
            };
            for &sub in ids {
                if let Some(s) = self.subs.get_mut(&sub) {
                    msg::append_sub_push(&mut s.outbox, sub, run_id, self.snap_watermark, v, state);
                    pushed += 1;
                }
            }
        }
        self.metrics.sub_pushes += pushed;
        for s in self.subs.values_mut() {
            s.outbox.flush();
        }
    }

    // ------------------------------------------------------------------
    // Run lifecycle
    // ------------------------------------------------------------------

    fn begin_run(&mut self, info: RunInfo) {
        let Some(spec) = ProgramSpec::decode(info.tag, info.params) else {
            return;
        };
        let program = spec.instantiate();
        if !info.reuse_state {
            for e in self.vertices.values_mut() {
                e.has_state = false;
                e.state = 0;
                e.active = false;
                e.residual = 0;
                e.has_residual = false;
            }
            // A from-scratch run recomputes every vertex; dangling-mass
            // deltas accumulated against the discarded states are moot.
            self.dangling_acc = 0.0;
        }
        // The cumulative report is per-run by construction.
        self.dangling_cum = 0.0;
        let mut stale = Vec::new();
        for (&v, e) in self.vertices.iter_mut() {
            e.has_partial = false;
            e.has_ppartial = false;
            e.wait_recv = 0;
            e.pending_delta = 0;
            e.has_pending_delta = false;
            // A parked correction addressed to a vertex with no edges
            // and no state belongs to a dead incarnation: within its
            // (now settled) batch, the deg-delta that vanished the
            // vertex raced ahead of the correction, which then landed
            // on the emptied entry. Purge it, or a later re-created
            // vertex inherits mass owed to its predecessor.
            if e.has_residual && !e.is_meta && !e.has_state {
                e.residual = 0;
                e.has_residual = false;
                if e.is_empty() {
                    stale.push(v);
                }
            }
        }
        for v in stale {
            self.vertices.remove(&v);
        }
        // Remember the residual program across the run so ingest can
        // turn the next batch's edge changes into corrections. The
        // previous seed's `n` survives for the same program: it is the
        // vertex count the carried-over residuals were computed under,
        // needed for the step-0 teleport reseed.
        self.delta_seed = if program.delta_kind() == DeltaKind::Residual {
            let prev_n = self.delta_seed.as_ref().map_or(0, |s| s.n);
            Some(DeltaSeed {
                program: Arc::clone(&program),
                n: prev_n,
            })
        } else {
            None
        };
        self.vertices.clear_partial_dirty();
        self.delta_hot.clear();
        self.buffered_frames.clear();
        self.run = Some(AgentRun {
            info,
            program,
            step: 0,
            phase: Phase::Scatter,
            n_vertices: self.view.n_vertices,
            global: 0.0,
            async_live: false,
            paused: false,
            dangling_round: 0,
        });
        self.reported = None;
        self.reported_counters = None;
        self.last_idle_counters = None;
    }

    fn on_advance(&mut self, adv: msg::Advance) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        if adv.run != run.info.run_id {
            return;
        }
        if adv.done {
            self.finish_run();
            return;
        }
        if run.async_live {
            if adv.phase == Phase::Scatter {
                // Resume after a mid-run view change: the migrate
                // barrier settled and the directory re-published the
                // async advance. Re-scatter the surviving frontier
                // under the adopted view and release the frames that
                // were buffered while paused.
                run.paused = false;
                run.step = adv.step;
                run.phase = Phase::Scatter;
                run.n_vertices = adv.n_vertices;
                self.last_idle_counters = None;
                self.async_rescatter();
                self.replay_buffered();
            } else if adv.phase == Phase::Apply {
                // Dangling-mass redistribution round: fold the uniform
                // share of the published pending mass into every
                // primary's residual. The round guard makes a
                // re-published advance idempotent; dropping the idle
                // snapshot forces a fresh report even when every share
                // parks below tolerance, so the round always answers.
                if adv.step > run.dangling_round {
                    run.dangling_round = adv.step;
                    self.dangling_redistribute(adv.global);
                    self.last_idle_counters = None;
                }
            } else {
                // Probe: drain already happened (mailbox FIFO); answer
                // with current counters (and the cumulative dangling
                // report, so no fold's mass can slip past termination).
                let delta = run.info.delta;
                let contrib = if delta { self.dangling_report() } else { 0.0 };
                self.send_ready(adv.run, adv.step, Phase::Combine, 0, contrib, 0);
            }
            return;
        }
        run.step = adv.step;
        run.phase = adv.phase;
        run.n_vertices = adv.n_vertices;
        run.global = adv.global;
        if run.info.delta && adv.phase == Phase::Combine {
            // The step's Scatter reduce absorbed the reported
            // dangling-mass accumulator into `global`; clear it so the
            // next step reports only new changes.
            self.dangling_acc = 0.0;
        }
        if run.info.asynchronous && adv.step == 1 && adv.phase == Phase::Scatter {
            run.async_live = true;
            let t0 = Instant::now();
            self.async_initial_scatter();
            self.tracer
                .span(EventKind::PhaseScatter, t0, adv.run, u64::from(adv.step));
            // A faster peer's initial scatter can race ahead of this
            // advance; those frames were buffered under the sync rules
            // and would otherwise be stranded (their send was counted,
            // their receive never would be — the run could not
            // terminate). Release them into the async handlers.
            self.replay_buffered();
            return;
        }
        let t0 = Instant::now();
        match adv.phase {
            Phase::Scatter => self.phase_scatter(),
            Phase::Combine => self.phase_combine(),
            Phase::Apply => self.phase_apply(),
            Phase::Migrate => {}
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        self.metrics.last_step_nanos = nanos;
        let span_kind = match adv.phase {
            Phase::Scatter => {
                self.metrics.scatter_nanos += nanos;
                Some(EventKind::PhaseScatter)
            }
            Phase::Combine => {
                self.metrics.combine_nanos += nanos;
                Some(EventKind::PhaseCombine)
            }
            Phase::Apply => {
                self.metrics.apply_nanos += nanos;
                Some(EventKind::PhaseApply)
            }
            Phase::Migrate => None,
        };
        if let Some(kind) = span_kind {
            self.tracer.span(kind, t0, adv.run, u64::from(adv.step));
        }
        self.replay_buffered();
    }

    fn finish_run(&mut self) {
        // Flip the serving snapshot and notify subscribers before the
        // run is dropped (the sweep needs its id and program context).
        self.snapshot_states();
        // Pin the vertex count the surviving residuals were computed
        // under: the next run's step-0 reseed shifts the teleport term
        // if the count moved. 0 stays "unknown" (reseed skipped).
        if let (Some(run), Some(seed)) = (self.run.as_ref(), self.delta_seed.as_mut()) {
            if run.n_vertices != 0 {
                seed.n = run.n_vertices;
            }
        }
        self.run = None;
        self.delta_hot.clear();
        self.reported = None;
        self.reported_counters = None;
        // Apply the changes that were buffered during the run. Their
        // receives were counted when they arrived; decode and apply
        // directly so they are not counted twice.
        let buffered: Vec<Frame> = std::mem::take(&mut self.buffered_changes);
        for frame in buffered {
            match frame.packet_type() {
                packet::RESIDUAL => {
                    if let Some(recs) = msg::decode_residuals(&frame) {
                        self.apply_residuals(recs);
                    }
                }
                _ => {
                    if let Some(view) = msg::decode_edge_changes(&frame) {
                        self.apply_changes(view.side, view.hop, view.records);
                    }
                }
            }
        }
        self.flush_outboxes();
        self.flush_metrics(true);
    }

    /// Run a data-plane frame handler under the `decode_nanos` clock.
    fn timed_data_plane(&mut self, frame: Frame, f: fn(&mut Self, Frame)) {
        let t0 = std::time::Instant::now();
        f(self, frame);
        self.metrics.decode_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Re-dispatch buffered frames that now match the current phase.
    fn replay_buffered(&mut self) {
        let frames: Vec<Frame> = std::mem::take(&mut self.buffered_frames);
        for frame in frames {
            match frame.packet_type() {
                packet::VMSG => self.on_vmsg(frame),
                packet::PARTIAL => self.on_partial(frame),
                packet::STATE => self.on_state(frame),
                _ => {}
            }
        }
    }

    fn current_phase(&self) -> Option<(u64, u32, Phase, bool)> {
        self.run
            .as_ref()
            .map(|r| (r.info.run_id, r.step, r.phase, r.async_live))
    }
}
