//! The ElGA system (paper §3).
//!
//! ElGA is a shared-nothing distributed system for analyzing graphs
//! that change continuously, built so that its own infrastructure can
//! change continuously too. Every entity is single threaded and
//! communicates only by message passing (§3.1):
//!
//! * **Agents** ([`agent`]) hold graph partitions in memory and run
//!   vertex-centric programs;
//! * **Streamers** ([`streamer`]) push turnstile edge changes into the
//!   system;
//! * **ClientProxies** ([`client`]) answer end-user queries;
//! * the **directory system** ([`directory`]) — Directories plus a
//!   DirectoryMaster bootstrap — broadcasts membership, the count-min
//!   sketch, and synchronization barriers.
//!
//! Edge ownership is resolved with the two-level consistent-hash /
//! sketch scheme of `elga-hash` + `elga-sketch` (Figure 3): every edge
//! `(u, v)` is stored twice, once as an out-edge of `u` at
//! `owner(u, v)` and once as an in-edge of `v` at `owner(v, u)`, so
//! both directions of vertex-centric scatter are local ("We store both
//! in and out edges", §4).
//!
//! [`cluster::Cluster`] wires everything together for a single-process
//! deployment over the in-process transport (one OS thread per entity)
//! and exposes the public driver API: `ingest`, `run`, `query`,
//! `add_agents`, `remove_agent`, plus the [`autoscale`] policies.
//!
//! ## Execution model
//!
//! A synchronous superstep is three barriered phases (a faithful
//! factoring of the paper's Figure 2 round plus its replica
//! synchronization, §3.4):
//!
//! 1. **Scatter** — active vertex replicas send program messages along
//!    their local edges; messages for vertex `w` land on one of `w`'s
//!    replicas (second consistent hash), which pre-aggregates them.
//! 2. **Combine** — replicas forward partial aggregates to the
//!    vertex's *primary* replica.
//! 3. **Apply** — primaries run the program's `apply`, then broadcast
//!    changed state to the vertex's replica set.
//!
//! Each barrier is enforced by the directory with Mattern-style
//! double counting (all agents ready *and* global sent == received), so
//! out-of-order and in-flight messages are handled exactly as the
//! paper describes (§3: "ElGA is flexible with receiving messages
//! out-of-order...").
//!
//! Asynchronous mode (for monotone programs such as WCC/BFS/SSSP)
//! processes vertices the moment updates arrive and terminates through
//! the same counting argument.

#![warn(missing_docs)]

pub mod agent;
pub mod algorithms;
pub mod autoscale;
pub mod ckpt_codec;
pub mod client;
pub mod cluster;
pub mod config;
pub mod directory;
pub mod metrics;
pub mod msg;
pub mod program;
mod store;
pub mod streamer;

pub use cluster::{CheckpointReport, Cluster, ClusterBuilder, RecoveryStats, RunStats};
pub use config::SystemConfig;
pub use program::{ExecutionMode, ProgramSpec, VertexCtx, VertexProgram};
