//! Metric collection for elastic autoscaling (paper §3.4.3: "ElGA
//! comes with an API for metric collection and autoscalers. ... We
//! implemented Agent metrics for graph change rates, client query
//! rates, and superstep times. Metrics are passed to Directories.")

use crate::msg::packet;
use elga_hash::AgentId;
use elga_net::{CoalesceStats, Frame, FrameReader, NetStats};

/// Frames/bytes sent and received for one packet type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketStat {
    /// Frames sent.
    pub frames_sent: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Frames received.
    pub frames_recv: u64,
    /// Bytes received.
    pub bytes_recv: u64,
}

impl PacketStat {
    fn absorb(&mut self, o: &PacketStat) {
        self.frames_sent += o.frames_sent;
        self.bytes_sent += o.bytes_sent;
        self.frames_recv += o.frames_recv;
        self.bytes_recv += o.bytes_recv;
    }

    fn from_net(net: &NetStats, ty: u8) -> PacketStat {
        let (frames_sent, bytes_sent) = net.sent(ty);
        let (frames_recv, bytes_recv) = net.received(ty);
        PacketStat {
            frames_sent,
            bytes_sent,
            frames_recv,
            bytes_recv,
        }
    }

    fn encode_into(&self, b: elga_net::frame::FrameBuilder) -> elga_net::frame::FrameBuilder {
        b.u64(self.frames_sent)
            .u64(self.bytes_sent)
            .u64(self.frames_recv)
            .u64(self.bytes_recv)
    }

    fn decode(r: &mut FrameReader<'_>) -> Option<PacketStat> {
        Some(PacketStat {
            frames_sent: r.u64()?,
            bytes_sent: r.u64()?,
            frames_recv: r.u64()?,
            bytes_recv: r.u64()?,
        })
    }
}

/// Comms-plane observability: data-plane traffic broken down by packet
/// type, plus the coalescer's flush-reason counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommsMetrics {
    /// Scatter vertex messages (VMSG).
    pub vmsg: PacketStat,
    /// Partial aggregates (PARTIAL).
    pub partial: PacketStat,
    /// State broadcasts (STATE).
    pub state: PacketStat,
    /// Edge changes (EDGE_CHANGES).
    pub edge_changes: PacketStat,
    /// Degree deltas (DEG_DELTA).
    pub deg_delta: PacketStat,
    /// Migration traffic (MIG_EDGES + MIG_META combined).
    pub migration: PacketStat,
    /// Coalescer flushes triggered by the byte threshold.
    pub size_flushes: u64,
    /// Coalescer flushes triggered by the record-count threshold.
    pub count_flushes: u64,
    /// Explicit phase-end flushes.
    pub explicit_flushes: u64,
    /// Flushes forced by a packet-type or header switch.
    pub switch_flushes: u64,
    /// Times a sender waited on in-flight credit (backpressure).
    pub backpressure_waits: u64,
    /// Wire messages served out of an existing RX batch allocation
    /// (zero-copy receive pool hits).
    pub rx_pool_hits: u64,
    /// RX batch allocations (one per bulk read that promoted bytes to
    /// a fresh shared batch).
    pub rx_pool_misses: u64,
}

impl CommsMetrics {
    /// Snapshot the data-plane packet types out of an agent-local
    /// [`NetStats`] and merge in its aggregated coalescer counters.
    pub fn snapshot(net: &NetStats, coalesce: &CoalesceStats) -> CommsMetrics {
        let mut migration = PacketStat::from_net(net, packet::MIG_EDGES);
        migration.absorb(&PacketStat::from_net(net, packet::MIG_META));
        let (rx_pool_hits, rx_pool_misses) = net.rx_pool();
        CommsMetrics {
            vmsg: PacketStat::from_net(net, packet::VMSG),
            partial: PacketStat::from_net(net, packet::PARTIAL),
            state: PacketStat::from_net(net, packet::STATE),
            edge_changes: PacketStat::from_net(net, packet::EDGE_CHANGES),
            deg_delta: PacketStat::from_net(net, packet::DEG_DELTA),
            migration,
            size_flushes: coalesce.size_flushes,
            count_flushes: coalesce.count_flushes,
            explicit_flushes: coalesce.explicit_flushes,
            switch_flushes: coalesce.switch_flushes,
            backpressure_waits: coalesce.backpressure_waits,
            rx_pool_hits,
            rx_pool_misses,
        }
    }

    /// Fraction of wire messages served from an existing RX batch
    /// allocation; 0 before any traffic.
    pub fn rx_pool_hit_rate(&self) -> f64 {
        let total = self.rx_pool_hits + self.rx_pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.rx_pool_hits as f64 / total as f64
    }

    /// Element-wise sum (cluster aggregation).
    pub fn absorb(&mut self, o: &CommsMetrics) {
        self.vmsg.absorb(&o.vmsg);
        self.partial.absorb(&o.partial);
        self.state.absorb(&o.state);
        self.edge_changes.absorb(&o.edge_changes);
        self.deg_delta.absorb(&o.deg_delta);
        self.migration.absorb(&o.migration);
        self.size_flushes += o.size_flushes;
        self.count_flushes += o.count_flushes;
        self.explicit_flushes += o.explicit_flushes;
        self.switch_flushes += o.switch_flushes;
        self.backpressure_waits += o.backpressure_waits;
        self.rx_pool_hits += o.rx_pool_hits;
        self.rx_pool_misses += o.rx_pool_misses;
    }

    /// Total data-plane frames sent across all packet types.
    pub fn frames_sent(&self) -> u64 {
        [
            &self.vmsg,
            &self.partial,
            &self.state,
            &self.edge_changes,
            &self.deg_delta,
            &self.migration,
        ]
        .iter()
        .map(|p| p.frames_sent)
        .sum()
    }

    /// Total data-plane bytes sent across all packet types.
    pub fn bytes_sent(&self) -> u64 {
        [
            &self.vmsg,
            &self.partial,
            &self.state,
            &self.edge_changes,
            &self.deg_delta,
            &self.migration,
        ]
        .iter()
        .map(|p| p.bytes_sent)
        .sum()
    }

    fn encode_into(&self, b: elga_net::frame::FrameBuilder) -> elga_net::frame::FrameBuilder {
        let b = self.vmsg.encode_into(b);
        let b = self.partial.encode_into(b);
        let b = self.state.encode_into(b);
        let b = self.edge_changes.encode_into(b);
        let b = self.deg_delta.encode_into(b);
        let b = self.migration.encode_into(b);
        b.u64(self.size_flushes)
            .u64(self.count_flushes)
            .u64(self.explicit_flushes)
            .u64(self.switch_flushes)
            .u64(self.backpressure_waits)
            .u64(self.rx_pool_hits)
            .u64(self.rx_pool_misses)
    }

    fn decode(r: &mut FrameReader<'_>) -> Option<CommsMetrics> {
        Some(CommsMetrics {
            vmsg: PacketStat::decode(r)?,
            partial: PacketStat::decode(r)?,
            state: PacketStat::decode(r)?,
            edge_changes: PacketStat::decode(r)?,
            deg_delta: PacketStat::decode(r)?,
            migration: PacketStat::decode(r)?,
            size_flushes: r.u64()?,
            count_flushes: r.u64()?,
            explicit_flushes: r.u64()?,
            switch_flushes: r.u64()?,
            backpressure_waits: r.u64()?,
            rx_pool_hits: r.u64()?,
            rx_pool_misses: r.u64()?,
        })
    }
}

/// Cumulative per-agent activity counters, pushed to the agent's
/// directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentMetrics {
    /// Reporting agent.
    pub agent: AgentId,
    /// Client queries served.
    pub queries: u64,
    /// Edge-change records applied.
    pub changes: u64,
    /// Vertex messages processed.
    pub vmsgs: u64,
    /// Out-placement edges currently held.
    pub edges: u64,
    /// Nanoseconds spent in the last superstep's local work.
    pub last_step_nanos: u64,
    /// Transient send/request failures that were retried successfully
    /// (chaos observability).
    pub retries_attempted: u64,
    /// Owner-cache lookups served from the per-epoch memo (summed over
    /// the agent's routing and worker caches).
    pub owner_cache_hits: u64,
    /// Owner placements resolved from scratch (cache misses).
    pub owner_cache_misses: u64,
    /// Cumulative wall time in the scatter kernel.
    pub scatter_nanos: u64,
    /// Cumulative wall time in the combine kernel.
    pub combine_nanos: u64,
    /// Cumulative wall time in the apply kernel.
    pub apply_nanos: u64,
    /// Cumulative wall time in data-plane receive handlers (VMSG /
    /// PARTIAL / STATE / EDGE_CHANGES / DEG_DELTA). With borrowed
    /// decoders, parsing happens in place as records are consumed, so
    /// this clock covers decode + consume together.
    pub decode_nanos: u64,
    /// Data-plane frames for a finished or aborted run that arrived
    /// after the agent moved on (dropped, not applied — see the
    /// stale-run arms in the agent's frame dispatch).
    pub stale_frames: u64,
    /// Checkpoint shards durably written (CKPT_SAVE successes).
    pub ckpt_writes: u64,
    /// Cumulative wall time serializing and writing checkpoint shards.
    pub ckpt_write_nanos: u64,
    /// Cumulative checkpoint payload bytes written.
    pub ckpt_bytes: u64,
    /// QUERY_BATCH frames served (their per-vertex answers also count
    /// into `queries`).
    pub query_batches: u64,
    /// Standing subscriptions currently registered.
    pub subscriptions: u64,
    /// Subscription value-delta records pushed after completed runs.
    pub sub_pushes: u64,
    /// Comms-plane traffic and coalescer flush counters.
    pub comms: CommsMetrics,
}

impl AgentMetrics {
    /// Encode as a METRICS frame.
    pub fn encode(&self) -> Frame {
        let b = Frame::builder(packet::METRICS)
            .u64(self.agent)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.last_step_nanos)
            .u64(self.retries_attempted)
            .u64(self.owner_cache_hits)
            .u64(self.owner_cache_misses)
            .u64(self.scatter_nanos)
            .u64(self.combine_nanos)
            .u64(self.apply_nanos)
            .u64(self.decode_nanos)
            .u64(self.stale_frames)
            .u64(self.ckpt_writes)
            .u64(self.ckpt_write_nanos)
            .u64(self.ckpt_bytes)
            .u64(self.query_batches)
            .u64(self.subscriptions)
            .u64(self.sub_pushes);
        self.comms.encode_into(b).finish()
    }

    /// Decode a METRICS frame.
    pub fn decode(frame: &Frame) -> Option<AgentMetrics> {
        if frame.packet_type() != packet::METRICS {
            return None;
        }
        let mut r = frame.reader();
        Some(AgentMetrics {
            agent: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            last_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
            owner_cache_hits: r.u64()?,
            owner_cache_misses: r.u64()?,
            scatter_nanos: r.u64()?,
            combine_nanos: r.u64()?,
            apply_nanos: r.u64()?,
            decode_nanos: r.u64()?,
            stale_frames: r.u64()?,
            ckpt_writes: r.u64()?,
            ckpt_write_nanos: r.u64()?,
            ckpt_bytes: r.u64()?,
            query_batches: r.u64()?,
            subscriptions: r.u64()?,
            sub_pushes: r.u64()?,
            comms: CommsMetrics::decode(&mut r)?,
        })
    }
}

/// Aggregated view over all agents, returned by the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Number of registered agents.
    pub agents: u64,
    /// Total queries served (cumulative).
    pub queries: u64,
    /// Total edge-change records applied (cumulative).
    pub changes: u64,
    /// Total vertex messages processed (cumulative).
    pub vmsgs: u64,
    /// Total out-placement edges held.
    pub edges: u64,
    /// Max of agents' last superstep nanos (the straggler).
    pub max_step_nanos: u64,
    /// Total transient failures retried across agents and the driver.
    pub retries_attempted: u64,
    /// Frames dropped by an injected fault layer (0 outside chaos
    /// runs; merged in by the driver, which owns the fault handle).
    pub messages_dropped: u64,
    /// Agents declared dead and evicted by failure detection.
    pub agents_recovered: u64,
    /// Agents whose counters were successfully drained into this
    /// aggregate (set by the driver's collection pass).
    pub agents_drained: u64,
    /// `true` when at least one live agent could not be drained (even
    /// after a retry against the refreshed view), so the cumulative
    /// totals undercount that agent's most recent activity.
    pub partial: bool,
    /// Total owner-cache hits across agents.
    pub owner_cache_hits: u64,
    /// Total owner-cache misses across agents.
    pub owner_cache_misses: u64,
    /// Total scatter-kernel wall time across agents.
    pub scatter_nanos: u64,
    /// Total combine-kernel wall time across agents.
    pub combine_nanos: u64,
    /// Total apply-kernel wall time across agents.
    pub apply_nanos: u64,
    /// Total data-plane receive-handler wall time across agents
    /// (decode + consume; see [`AgentMetrics::decode_nanos`]).
    pub decode_nanos: u64,
    /// Total stale-run data-plane frames dropped across agents (frames
    /// for an already-finished or aborted run).
    pub stale_frames: u64,
    /// Total checkpoint shards durably written across agents.
    pub ckpt_writes: u64,
    /// Total wall time serializing and writing checkpoint shards.
    pub ckpt_write_nanos: u64,
    /// Total checkpoint payload bytes written across agents.
    pub ckpt_bytes: u64,
    /// Recoveries completed end-to-end (driver-merged: the driver
    /// orchestrates recovery, so the directory aggregate cannot know).
    pub recoveries: u64,
    /// Total end-to-end recovery wall time (driver-merged).
    pub recovery_nanos: u64,
    /// Recoveries restored from a checkpoint generation (driver-merged).
    pub ckpt_restores: u64,
    /// Wall time reading + re-injecting checkpoint shards
    /// (driver-merged).
    pub ckpt_restore_nanos: u64,
    /// Damaged committed generations skipped by recovery's fallback
    /// ladder (driver-merged).
    pub ckpt_fallbacks: u64,
    /// Change records replayed from the retained log during recovery
    /// (driver-merged).
    pub replayed_records: u64,
    /// Total QUERY_BATCH frames served across agents.
    pub query_batches: u64,
    /// Standing subscriptions registered across agents.
    pub subscriptions: u64,
    /// Subscription value-delta records pushed across agents.
    pub sub_pushes: u64,
    /// Summed comms-plane traffic and coalescer counters.
    pub comms: CommsMetrics,
}

impl ClusterMetrics {
    /// Fold one agent report into the aggregate.
    pub fn absorb(&mut self, m: &AgentMetrics) {
        self.queries += m.queries;
        self.changes += m.changes;
        self.vmsgs += m.vmsgs;
        self.edges += m.edges;
        self.max_step_nanos = self.max_step_nanos.max(m.last_step_nanos);
        self.retries_attempted += m.retries_attempted;
        self.owner_cache_hits += m.owner_cache_hits;
        self.owner_cache_misses += m.owner_cache_misses;
        self.scatter_nanos += m.scatter_nanos;
        self.combine_nanos += m.combine_nanos;
        self.apply_nanos += m.apply_nanos;
        self.decode_nanos += m.decode_nanos;
        self.stale_frames += m.stale_frames;
        self.ckpt_writes += m.ckpt_writes;
        self.ckpt_write_nanos += m.ckpt_write_nanos;
        self.ckpt_bytes += m.ckpt_bytes;
        self.query_batches += m.query_batches;
        self.subscriptions += m.subscriptions;
        self.sub_pushes += m.sub_pushes;
        self.comms.absorb(&m.comms);
    }

    /// Fraction of owner lookups served from cache, in `[0, 1]`; 0 when
    /// no lookups happened.
    pub fn owner_cache_hit_rate(&self) -> f64 {
        let total = self.owner_cache_hits + self.owner_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.owner_cache_hits as f64 / total as f64
        }
    }

    /// Encode as a GET_METRICS reply.
    pub fn encode(&self) -> Frame {
        let b = Frame::builder(packet::GET_METRICS)
            .u64(self.agents)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.max_step_nanos)
            .u64(self.retries_attempted)
            .u64(self.messages_dropped)
            .u64(self.agents_recovered)
            .u64(self.agents_drained)
            .u8(self.partial as u8)
            .u64(self.owner_cache_hits)
            .u64(self.owner_cache_misses)
            .u64(self.scatter_nanos)
            .u64(self.combine_nanos)
            .u64(self.apply_nanos)
            .u64(self.decode_nanos)
            .u64(self.stale_frames)
            .u64(self.ckpt_writes)
            .u64(self.ckpt_write_nanos)
            .u64(self.ckpt_bytes)
            .u64(self.recoveries)
            .u64(self.recovery_nanos)
            .u64(self.ckpt_restores)
            .u64(self.ckpt_restore_nanos)
            .u64(self.ckpt_fallbacks)
            .u64(self.replayed_records)
            .u64(self.query_batches)
            .u64(self.subscriptions)
            .u64(self.sub_pushes);
        self.comms.encode_into(b).finish()
    }

    /// Render as Prometheus text exposition format (one gauge/counter
    /// per field, `elga_` prefix), suitable for a textfile collector
    /// or a debug endpoint.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP elga_{name} {help}\n# TYPE elga_{name} {kind}\nelga_{name} {value}\n"
            ));
        };
        metric("agents", "gauge", "Registered agents.", self.agents);
        metric(
            "agents_drained",
            "gauge",
            "Agents drained into this aggregate.",
            self.agents_drained,
        );
        metric(
            "metrics_partial",
            "gauge",
            "1 when at least one live agent could not be drained.",
            self.partial as u64,
        );
        metric(
            "queries_total",
            "counter",
            "Client queries served.",
            self.queries,
        );
        metric(
            "query_batches_total",
            "counter",
            "Batched multi-vertex query frames served.",
            self.query_batches,
        );
        metric(
            "subscriptions",
            "gauge",
            "Standing vertex subscriptions registered.",
            self.subscriptions,
        );
        metric(
            "sub_pushes_total",
            "counter",
            "Subscription value-delta records pushed.",
            self.sub_pushes,
        );
        metric(
            "changes_total",
            "counter",
            "Edge-change records applied.",
            self.changes,
        );
        metric(
            "vmsgs_total",
            "counter",
            "Vertex messages processed.",
            self.vmsgs,
        );
        metric("edges", "gauge", "Out-placement edges held.", self.edges);
        metric(
            "max_step_nanos",
            "gauge",
            "Slowest agent's last superstep (ns).",
            self.max_step_nanos,
        );
        metric(
            "retries_total",
            "counter",
            "Transient failures retried.",
            self.retries_attempted,
        );
        metric(
            "messages_dropped_total",
            "counter",
            "Frames dropped by an injected fault layer.",
            self.messages_dropped,
        );
        metric(
            "agents_recovered_total",
            "counter",
            "Agents evicted by failure detection.",
            self.agents_recovered,
        );
        metric(
            "owner_cache_hits_total",
            "counter",
            "Owner-cache hits.",
            self.owner_cache_hits,
        );
        metric(
            "owner_cache_misses_total",
            "counter",
            "Owner-cache misses.",
            self.owner_cache_misses,
        );
        metric(
            "scatter_nanos_total",
            "counter",
            "Scatter-kernel wall time (ns).",
            self.scatter_nanos,
        );
        metric(
            "combine_nanos_total",
            "counter",
            "Combine-kernel wall time (ns).",
            self.combine_nanos,
        );
        metric(
            "apply_nanos_total",
            "counter",
            "Apply-kernel wall time (ns).",
            self.apply_nanos,
        );
        metric(
            "decode_nanos_total",
            "counter",
            "Data-plane receive-handler wall time (ns).",
            self.decode_nanos,
        );
        metric(
            "stale_frames_total",
            "counter",
            "Stale-run data-plane frames dropped.",
            self.stale_frames,
        );
        metric(
            "ckpt_writes_total",
            "counter",
            "Checkpoint shards durably written.",
            self.ckpt_writes,
        );
        metric(
            "ckpt_write_nanos_total",
            "counter",
            "Wall time writing checkpoint shards (ns).",
            self.ckpt_write_nanos,
        );
        metric(
            "ckpt_bytes_total",
            "counter",
            "Checkpoint payload bytes written.",
            self.ckpt_bytes,
        );
        metric(
            "recoveries_total",
            "counter",
            "End-to-end recoveries completed.",
            self.recoveries,
        );
        metric(
            "recovery_nanos_total",
            "counter",
            "End-to-end recovery wall time (ns).",
            self.recovery_nanos,
        );
        metric(
            "ckpt_restores_total",
            "counter",
            "Recoveries restored from a checkpoint.",
            self.ckpt_restores,
        );
        metric(
            "ckpt_restore_nanos_total",
            "counter",
            "Wall time restoring checkpoint shards (ns).",
            self.ckpt_restore_nanos,
        );
        metric(
            "ckpt_fallbacks_total",
            "counter",
            "Damaged checkpoint generations skipped.",
            self.ckpt_fallbacks,
        );
        metric(
            "replayed_records_total",
            "counter",
            "Change records replayed during recovery.",
            self.replayed_records,
        );
        metric(
            "coalesce_size_flushes_total",
            "counter",
            "Coalescer flushes at the byte threshold.",
            self.comms.size_flushes,
        );
        metric(
            "coalesce_count_flushes_total",
            "counter",
            "Coalescer flushes at the record threshold.",
            self.comms.count_flushes,
        );
        metric(
            "coalesce_explicit_flushes_total",
            "counter",
            "Explicit phase-end coalescer flushes.",
            self.comms.explicit_flushes,
        );
        metric(
            "coalesce_switch_flushes_total",
            "counter",
            "Coalescer flushes forced by a type/header switch.",
            self.comms.switch_flushes,
        );
        metric(
            "backpressure_waits_total",
            "counter",
            "Sends that waited on in-flight credit.",
            self.comms.backpressure_waits,
        );
        metric(
            "rx_pool_hits_total",
            "counter",
            "Receives served from an existing pooled batch buffer.",
            self.comms.rx_pool_hits,
        );
        metric(
            "rx_pool_misses_total",
            "counter",
            "Receives that allocated a fresh batch buffer.",
            self.comms.rx_pool_misses,
        );
        for (name, stat) in [
            ("vmsg", &self.comms.vmsg),
            ("partial", &self.comms.partial),
            ("state", &self.comms.state),
            ("edge_changes", &self.comms.edge_changes),
            ("deg_delta", &self.comms.deg_delta),
            ("migration", &self.comms.migration),
        ] {
            out.push_str(&format!(
                "elga_frames_sent_total{{type=\"{name}\"}} {}\n",
                stat.frames_sent
            ));
            out.push_str(&format!(
                "elga_bytes_sent_total{{type=\"{name}\"}} {}\n",
                stat.bytes_sent
            ));
        }
        out
    }

    /// Decode a GET_METRICS reply.
    pub fn decode(frame: &Frame) -> Option<ClusterMetrics> {
        if frame.packet_type() != packet::GET_METRICS {
            return None;
        }
        let mut r: FrameReader<'_> = frame.reader();
        Some(ClusterMetrics {
            agents: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            max_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
            messages_dropped: r.u64()?,
            agents_recovered: r.u64()?,
            agents_drained: r.u64()?,
            partial: r.u8()? != 0,
            owner_cache_hits: r.u64()?,
            owner_cache_misses: r.u64()?,
            scatter_nanos: r.u64()?,
            combine_nanos: r.u64()?,
            apply_nanos: r.u64()?,
            decode_nanos: r.u64()?,
            stale_frames: r.u64()?,
            ckpt_writes: r.u64()?,
            ckpt_write_nanos: r.u64()?,
            ckpt_bytes: r.u64()?,
            recoveries: r.u64()?,
            recovery_nanos: r.u64()?,
            ckpt_restores: r.u64()?,
            ckpt_restore_nanos: r.u64()?,
            ckpt_fallbacks: r.u64()?,
            replayed_records: r.u64()?,
            query_batches: r.u64()?,
            subscriptions: r.u64()?,
            sub_pushes: r.u64()?,
            comms: CommsMetrics::decode(&mut r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_metrics_roundtrip() {
        let m = AgentMetrics {
            agent: 3,
            queries: 10,
            changes: 20,
            vmsgs: 30,
            edges: 40,
            last_step_nanos: 50,
            retries_attempted: 60,
            owner_cache_hits: 70,
            owner_cache_misses: 80,
            scatter_nanos: 90,
            combine_nanos: 100,
            apply_nanos: 110,
            decode_nanos: 115,
            stale_frames: 120,
            ckpt_writes: 130,
            ckpt_write_nanos: 140,
            ckpt_bytes: 150,
            query_batches: 160,
            subscriptions: 170,
            sub_pushes: 180,
            comms: CommsMetrics {
                vmsg: PacketStat {
                    frames_sent: 1,
                    bytes_sent: 2,
                    frames_recv: 3,
                    bytes_recv: 4,
                },
                size_flushes: 5,
                backpressure_waits: 6,
                ..Default::default()
            },
        };
        assert_eq!(AgentMetrics::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn cluster_metrics_absorb_and_roundtrip() {
        let mut c = ClusterMetrics {
            agents: 2,
            ..Default::default()
        };
        c.absorb(&AgentMetrics {
            agent: 1,
            queries: 5,
            changes: 1,
            vmsgs: 2,
            edges: 3,
            last_step_nanos: 100,
            retries_attempted: 2,
            owner_cache_hits: 30,
            owner_cache_misses: 10,
            scatter_nanos: 7,
            combine_nanos: 8,
            apply_nanos: 9,
            decode_nanos: 11,
            stale_frames: 2,
            ckpt_writes: 1,
            ckpt_write_nanos: 10,
            ckpt_bytes: 100,
            query_batches: 2,
            subscriptions: 1,
            sub_pushes: 4,
            comms: CommsMetrics {
                count_flushes: 4,
                ..Default::default()
            },
        });
        c.absorb(&AgentMetrics {
            agent: 2,
            queries: 7,
            changes: 0,
            vmsgs: 1,
            edges: 4,
            last_step_nanos: 60,
            retries_attempted: 1,
            owner_cache_hits: 30,
            owner_cache_misses: 10,
            scatter_nanos: 1,
            combine_nanos: 2,
            apply_nanos: 3,
            decode_nanos: 4,
            stale_frames: 1,
            ckpt_writes: 2,
            ckpt_write_nanos: 20,
            ckpt_bytes: 200,
            query_batches: 3,
            subscriptions: 2,
            sub_pushes: 6,
            comms: CommsMetrics {
                count_flushes: 5,
                ..Default::default()
            },
        });
        c.messages_dropped = 9;
        c.agents_recovered = 1;
        c.agents_drained = 2;
        c.partial = true;
        assert_eq!(c.queries, 12);
        assert_eq!(c.edges, 7);
        assert_eq!(c.max_step_nanos, 100);
        assert_eq!(c.retries_attempted, 3);
        assert_eq!(c.owner_cache_hits, 60);
        assert_eq!(c.owner_cache_misses, 20);
        assert!((c.owner_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(
            (c.scatter_nanos, c.combine_nanos, c.apply_nanos),
            (8, 10, 12)
        );
        assert_eq!(c.decode_nanos, 15);
        assert_eq!(c.stale_frames, 3);
        assert_eq!(
            (c.ckpt_writes, c.ckpt_write_nanos, c.ckpt_bytes),
            (3, 30, 300)
        );
        assert_eq!(c.comms.count_flushes, 9);
        // Driver-side recovery fields survive the wire roundtrip too.
        c.recoveries = 2;
        c.recovery_nanos = 123;
        c.ckpt_restores = 1;
        c.ckpt_restore_nanos = 45;
        c.ckpt_fallbacks = 1;
        c.replayed_records = 67;
        assert_eq!(ClusterMetrics::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_rejects_short_frames() {
        assert!(AgentMetrics::decode(&Frame::signal(packet::METRICS)).is_none());
        assert!(ClusterMetrics::decode(&Frame::signal(packet::GET_METRICS)).is_none());
    }

    #[test]
    fn decode_rejects_wrong_packet_type() {
        let m = AgentMetrics::default();
        let c = ClusterMetrics::default();
        assert!(ClusterMetrics::decode(&m.encode()).is_none());
        assert!(AgentMetrics::decode(&c.encode()).is_none());
    }

    #[test]
    fn prometheus_rendering_exposes_fields() {
        let c = ClusterMetrics {
            agents: 4,
            agents_drained: 3,
            partial: true,
            queries: 12,
            stale_frames: 5,
            ckpt_writes: 6,
            recoveries: 2,
            ckpt_fallbacks: 1,
            replayed_records: 40,
            comms: CommsMetrics {
                vmsg: PacketStat {
                    frames_sent: 7,
                    bytes_sent: 700,
                    ..Default::default()
                },
                backpressure_waits: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let text = c.to_prometheus();
        assert!(text.contains("elga_agents 4\n"));
        assert!(text.contains("elga_agents_drained 3\n"));
        assert!(text.contains("elga_metrics_partial 1\n"));
        assert!(text.contains("elga_queries_total 12\n"));
        assert!(text.contains("elga_stale_frames_total 5\n"));
        assert!(text.contains("elga_ckpt_writes_total 6\n"));
        assert!(text.contains("elga_recoveries_total 2\n"));
        assert!(text.contains("elga_ckpt_fallbacks_total 1\n"));
        assert!(text.contains("elga_replayed_records_total 40\n"));
        assert!(text.contains("elga_backpressure_waits_total 2\n"));
        assert!(text.contains("elga_frames_sent_total{type=\"vmsg\"} 7\n"));
        assert!(text.contains("# TYPE elga_queries_total counter\n"));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.splitn(2, ' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn comms_snapshot_reads_net_and_coalesce() {
        let net = NetStats::new();
        net.record_sent(packet::VMSG, 100);
        net.record_sent(packet::VMSG, 50);
        net.record_recv(packet::STATE, 25);
        net.record_sent(packet::MIG_EDGES, 10);
        net.record_sent(packet::MIG_META, 20);
        let coalesce = CoalesceStats {
            size_flushes: 1,
            explicit_flushes: 2,
            ..Default::default()
        };
        let comms = CommsMetrics::snapshot(&net, &coalesce);
        assert_eq!(comms.vmsg.frames_sent, 2);
        assert_eq!(comms.vmsg.bytes_sent, 150);
        assert_eq!(comms.state.frames_recv, 1);
        assert_eq!(comms.state.bytes_recv, 25);
        assert_eq!(comms.migration.frames_sent, 2);
        assert_eq!(comms.migration.bytes_sent, 30);
        assert_eq!(comms.size_flushes, 1);
        assert_eq!(comms.explicit_flushes, 2);
        assert_eq!(comms.frames_sent(), 4);
        assert_eq!(comms.bytes_sent(), 180);
    }
}
