//! Metric collection for elastic autoscaling (paper §3.4.3: "ElGA
//! comes with an API for metric collection and autoscalers. ... We
//! implemented Agent metrics for graph change rates, client query
//! rates, and superstep times. Metrics are passed to Directories.")

use crate::msg::packet;
use elga_hash::AgentId;
use elga_net::{Frame, FrameReader};

/// Cumulative per-agent activity counters, pushed to the agent's
/// directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentMetrics {
    /// Reporting agent.
    pub agent: AgentId,
    /// Client queries served.
    pub queries: u64,
    /// Edge-change records applied.
    pub changes: u64,
    /// Vertex messages processed.
    pub vmsgs: u64,
    /// Out-placement edges currently held.
    pub edges: u64,
    /// Nanoseconds spent in the last superstep's local work.
    pub last_step_nanos: u64,
    /// Transient send/request failures that were retried successfully
    /// (chaos observability).
    pub retries_attempted: u64,
}

impl AgentMetrics {
    /// Encode as a METRICS frame.
    pub fn encode(&self) -> Frame {
        Frame::builder(packet::METRICS)
            .u64(self.agent)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.last_step_nanos)
            .u64(self.retries_attempted)
            .finish()
    }

    /// Decode a METRICS frame.
    pub fn decode(frame: &Frame) -> Option<AgentMetrics> {
        let mut r = frame.reader();
        Some(AgentMetrics {
            agent: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            last_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
        })
    }
}

/// Aggregated view over all agents, returned by the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Number of registered agents.
    pub agents: u64,
    /// Total queries served (cumulative).
    pub queries: u64,
    /// Total edge-change records applied (cumulative).
    pub changes: u64,
    /// Total vertex messages processed (cumulative).
    pub vmsgs: u64,
    /// Total out-placement edges held.
    pub edges: u64,
    /// Max of agents' last superstep nanos (the straggler).
    pub max_step_nanos: u64,
    /// Total transient failures retried across agents and the driver.
    pub retries_attempted: u64,
    /// Frames dropped by an injected fault layer (0 outside chaos
    /// runs; merged in by the driver, which owns the fault handle).
    pub messages_dropped: u64,
    /// Agents declared dead and evicted by failure detection.
    pub agents_recovered: u64,
}

impl ClusterMetrics {
    /// Fold one agent report into the aggregate.
    pub fn absorb(&mut self, m: &AgentMetrics) {
        self.queries += m.queries;
        self.changes += m.changes;
        self.vmsgs += m.vmsgs;
        self.edges += m.edges;
        self.max_step_nanos = self.max_step_nanos.max(m.last_step_nanos);
        self.retries_attempted += m.retries_attempted;
    }

    /// Encode as a GET_METRICS reply.
    pub fn encode(&self) -> Frame {
        Frame::builder(packet::GET_METRICS)
            .u64(self.agents)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.max_step_nanos)
            .u64(self.retries_attempted)
            .u64(self.messages_dropped)
            .u64(self.agents_recovered)
            .finish()
    }

    /// Decode a GET_METRICS reply.
    pub fn decode(frame: &Frame) -> Option<ClusterMetrics> {
        let mut r: FrameReader<'_> = frame.reader();
        Some(ClusterMetrics {
            agents: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            max_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
            messages_dropped: r.u64()?,
            agents_recovered: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_metrics_roundtrip() {
        let m = AgentMetrics {
            agent: 3,
            queries: 10,
            changes: 20,
            vmsgs: 30,
            edges: 40,
            last_step_nanos: 50,
            retries_attempted: 60,
        };
        assert_eq!(AgentMetrics::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn cluster_metrics_absorb_and_roundtrip() {
        let mut c = ClusterMetrics {
            agents: 2,
            ..Default::default()
        };
        c.absorb(&AgentMetrics {
            agent: 1,
            queries: 5,
            changes: 1,
            vmsgs: 2,
            edges: 3,
            last_step_nanos: 100,
            retries_attempted: 2,
        });
        c.absorb(&AgentMetrics {
            agent: 2,
            queries: 7,
            changes: 0,
            vmsgs: 1,
            edges: 4,
            last_step_nanos: 60,
            retries_attempted: 1,
        });
        c.messages_dropped = 9;
        c.agents_recovered = 1;
        assert_eq!(c.queries, 12);
        assert_eq!(c.edges, 7);
        assert_eq!(c.max_step_nanos, 100);
        assert_eq!(c.retries_attempted, 3);
        assert_eq!(ClusterMetrics::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_rejects_short_frames() {
        assert!(AgentMetrics::decode(&Frame::signal(packet::METRICS)).is_none());
        assert!(ClusterMetrics::decode(&Frame::signal(packet::GET_METRICS)).is_none());
    }
}
