//! Metric collection for elastic autoscaling (paper §3.4.3: "ElGA
//! comes with an API for metric collection and autoscalers. ... We
//! implemented Agent metrics for graph change rates, client query
//! rates, and superstep times. Metrics are passed to Directories.")

use crate::msg::packet;
use elga_hash::AgentId;
use elga_net::{Frame, FrameReader};

/// Cumulative per-agent activity counters, pushed to the agent's
/// directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentMetrics {
    /// Reporting agent.
    pub agent: AgentId,
    /// Client queries served.
    pub queries: u64,
    /// Edge-change records applied.
    pub changes: u64,
    /// Vertex messages processed.
    pub vmsgs: u64,
    /// Out-placement edges currently held.
    pub edges: u64,
    /// Nanoseconds spent in the last superstep's local work.
    pub last_step_nanos: u64,
    /// Transient send/request failures that were retried successfully
    /// (chaos observability).
    pub retries_attempted: u64,
    /// Owner-cache lookups served from the per-epoch memo (summed over
    /// the agent's routing and worker caches).
    pub owner_cache_hits: u64,
    /// Owner placements resolved from scratch (cache misses).
    pub owner_cache_misses: u64,
    /// Cumulative wall time in the scatter kernel.
    pub scatter_nanos: u64,
    /// Cumulative wall time in the combine kernel.
    pub combine_nanos: u64,
    /// Cumulative wall time in the apply kernel.
    pub apply_nanos: u64,
}

impl AgentMetrics {
    /// Encode as a METRICS frame.
    pub fn encode(&self) -> Frame {
        Frame::builder(packet::METRICS)
            .u64(self.agent)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.last_step_nanos)
            .u64(self.retries_attempted)
            .u64(self.owner_cache_hits)
            .u64(self.owner_cache_misses)
            .u64(self.scatter_nanos)
            .u64(self.combine_nanos)
            .u64(self.apply_nanos)
            .finish()
    }

    /// Decode a METRICS frame.
    pub fn decode(frame: &Frame) -> Option<AgentMetrics> {
        let mut r = frame.reader();
        Some(AgentMetrics {
            agent: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            last_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
            owner_cache_hits: r.u64()?,
            owner_cache_misses: r.u64()?,
            scatter_nanos: r.u64()?,
            combine_nanos: r.u64()?,
            apply_nanos: r.u64()?,
        })
    }
}

/// Aggregated view over all agents, returned by the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Number of registered agents.
    pub agents: u64,
    /// Total queries served (cumulative).
    pub queries: u64,
    /// Total edge-change records applied (cumulative).
    pub changes: u64,
    /// Total vertex messages processed (cumulative).
    pub vmsgs: u64,
    /// Total out-placement edges held.
    pub edges: u64,
    /// Max of agents' last superstep nanos (the straggler).
    pub max_step_nanos: u64,
    /// Total transient failures retried across agents and the driver.
    pub retries_attempted: u64,
    /// Frames dropped by an injected fault layer (0 outside chaos
    /// runs; merged in by the driver, which owns the fault handle).
    pub messages_dropped: u64,
    /// Agents declared dead and evicted by failure detection.
    pub agents_recovered: u64,
    /// Total owner-cache hits across agents.
    pub owner_cache_hits: u64,
    /// Total owner-cache misses across agents.
    pub owner_cache_misses: u64,
    /// Total scatter-kernel wall time across agents.
    pub scatter_nanos: u64,
    /// Total combine-kernel wall time across agents.
    pub combine_nanos: u64,
    /// Total apply-kernel wall time across agents.
    pub apply_nanos: u64,
}

impl ClusterMetrics {
    /// Fold one agent report into the aggregate.
    pub fn absorb(&mut self, m: &AgentMetrics) {
        self.queries += m.queries;
        self.changes += m.changes;
        self.vmsgs += m.vmsgs;
        self.edges += m.edges;
        self.max_step_nanos = self.max_step_nanos.max(m.last_step_nanos);
        self.retries_attempted += m.retries_attempted;
        self.owner_cache_hits += m.owner_cache_hits;
        self.owner_cache_misses += m.owner_cache_misses;
        self.scatter_nanos += m.scatter_nanos;
        self.combine_nanos += m.combine_nanos;
        self.apply_nanos += m.apply_nanos;
    }

    /// Fraction of owner lookups served from cache, in `[0, 1]`; 0 when
    /// no lookups happened.
    pub fn owner_cache_hit_rate(&self) -> f64 {
        let total = self.owner_cache_hits + self.owner_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.owner_cache_hits as f64 / total as f64
        }
    }

    /// Encode as a GET_METRICS reply.
    pub fn encode(&self) -> Frame {
        Frame::builder(packet::GET_METRICS)
            .u64(self.agents)
            .u64(self.queries)
            .u64(self.changes)
            .u64(self.vmsgs)
            .u64(self.edges)
            .u64(self.max_step_nanos)
            .u64(self.retries_attempted)
            .u64(self.messages_dropped)
            .u64(self.agents_recovered)
            .u64(self.owner_cache_hits)
            .u64(self.owner_cache_misses)
            .u64(self.scatter_nanos)
            .u64(self.combine_nanos)
            .u64(self.apply_nanos)
            .finish()
    }

    /// Decode a GET_METRICS reply.
    pub fn decode(frame: &Frame) -> Option<ClusterMetrics> {
        let mut r: FrameReader<'_> = frame.reader();
        Some(ClusterMetrics {
            agents: r.u64()?,
            queries: r.u64()?,
            changes: r.u64()?,
            vmsgs: r.u64()?,
            edges: r.u64()?,
            max_step_nanos: r.u64()?,
            retries_attempted: r.u64()?,
            messages_dropped: r.u64()?,
            agents_recovered: r.u64()?,
            owner_cache_hits: r.u64()?,
            owner_cache_misses: r.u64()?,
            scatter_nanos: r.u64()?,
            combine_nanos: r.u64()?,
            apply_nanos: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_metrics_roundtrip() {
        let m = AgentMetrics {
            agent: 3,
            queries: 10,
            changes: 20,
            vmsgs: 30,
            edges: 40,
            last_step_nanos: 50,
            retries_attempted: 60,
            owner_cache_hits: 70,
            owner_cache_misses: 80,
            scatter_nanos: 90,
            combine_nanos: 100,
            apply_nanos: 110,
        };
        assert_eq!(AgentMetrics::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn cluster_metrics_absorb_and_roundtrip() {
        let mut c = ClusterMetrics {
            agents: 2,
            ..Default::default()
        };
        c.absorb(&AgentMetrics {
            agent: 1,
            queries: 5,
            changes: 1,
            vmsgs: 2,
            edges: 3,
            last_step_nanos: 100,
            retries_attempted: 2,
            owner_cache_hits: 30,
            owner_cache_misses: 10,
            scatter_nanos: 7,
            combine_nanos: 8,
            apply_nanos: 9,
        });
        c.absorb(&AgentMetrics {
            agent: 2,
            queries: 7,
            changes: 0,
            vmsgs: 1,
            edges: 4,
            last_step_nanos: 60,
            retries_attempted: 1,
            owner_cache_hits: 30,
            owner_cache_misses: 10,
            scatter_nanos: 1,
            combine_nanos: 2,
            apply_nanos: 3,
        });
        c.messages_dropped = 9;
        c.agents_recovered = 1;
        assert_eq!(c.queries, 12);
        assert_eq!(c.edges, 7);
        assert_eq!(c.max_step_nanos, 100);
        assert_eq!(c.retries_attempted, 3);
        assert_eq!(c.owner_cache_hits, 60);
        assert_eq!(c.owner_cache_misses, 20);
        assert!((c.owner_cache_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!((c.scatter_nanos, c.combine_nanos, c.apply_nanos), (8, 10, 12));
        assert_eq!(ClusterMetrics::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_rejects_short_frames() {
        assert!(AgentMetrics::decode(&Frame::signal(packet::METRICS)).is_none());
        assert!(ClusterMetrics::decode(&Frame::signal(packet::GET_METRICS)).is_none());
    }
}
