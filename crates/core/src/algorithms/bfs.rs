//! Breadth-first search distances — an extension algorithm with a
//! frontier-style communication pattern (§4.3 notes studying further
//! algorithms as future work).

use super::UNREACHED;
use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Unweighted shortest hop counts from a source, following out-edges.
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    source: VertexId,
}

impl Bfs {
    /// BFS from `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }

    /// Decode a queried state: `None` = unreached.
    pub fn decode(state: u64) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }
}

impl From<Bfs> for ProgramSpec {
    fn from(b: Bfs) -> ProgramSpec {
        ProgramSpec::Bfs { source: b.source }
    }
}

impl VertexProgram for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u64 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn identity(&self) -> u64 {
        UNREACHED
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, _ctx: &VertexCtx) -> (u64, bool) {
        let new = state.min(agg.unwrap_or(UNREACHED));
        (new, new < state)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, _ctx: &VertexCtx) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }

    fn along_edge(&self, _from: VertexId, _to: VertexId, value: u64) -> u64 {
        value.saturating_add(1)
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_source_starts_active_at_zero() {
        let b = Bfs::new(4);
        let c = VertexCtx::default();
        assert_eq!(b.init(4, &c), 0);
        assert_eq!(b.init(5, &c), UNREACHED);
        assert!(b.initially_active(4));
        assert!(!b.initially_active(5));
    }

    #[test]
    fn distances_grow_by_one_per_edge() {
        let b = Bfs::new(0);
        assert_eq!(b.along_edge(1, 2, 3), 4);
        assert_eq!(b.along_edge(1, 2, UNREACHED), UNREACHED, "saturates");
    }

    #[test]
    fn unreached_vertices_do_not_scatter() {
        let b = Bfs::new(0);
        let c = VertexCtx::default();
        assert_eq!(b.scatter_out(9, UNREACHED, &c), None);
        assert_eq!(b.scatter_out(9, 2, &c), Some(2));
        assert_eq!(b.scatter_in(9, 2, &c), None, "directed BFS");
    }

    #[test]
    fn decode_distinguishes_unreached() {
        assert_eq!(Bfs::decode(5), Some(5));
        assert_eq!(Bfs::decode(UNREACHED), None);
    }
}
