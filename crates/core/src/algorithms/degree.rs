//! Out-degree readout — a one-superstep program used as a smoke test
//! and in examples: it exercises initialization, global vertex
//! counting and state broadcast without any vertex messaging.

use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Each vertex's state becomes its global out-degree.
#[derive(Debug, Clone, Copy, Default)]
pub struct Degree;

impl Degree {
    /// A degree program.
    pub fn new() -> Self {
        Degree
    }

    /// Decode a queried state.
    pub fn decode(state: u64) -> u64 {
        state
    }
}

impl From<Degree> for ProgramSpec {
    fn from(_: Degree) -> ProgramSpec {
        ProgramSpec::Degree
    }
}

impl VertexProgram for Degree {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn init(&self, _v: VertexId, ctx: &VertexCtx) -> u64 {
        ctx.out_degree
    }

    fn identity(&self) -> u64 {
        0
    }

    fn combine(&self, a: u64, _b: u64) -> u64 {
        a
    }

    fn apply(&self, _v: VertexId, _state: u64, _agg: Option<u64>, ctx: &VertexCtx) -> (u64, bool) {
        (ctx.out_degree, false)
    }

    fn scatter_out(&self, _v: VertexId, _state: u64, _ctx: &VertexCtx) -> Option<u64> {
        None
    }

    fn applies_without_messages(&self) -> bool {
        true
    }

    fn max_steps(&self) -> Option<u32> {
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_out_degree() {
        let d = Degree::new();
        let ctx = VertexCtx {
            out_degree: 7,
            ..VertexCtx::default()
        };
        assert_eq!(d.init(1, &ctx), 7);
        let (s, active) = d.apply(1, 0, None, &ctx);
        assert_eq!(s, 7);
        assert!(!active);
        assert_eq!(d.scatter_out(1, 7, &ctx), None);
        assert_eq!(d.max_steps(), Some(1));
    }
}
