//! Personalized PageRank — random walks with restart at a single
//! source, the per-user ranking variant behind the low-latency query
//! workloads the paper's autoscaling experiment emulates (§4.9 serves
//! "client PageRank vertex query rates").
//!
//! Identical message structure to PageRank; only the teleport differs:
//! restart mass (and dangling mass) returns to the source instead of
//! spreading uniformly, so ranks measure proximity to the source.

use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Personalized PageRank with restart at `source`.
#[derive(Debug, Clone, Copy)]
pub struct Ppr {
    source: VertexId,
    damping: f64,
    max_iters: u32,
}

impl Ppr {
    /// PPR from `source` with damping 0.85 and 20 iterations.
    ///
    /// # Panics
    /// Panics unless `damping ∈ [0, 1)`.
    pub fn new(source: VertexId, damping: f64) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0,1)");
        Ppr {
            source,
            damping,
            max_iters: 20,
        }
    }

    /// Set the superstep bound.
    pub fn with_max_iters(mut self, iters: u32) -> Self {
        self.max_iters = iters;
        self
    }

    /// Decode a queried state into a proximity score.
    pub fn decode(state: u64) -> f64 {
        f64::from_bits(state)
    }
}

impl From<Ppr> for ProgramSpec {
    fn from(p: Ppr) -> ProgramSpec {
        ProgramSpec::Ppr {
            source: p.source,
            damping: p.damping,
            max_iters: p.max_iters,
        }
    }
}

impl VertexProgram for Ppr {
    fn name(&self) -> &'static str {
        "ppr"
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u64 {
        if v == self.source { 1.0f64 } else { 0.0 }.to_bits()
    }

    fn identity(&self) -> u64 {
        0f64.to_bits()
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        (f64::from_bits(a) + f64::from_bits(b)).to_bits()
    }

    fn apply(&self, v: VertexId, _state: u64, agg: Option<u64>, ctx: &VertexCtx) -> (u64, bool) {
        let sum = agg.map_or(0.0, f64::from_bits);
        // Restart and dangling mass both return to the source.
        let restart = if v == self.source {
            (1.0 - self.damping) + self.damping * ctx.global
        } else {
            0.0
        };
        ((restart + self.damping * sum).to_bits(), true)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> Option<u64> {
        if ctx.out_degree == 0 {
            return None;
        }
        Some((f64::from_bits(state) / ctx.out_degree as f64).to_bits())
    }

    fn applies_without_messages(&self) -> bool {
        true
    }

    fn scatter_all(&self) -> bool {
        true
    }

    fn global_contrib(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> f64 {
        if ctx.out_degree == 0 {
            f64::from_bits(state)
        } else {
            0.0
        }
    }

    fn max_steps(&self) -> Option<u32> {
        Some(self.max_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(out_degree: u64, global: f64) -> VertexCtx {
        VertexCtx {
            out_degree,
            n_vertices: 10,
            step: 1,
            global,
            ..VertexCtx::default()
        }
    }

    #[test]
    fn mass_starts_entirely_at_source() {
        let p = Ppr::new(3, 0.85);
        assert_eq!(Ppr::decode(p.init(3, &ctx(1, 0.0))), 1.0);
        assert_eq!(Ppr::decode(p.init(4, &ctx(1, 0.0))), 0.0);
    }

    #[test]
    fn restart_and_dangling_return_to_source() {
        let p = Ppr::new(3, 0.85);
        // Non-source gets only propagated mass.
        let (s, _) = p.apply(4, 0, Some(0.2f64.to_bits()), &ctx(1, 0.5));
        assert!((f64::from_bits(s) - 0.85 * 0.2).abs() < 1e-15);
        // Source additionally receives restart + dangling mass.
        let (s, _) = p.apply(3, 0, Some(0.2f64.to_bits()), &ctx(1, 0.5));
        let want = 0.15 + 0.85 * 0.5 + 0.85 * 0.2;
        assert!((f64::from_bits(s) - want).abs() < 1e-15);
    }

    #[test]
    fn spec_roundtrip() {
        let spec: ProgramSpec = Ppr::new(9, 0.7).with_max_iters(5).into();
        let (tag, params) = spec.encode();
        let back = ProgramSpec::decode(tag, params).unwrap();
        assert_eq!(format!("{back:?}"), format!("{spec:?}"));
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        Ppr::new(0, -0.1);
    }
}
