//! Single-source shortest paths over deterministic synthetic weights.
//!
//! The paper's datasets are unweighted, so every system in this
//! workspace (including the reference Dijkstra in
//! `elga_graph::reference`) derives edge weights from the same hash
//! (`edge_weight`), keeping results comparable.

use super::UNREACHED;
use crate::program::{DeltaKind, ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::reference::edge_weight;
use elga_graph::types::VertexId;

/// Distance labels from a source over hash-derived weights in
/// `1..=16`.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// SSSP from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }

    /// Decode a queried state: `None` = unreached.
    pub fn decode(state: u64) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }
}

impl From<Sssp> for ProgramSpec {
    fn from(s: Sssp) -> ProgramSpec {
        ProgramSpec::Sssp { source: s.source }
    }
}

impl VertexProgram for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u64 {
        if v == self.source {
            0
        } else {
            UNREACHED
        }
    }

    fn identity(&self) -> u64 {
        UNREACHED
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, _ctx: &VertexCtx) -> (u64, bool) {
        let new = state.min(agg.unwrap_or(UNREACHED));
        (new, new < state)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, _ctx: &VertexCtx) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }

    fn along_edge(&self, from: VertexId, to: VertexId, value: u64) -> u64 {
        value.saturating_add(edge_weight(from, to))
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    /// Distance relaxation is a monotone fold, so insertion batches
    /// recompute incrementally via reuse + dirty activation (exactly
    /// like WCC). A deletion can lengthen shortest paths, which the
    /// monotone merge cannot revoke — deletion batches need a fresh
    /// (non-reuse) run; DESIGN.md documents the fallback.
    fn delta_kind(&self) -> DeltaKind {
        DeltaKind::Monotone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_transform_adds_hash_weight() {
        let s = Sssp::new(0);
        assert_eq!(s.along_edge(1, 2, 10), 10 + edge_weight(1, 2));
        assert_eq!(s.along_edge(1, 2, UNREACHED), UNREACHED);
    }

    #[test]
    fn relaxation_is_monotone() {
        let s = Sssp::new(0);
        let c = VertexCtx::default();
        let (d, ch) = s.apply(3, 20, Some(12), &c);
        assert_eq!((d, ch), (12, true));
        let (d, ch) = s.apply(3, 12, Some(15), &c);
        assert_eq!((d, ch), (12, false));
    }

    #[test]
    fn source_initialization() {
        let s = Sssp::new(9);
        let c = VertexCtx::default();
        assert_eq!(s.init(9, &c), 0);
        assert_eq!(s.init(1, &c), UNREACHED);
        assert!(s.initially_active(9) && !s.initially_active(1));
    }
}
