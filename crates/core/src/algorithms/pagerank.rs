//! PageRank (paper §4.3).
//!
//! "At each iteration, a vertex receives messages from each
//! in-neighbor, aggregates them with a sum, scales the value, and
//! sends its values out to its out-neighbors." Dangling mass is
//! redistributed uniformly through the directory's global reduce so
//! results match the single-threaded reference to `1e-8` (§4.3).

use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Vertex-centric PageRank.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    damping: f64,
    max_iters: u32,
    tolerance: f64,
}

impl PageRank {
    /// PageRank with the given damping factor (the paper uses 0.85)
    /// and a default bound of 20 iterations.
    pub fn new(damping: f64) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0,1)");
        PageRank {
            damping,
            max_iters: 20,
            tolerance: 0.0,
        }
    }

    /// Set the superstep bound.
    pub fn with_max_iters(mut self, iters: u32) -> Self {
        self.max_iters = iters;
        self
    }

    /// Set an early-termination tolerance: the run stops when no
    /// vertex's rank moves by more than `tol` in a superstep. Zero
    /// (default) runs all iterations, matching the paper's fixed
    /// per-iteration measurements.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Decode a queried state into a rank.
    pub fn decode(state: u64) -> f64 {
        f64::from_bits(state)
    }
}

impl From<PageRank> for ProgramSpec {
    fn from(p: PageRank) -> ProgramSpec {
        ProgramSpec::PageRank {
            damping: p.damping,
            max_iters: p.max_iters,
            tolerance: p.tolerance,
        }
    }
}

impl VertexProgram for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    /// PageRank opts out of asynchronous execution. The §3.2 waiting
    /// sets count messages without tracking *rounds*, which is exactly
    /// right for DAG-shaped dependencies (`DagLevel`: every vertex
    /// receives `in_degree` messages in total) but wrong on a cyclic
    /// graph: a fast in-neighbor's round-2 contribution can complete a
    /// waiting set before a slow in-neighbor's round-1 contribution
    /// arrives, so the apply sums two ranks from one neighbor and none
    /// from another — the iteration drifts off the power method and
    /// need never quiesce. A correct asynchronous PageRank is the
    /// delta-accumulation formulation (fold the incoming residual into
    /// the rank, scatter `d·residual/out_degree`), which needs
    /// delta-typed messages the engine's apply/scatter contract does
    /// not express yet. Until it does, PageRank always takes the
    /// barriered path; a positive tolerance still gives it early
    /// termination there (the lead stops once no vertex moves by more
    /// than `tolerance`).
    fn supports_async(&self) -> bool {
        false
    }

    fn init(&self, _v: VertexId, ctx: &VertexCtx) -> u64 {
        (1.0 / ctx.n_vertices.max(1) as f64).to_bits()
    }

    fn identity(&self) -> u64 {
        0f64.to_bits()
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        (f64::from_bits(a) + f64::from_bits(b)).to_bits()
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, ctx: &VertexCtx) -> (u64, bool) {
        let n = ctx.n_vertices.max(1) as f64;
        let sum = agg.map_or(0.0, f64::from_bits);
        // ctx.global carries the dangling mass of the previous ranks.
        let new = (1.0 - self.damping) / n + self.damping * (sum + ctx.global / n);
        let old = f64::from_bits(state);
        let changed = if self.tolerance > 0.0 {
            (new - old).abs() > self.tolerance
        } else {
            true
        };
        (new.to_bits(), changed)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> Option<u64> {
        if ctx.out_degree == 0 {
            return None;
        }
        Some((f64::from_bits(state) / ctx.out_degree as f64).to_bits())
    }

    fn applies_without_messages(&self) -> bool {
        true
    }

    fn scatter_all(&self) -> bool {
        true
    }

    fn global_contrib(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> f64 {
        if ctx.out_degree == 0 {
            f64::from_bits(state)
        } else {
            0.0
        }
    }

    fn max_steps(&self) -> Option<u32> {
        Some(self.max_iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(out_degree: u64, n: u64, global: f64) -> VertexCtx {
        VertexCtx {
            out_degree,
            n_vertices: n,
            step: 1,
            global,
            ..VertexCtx::default()
        }
    }

    #[test]
    fn init_is_uniform() {
        let pr = PageRank::new(0.85);
        assert_eq!(PageRank::decode(pr.init(3, &ctx(0, 4, 0.0))), 0.25);
    }

    #[test]
    fn combine_sums() {
        let pr = PageRank::new(0.85);
        let s = pr.combine(0.25f64.to_bits(), 0.5f64.to_bits());
        assert_eq!(f64::from_bits(s), 0.75);
        assert_eq!(f64::from_bits(pr.identity()), 0.0);
    }

    #[test]
    fn apply_matches_formula() {
        let pr = PageRank::new(0.85);
        let (new, changed) = pr.apply(
            0,
            0.1f64.to_bits(),
            Some(0.3f64.to_bits()),
            &ctx(2, 10, 0.05),
        );
        let expect = 0.15 / 10.0 + 0.85 * (0.3 + 0.05 / 10.0);
        assert!((f64::from_bits(new) - expect).abs() < 1e-15);
        assert!(changed, "zero tolerance keeps vertices active");
    }

    #[test]
    fn tolerance_deactivates_converged_vertices() {
        let pr = PageRank::new(0.85).with_tolerance(1e-3);
        let n = 1;
        // A fixed point: rank = (1-d)/n + d*sum with sum chosen so new == old.
        let old: f64 = 0.4;
        let sum: f64 = (old - 0.15) / 0.85;
        let (_, changed) = pr.apply(0, old.to_bits(), Some(sum.to_bits()), &ctx(1, n, 0.0));
        assert!(!changed);
    }

    #[test]
    fn dangling_vertices_contribute_global_mass() {
        let pr = PageRank::new(0.85);
        assert_eq!(pr.global_contrib(0, 0.2f64.to_bits(), &ctx(0, 5, 0.0)), 0.2);
        assert_eq!(pr.global_contrib(0, 0.2f64.to_bits(), &ctx(3, 5, 0.0)), 0.0);
        assert_eq!(pr.scatter_out(0, 0.2f64.to_bits(), &ctx(0, 5, 0.0)), None);
    }

    #[test]
    fn scatter_divides_by_out_degree() {
        let pr = PageRank::new(0.85);
        let share = pr
            .scatter_out(0, 0.6f64.to_bits(), &ctx(3, 5, 0.0))
            .unwrap();
        assert!((f64::from_bits(share) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn spec_conversion_keeps_parameters() {
        let spec: ProgramSpec = PageRank::new(0.9)
            .with_max_iters(7)
            .with_tolerance(0.5)
            .into();
        match spec {
            ProgramSpec::PageRank {
                damping,
                max_iters,
                tolerance,
            } => {
                assert_eq!(damping, 0.9);
                assert_eq!(max_iters, 7);
                assert_eq!(tolerance, 0.5);
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        PageRank::new(1.5);
    }

    #[test]
    fn stays_on_the_barriered_path() {
        // Waiting sets can't express rounds on cyclic graphs, so
        // PageRank declines async execution even with a tolerance (see
        // `supports_async`).
        assert!(!PageRank::new(0.85).supports_async());
        assert!(!PageRank::new(0.85).with_tolerance(1e-10).supports_async());
    }
}
