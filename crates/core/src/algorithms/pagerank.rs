//! PageRank (paper §4.3).
//!
//! "At each iteration, a vertex receives messages from each
//! in-neighbor, aggregates them with a sum, scales the value, and
//! sends its values out to its out-neighbors." Dangling mass is
//! redistributed uniformly through the directory's global reduce so
//! results match the single-threaded reference to `1e-8` (§4.3).

use crate::program::{DeltaKind, ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Vertex-centric PageRank.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    damping: f64,
    max_iters: u32,
    tolerance: f64,
}

impl PageRank {
    /// PageRank with the given damping factor (the paper uses 0.85)
    /// and a default bound of 20 iterations.
    pub fn new(damping: f64) -> Self {
        assert!((0.0..1.0).contains(&damping), "damping must be in [0,1)");
        PageRank {
            damping,
            max_iters: 20,
            tolerance: 0.0,
        }
    }

    /// Set the superstep bound.
    pub fn with_max_iters(mut self, iters: u32) -> Self {
        self.max_iters = iters;
        self
    }

    /// Set an early-termination tolerance: the run stops when no
    /// vertex's rank moves by more than `tol` in a superstep. Zero
    /// (default) runs all iterations, matching the paper's fixed
    /// per-iteration measurements.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Damping factor.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Decode a queried state into a rank.
    pub fn decode(state: u64) -> f64 {
        f64::from_bits(state)
    }
}

impl From<PageRank> for ProgramSpec {
    fn from(p: PageRank) -> ProgramSpec {
        ProgramSpec::PageRank {
            damping: p.damping,
            max_iters: p.max_iters,
            tolerance: p.tolerance,
        }
    }
}

impl VertexProgram for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    /// PageRank is async-legal through its *residual* delta
    /// formulation (and only through it): residual pushes accumulate
    /// commutatively — the apply is an f64 add of `d·delta/out_degree`
    /// shares — so event-driven processing needs no notion of rounds.
    /// The classic message formulation stays barriered (waiting sets
    /// count messages without tracking rounds, which drifts off the
    /// power method on cycles; see PR 5); the engine routes async
    /// PageRank through the delta path automatically. A tolerance is
    /// required for the pushes to quiesce, so the zero-tolerance
    /// configuration still declines async and the run is downgraded to
    /// the barriered path.
    fn supports_async(&self) -> bool {
        self.tolerance > 0.0
    }

    fn init(&self, _v: VertexId, ctx: &VertexCtx) -> u64 {
        (1.0 / ctx.n_vertices.max(1) as f64).to_bits()
    }

    fn identity(&self) -> u64 {
        0f64.to_bits()
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        (f64::from_bits(a) + f64::from_bits(b)).to_bits()
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, ctx: &VertexCtx) -> (u64, bool) {
        let n = ctx.n_vertices.max(1) as f64;
        let sum = agg.map_or(0.0, f64::from_bits);
        // ctx.global carries the dangling mass of the previous ranks.
        let new = (1.0 - self.damping) / n + self.damping * (sum + ctx.global / n);
        let old = f64::from_bits(state);
        let changed = if self.tolerance > 0.0 {
            (new - old).abs() > self.tolerance
        } else {
            true
        };
        (new.to_bits(), changed)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> Option<u64> {
        if ctx.out_degree == 0 {
            return None;
        }
        Some((f64::from_bits(state) / ctx.out_degree as f64).to_bits())
    }

    fn applies_without_messages(&self) -> bool {
        true
    }

    fn scatter_all(&self) -> bool {
        true
    }

    fn global_contrib(&self, _v: VertexId, state: u64, ctx: &VertexCtx) -> f64 {
        if ctx.out_degree == 0 {
            f64::from_bits(state)
        } else {
            0.0
        }
    }

    fn max_steps(&self) -> Option<u32> {
        Some(self.max_iters)
    }

    // --- Residual (delta) formulation --------------------------------
    //
    // Next to each vertex's applied rank `p` the engine keeps a
    // residual `r` of not-yet-applied probability mass, maintaining the
    // invariant  r_v = (1-d)/n + d·Σ_{u→v} p_u/D_u − p_v  for the
    // dangling-mass-free linear system. A fold moves `r` into `p` and
    // pushes `d·r/D_v` along each out-edge; below-tolerance residuals
    // simply wait for the next batch. Edge changes convert into
    // residual corrections at ingest time (`rescale_on_degree_change`
    // + `edge_change_residual`): the per-edge share `p/D` is invariant
    // under the degree rescaling, so stale replica copies of `(p, D)`
    // still compute exact corrections. Dangling mass redistributes
    // through the `dangling_*` hooks: agents track the change in
    // dangling-held rank (folds at sinks, rescales at ingest) and each
    // reported change `ΔS` lands back as a `d·ΔS/n` residual at every
    // vertex, so the delta fixpoint matches the full recompute's
    // `p = (1-d)/n + d(Σ p/D + S/n)` on graphs with sinks too.

    fn delta_kind(&self) -> DeltaKind {
        if self.tolerance > 0.0 {
            DeltaKind::Residual
        } else {
            DeltaKind::None
        }
    }

    /// Fresh vertices start at zero rank with the whole teleport term
    /// pending as residual.
    fn delta_init(&self, _v: VertexId, ctx: &VertexCtx) -> (u64, u64) {
        let n = ctx.n_vertices.max(1) as f64;
        (0f64.to_bits(), ((1.0 - self.damping) / n).to_bits())
    }

    fn fold_residual(
        &self,
        _v: VertexId,
        state: u64,
        residual: u64,
        _ctx: &VertexCtx,
    ) -> Option<(u64, u64)> {
        let r = f64::from_bits(residual);
        if r.abs() <= self.tolerance {
            return None;
        }
        let p = f64::from_bits(state);
        Some(((p + r).to_bits(), residual))
    }

    fn scatter_delta(&self, _v: VertexId, _state: u64, delta: u64, ctx: &VertexCtx) -> Option<u64> {
        if ctx.out_degree == 0 {
            return None;
        }
        let d = f64::from_bits(delta);
        if d == 0.0 {
            return None;
        }
        Some((self.damping * d / ctx.out_degree as f64).to_bits())
    }

    /// Ohsaka-style scaling: rescale `p` so the per-edge share `p/D`
    /// is unchanged for surviving edges, compensating in the residual.
    /// A previously dangling vertex (`d0 == 0`) can't scale from a
    /// zero denominator; its whole rank moves back into the residual
    /// and redistributes through the next fold.
    fn rescale_on_degree_change(&self, state: u64, d0: u64, d1: u64) -> Option<(u64, u64)> {
        if d0 == d1 {
            return None;
        }
        let p0 = f64::from_bits(state);
        if d0 == 0 {
            return Some((0f64.to_bits(), p0.to_bits()));
        }
        let p1 = p0 * d1 as f64 / d0 as f64;
        Some((p1.to_bits(), (p0 - p1).to_bits()))
    }

    /// An inserted edge `(u, w)` owes `w` the share `d·p_u/D_u`; a
    /// deleted edge takes it back. `share_degree` is `u`'s pre-batch
    /// out-degree as last broadcast — zero means `u` was dangling, in
    /// which case the rescale above already routed its mass.
    fn edge_change_residual(
        &self,
        _u: VertexId,
        state: u64,
        share_degree: u64,
        insert: bool,
    ) -> Option<u64> {
        if share_degree == 0 {
            return None;
        }
        let share = self.damping * f64::from_bits(state) / share_degree as f64;
        if share == 0.0 {
            return None;
        }
        Some(if insert { share } else { -share }.to_bits())
    }

    /// The teleport term is `(1-d)/n`; when the vertex count moved
    /// between runs every vertex's residual shifts by the difference.
    fn reseed_residual(&self, old_n: u64, ctx: &VertexCtx) -> Option<u64> {
        let n1 = ctx.n_vertices.max(1);
        if old_n == 0 || old_n == n1 {
            return None;
        }
        let adj = (1.0 - self.damping) * (1.0 / n1 as f64 - 1.0 / old_n as f64);
        Some(adj.to_bits())
    }

    /// A sink holds its whole rank as dangling mass.
    fn dangling_mass(&self, state: u64, out_degree: u64) -> f64 {
        if out_degree == 0 {
            f64::from_bits(state)
        } else {
            0.0
        }
    }

    /// A reported dangling change `ΔS` (in `ctx.global`) owes every
    /// vertex the uniform share `d·ΔS/n` — the delta of the full
    /// formulation's `d·S/n` term.
    fn dangling_residual(&self, ctx: &VertexCtx) -> Option<u64> {
        if ctx.global == 0.0 {
            return None;
        }
        Some((self.damping * ctx.global / ctx.n_vertices.max(1) as f64).to_bits())
    }

    fn dangling_epsilon(&self) -> f64 {
        self.tolerance
    }

    /// A vertex appearing mid-history never absorbed the baked-in
    /// `d·S/n` dangling term its peers carry in their converged ranks;
    /// seed it the equivalent `d·base` so both cohorts sit on the same
    /// fixpoint. (The lead's step-0 rebase shift only corrects vertices
    /// that already hold the old term.)
    fn dangling_seed_residual(&self, base: f64, _ctx: &VertexCtx) -> Option<u64> {
        if base == 0.0 {
            return None;
        }
        Some((self.damping * base).to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(out_degree: u64, n: u64, global: f64) -> VertexCtx {
        VertexCtx {
            out_degree,
            n_vertices: n,
            step: 1,
            global,
            ..VertexCtx::default()
        }
    }

    #[test]
    fn init_is_uniform() {
        let pr = PageRank::new(0.85);
        assert_eq!(PageRank::decode(pr.init(3, &ctx(0, 4, 0.0))), 0.25);
    }

    #[test]
    fn combine_sums() {
        let pr = PageRank::new(0.85);
        let s = pr.combine(0.25f64.to_bits(), 0.5f64.to_bits());
        assert_eq!(f64::from_bits(s), 0.75);
        assert_eq!(f64::from_bits(pr.identity()), 0.0);
    }

    #[test]
    fn apply_matches_formula() {
        let pr = PageRank::new(0.85);
        let (new, changed) = pr.apply(
            0,
            0.1f64.to_bits(),
            Some(0.3f64.to_bits()),
            &ctx(2, 10, 0.05),
        );
        let expect = 0.15 / 10.0 + 0.85 * (0.3 + 0.05 / 10.0);
        assert!((f64::from_bits(new) - expect).abs() < 1e-15);
        assert!(changed, "zero tolerance keeps vertices active");
    }

    #[test]
    fn tolerance_deactivates_converged_vertices() {
        let pr = PageRank::new(0.85).with_tolerance(1e-3);
        let n = 1;
        // A fixed point: rank = (1-d)/n + d*sum with sum chosen so new == old.
        let old: f64 = 0.4;
        let sum: f64 = (old - 0.15) / 0.85;
        let (_, changed) = pr.apply(0, old.to_bits(), Some(sum.to_bits()), &ctx(1, n, 0.0));
        assert!(!changed);
    }

    #[test]
    fn dangling_vertices_contribute_global_mass() {
        let pr = PageRank::new(0.85);
        assert_eq!(pr.global_contrib(0, 0.2f64.to_bits(), &ctx(0, 5, 0.0)), 0.2);
        assert_eq!(pr.global_contrib(0, 0.2f64.to_bits(), &ctx(3, 5, 0.0)), 0.0);
        assert_eq!(pr.scatter_out(0, 0.2f64.to_bits(), &ctx(0, 5, 0.0)), None);
    }

    #[test]
    fn scatter_divides_by_out_degree() {
        let pr = PageRank::new(0.85);
        let share = pr
            .scatter_out(0, 0.6f64.to_bits(), &ctx(3, 5, 0.0))
            .unwrap();
        assert!((f64::from_bits(share) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn spec_conversion_keeps_parameters() {
        let spec: ProgramSpec = PageRank::new(0.9)
            .with_max_iters(7)
            .with_tolerance(0.5)
            .into();
        match spec {
            ProgramSpec::PageRank {
                damping,
                max_iters,
                tolerance,
            } => {
                assert_eq!(damping, 0.9);
                assert_eq!(max_iters, 7);
                assert_eq!(tolerance, 0.5);
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn invalid_damping_rejected() {
        PageRank::new(1.5);
    }

    #[test]
    fn async_requires_a_tolerance() {
        // The residual formulation makes PageRank async-legal, but the
        // pushes only quiesce with a positive tolerance; the classic
        // zero-tolerance configuration stays on the barriered path.
        assert!(!PageRank::new(0.85).supports_async());
        assert_eq!(PageRank::new(0.85).delta_kind(), DeltaKind::None);
        let pr = PageRank::new(0.85).with_tolerance(1e-10);
        assert!(pr.supports_async());
        assert_eq!(pr.delta_kind(), DeltaKind::Residual);
    }

    #[test]
    fn fold_respects_tolerance_and_moves_mass() {
        let pr = PageRank::new(0.85).with_tolerance(1e-3);
        let c = ctx(2, 10, 0.0);
        assert!(pr
            .fold_residual(0, 0.2f64.to_bits(), 1e-4f64.to_bits(), &c)
            .is_none());
        let (state, delta) = pr
            .fold_residual(0, 0.2f64.to_bits(), 0.05f64.to_bits(), &c)
            .expect("above tolerance");
        assert!((f64::from_bits(state) - 0.25).abs() < 1e-15);
        assert_eq!(f64::from_bits(delta), 0.05);
        // The frontier push divides the damped delta by out-degree.
        let share = pr.scatter_delta(0, state, delta, &c).unwrap();
        assert!((f64::from_bits(share) - 0.85 * 0.05 / 2.0).abs() < 1e-15);
        assert_eq!(pr.scatter_delta(0, state, delta, &ctx(0, 10, 0.0)), None);
    }

    #[test]
    fn rescale_keeps_the_per_edge_share_invariant() {
        let pr = PageRank::new(0.85).with_tolerance(1e-9);
        // Degree 4 -> 5: p scales by 5/4, share p/D unchanged, and the
        // residual absorbs the difference so total mass is conserved.
        let (p1, radj) = pr.rescale_on_degree_change(0.4f64.to_bits(), 4, 5).unwrap();
        assert!((f64::from_bits(p1) - 0.5).abs() < 1e-15);
        assert!((f64::from_bits(p1) / 5.0 - 0.4 / 4.0).abs() < 1e-15);
        assert!((f64::from_bits(radj) - (0.4 - 0.5)).abs() < 1e-15);
        // A previously dangling vertex moves its whole rank back into
        // the residual.
        let (p1, radj) = pr.rescale_on_degree_change(0.3f64.to_bits(), 0, 2).unwrap();
        assert_eq!(f64::from_bits(p1), 0.0);
        assert_eq!(f64::from_bits(radj), 0.3);
        assert!(pr
            .rescale_on_degree_change(0.3f64.to_bits(), 3, 3)
            .is_none());
    }

    #[test]
    fn edge_change_residual_is_the_signed_share() {
        let pr = PageRank::new(0.85).with_tolerance(1e-9);
        let ins = pr
            .edge_change_residual(1, 0.4f64.to_bits(), 4, true)
            .unwrap();
        assert!((f64::from_bits(ins) - 0.85 * 0.1).abs() < 1e-15);
        let del = pr
            .edge_change_residual(1, 0.4f64.to_bits(), 4, false)
            .unwrap();
        assert!((f64::from_bits(del) + 0.85 * 0.1).abs() < 1e-15);
        // Dangling source: nothing to push, the rescale handles it.
        assert!(pr
            .edge_change_residual(1, 0.4f64.to_bits(), 0, true)
            .is_none());
    }

    #[test]
    fn reseed_shifts_the_teleport_term() {
        let pr = PageRank::new(0.85).with_tolerance(1e-9);
        let c = ctx(1, 20, 0.0);
        assert!(pr.reseed_residual(20, &c).is_none());
        assert!(pr.reseed_residual(0, &c).is_none());
        let adj = f64::from_bits(pr.reseed_residual(10, &c).unwrap());
        assert!((adj - 0.15 * (1.0 / 20.0 - 1.0 / 10.0)).abs() < 1e-15);
    }
}
