//! Weakly connected components (paper §4.3).
//!
//! "A vertex aggregates and sends with a minimum instead of a sum and
//! only sends updated minimums, but to both in- and out-neighbors. In
//! the static case, WCC initializes each vertex to a unique
//! identifier." Min-propagation is monotone, so WCC also supports
//! ElGA's asynchronous mode and the incremental (insertion) case the
//! paper measures in Figures 13 and 15.

use crate::program::{DeltaKind, ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Vertex-centric WCC: labels converge to the minimum vertex id in
/// each weakly connected component.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wcc;

impl Wcc {
    /// A WCC program.
    pub fn new() -> Self {
        Wcc
    }

    /// Decode a queried state into a component label.
    pub fn decode(state: u64) -> VertexId {
        state
    }
}

impl From<Wcc> for ProgramSpec {
    fn from(_: Wcc) -> ProgramSpec {
        ProgramSpec::Wcc
    }
}

impl VertexProgram for Wcc {
    fn name(&self) -> &'static str {
        "wcc"
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn init(&self, v: VertexId, _ctx: &VertexCtx) -> u64 {
        v
    }

    fn identity(&self) -> u64 {
        u64::MAX
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, _ctx: &VertexCtx) -> (u64, bool) {
        let new = state.min(agg.unwrap_or(u64::MAX));
        (new, new < state)
    }

    fn scatter_out(&self, _v: VertexId, state: u64, _ctx: &VertexCtx) -> Option<u64> {
        Some(state)
    }

    fn scatter_in(&self, _v: VertexId, state: u64, _ctx: &VertexCtx) -> Option<u64> {
        Some(state)
    }

    /// Min-propagation is a monotone fold: a reuse-state run after a
    /// batch of insertions is exact with dirty-vertex activation (the
    /// touched endpoints re-scatter their labels and the frontier
    /// expands only where the minimum improves). Deletions can raise a
    /// label, which monotone merging cannot express — the driver
    /// resets the affected label class (`Cluster::reset_labels`)
    /// before the incremental run.
    fn delta_kind(&self) -> DeltaKind {
        DeltaKind::Monotone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_own_id() {
        let c = VertexCtx::default();
        assert_eq!(Wcc::new().init(17, &c), 17);
    }

    #[test]
    fn apply_takes_minimum_and_tracks_change() {
        let w = Wcc::new();
        let c = VertexCtx::default();
        let (s, changed) = w.apply(5, 5, Some(3), &c);
        assert_eq!(s, 3);
        assert!(changed);
        let (s, changed) = w.apply(5, 3, Some(4), &c);
        assert_eq!(s, 3);
        assert!(!changed, "no improvement means inactive");
        let (s, changed) = w.apply(5, 3, None, &c);
        assert_eq!(s, 3);
        assert!(!changed);
    }

    #[test]
    fn scatters_both_directions() {
        let w = Wcc::new();
        let c = VertexCtx::default();
        assert_eq!(w.scatter_out(1, 9, &c), Some(9));
        assert_eq!(w.scatter_in(1, 9, &c), Some(9));
        assert!(!w.scatter_all(), "WCC only sends updated minimums");
    }

    #[test]
    fn async_capable_min_monoid() {
        let w = Wcc::new();
        assert!(w.supports_async());
        assert_eq!(w.combine(7, w.identity()), 7);
        assert_eq!(w.combine(w.combine(3, 9), 5), w.combine(3, w.combine(9, 5)));
    }
}
