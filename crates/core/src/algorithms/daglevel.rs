//! DAG levels (longest path from any source) — the algorithm that
//! exercises ElGA's §3.2 *waiting sets* in asynchronous mode.
//!
//! A vertex's level is `0` for sources and `1 + max(level of
//! in-neighbors)` otherwise, so a vertex cannot be processed until
//! *all* of its in-neighbors have reported: it "places itself in the
//! waiting set" for exactly `in_degree` messages and is applied once
//! they have all arrived. On a DAG every vertex is processed exactly
//! once; on a cyclic input the vertices on and downstream of cycles
//! never satisfy their waiting sets and finish the run unleveled
//! (queryable as [`DagLevel::decode`] → `None`) — the run still
//! terminates because the global message counts settle.

use super::UNREACHED;
use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use elga_graph::types::VertexId;

/// Longest-path levels over a DAG via waiting sets (async mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct DagLevel;

impl DagLevel {
    /// A DAG-level program.
    pub fn new() -> Self {
        DagLevel
    }

    /// Decode a queried state: `None` = not leveled (downstream of a
    /// cycle, or unprocessed).
    pub fn decode(state: u64) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }
}

impl From<DagLevel> for ProgramSpec {
    fn from(_: DagLevel) -> ProgramSpec {
        ProgramSpec::DagLevel
    }
}

impl VertexProgram for DagLevel {
    fn name(&self) -> &'static str {
        "dag-level"
    }

    fn supports_async(&self) -> bool {
        true
    }

    fn init(&self, _v: VertexId, ctx: &VertexCtx) -> u64 {
        if ctx.in_degree == 0 {
            0
        } else {
            UNREACHED
        }
    }

    fn identity(&self) -> u64 {
        0
    }

    /// Maximum over predecessor levels (each already incremented by
    /// [`DagLevel::along_edge`]).
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.max(b)
    }

    fn apply(&self, _v: VertexId, state: u64, agg: Option<u64>, _ctx: &VertexCtx) -> (u64, bool) {
        match agg {
            Some(level) => (level, true),
            None => (state, false),
        }
    }

    fn scatter_out(&self, _v: VertexId, state: u64, _ctx: &VertexCtx) -> Option<u64> {
        (state != UNREACHED).then_some(state)
    }

    fn along_edge(&self, _from: VertexId, _to: VertexId, value: u64) -> u64 {
        value.saturating_add(1)
    }

    fn initially_active_ctx(&self, _v: VertexId, ctx: &VertexCtx) -> bool {
        // Only sources fire; everyone else waits on predecessors.
        ctx.in_degree == 0
    }

    fn waits_for(&self, _v: VertexId, ctx: &VertexCtx) -> u64 {
        ctx.in_degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_start_at_zero_and_active() {
        let d = DagLevel::new();
        let source = VertexCtx {
            in_degree: 0,
            ..VertexCtx::default()
        };
        let inner = VertexCtx {
            in_degree: 3,
            ..VertexCtx::default()
        };
        assert_eq!(d.init(5, &source), 0);
        assert_eq!(d.init(5, &inner), UNREACHED);
        assert!(d.initially_active_ctx(5, &source));
        assert!(!d.initially_active_ctx(5, &inner));
        assert_eq!(d.waits_for(5, &inner), 3);
    }

    #[test]
    fn level_is_max_over_incremented_predecessors() {
        let d = DagLevel::new();
        let c = VertexCtx::default();
        // Two predecessors at levels 2 and 5 → messages 3 and 6.
        let m1 = d.along_edge(1, 9, 2);
        let m2 = d.along_edge(2, 9, 5);
        let agg = d.combine(m1, m2);
        let (level, active) = d.apply(9, UNREACHED, Some(agg), &c);
        assert_eq!(level, 6);
        assert!(active);
    }

    #[test]
    fn unleveled_vertices_do_not_scatter() {
        let d = DagLevel::new();
        let c = VertexCtx::default();
        assert_eq!(d.scatter_out(1, UNREACHED, &c), None);
        assert_eq!(d.scatter_out(1, 4, &c), Some(4));
        assert_eq!(DagLevel::decode(UNREACHED), None);
        assert_eq!(DagLevel::decode(7), Some(7));
    }
}
