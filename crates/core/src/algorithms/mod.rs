//! Built-in vertex-centric algorithms.
//!
//! PageRank and weakly connected components are the two algorithms the
//! paper evaluates ("two iterative vertex-centric algorithms commonly
//! used in distributed graph system benchmarks", §4.3); BFS, SSSP and
//! Degree exercise additional communication patterns (§4.3's suggested
//! future work).

mod bfs;
mod daglevel;
mod degree;
mod pagerank;
mod ppr;
mod sssp;
mod wcc;

pub use bfs::Bfs;
pub use daglevel::DagLevel;
pub use degree::Degree;
pub use pagerank::PageRank;
pub use ppr::Ppr;
pub use sssp::Sssp;
pub use wcc::Wcc;

/// Sentinel for "unreached / no label yet" in min-propagation
/// programs.
pub const UNREACHED: u64 = u64::MAX;
