//! Sharded vertex storage for intra-agent parallelism.
//!
//! The paper's Agents saturate their cores during supersteps (§4,
//! Figs 10–14); ours ran every phase on one thread over a single flat
//! map. [`VertexStore`] splits the map into a *fixed* number of shards
//! keyed by `wang64(v)`, so the scatter / combine / apply kernels can
//! hand disjoint shard ranges to a scoped worker pool.
//!
//! The shard count is deliberately independent of the worker count:
//! kernels process shards in index order and merge per-shard output in
//! index order, so the bytes that leave the agent are identical no
//! matter how many workers ran — the property the determinism tests
//! pin down.
//!
//! Each shard also carries a *partial dirty list*: vertices whose
//! `has_partial` flipped on since the last combine. `phase_combine`
//! then touches only vertices that actually received messages instead
//! of scanning the whole map.

use crate::agent::VertexEntry;
use elga_graph::types::VertexId;
use elga_hash::{wang64, FxHashMap};

/// log2 of the shard count.
const SHARD_BITS: u32 = 5;
/// Fixed shard count. A power of two well above any sensible worker
/// count, small enough that per-shard scratch stays cheap.
pub(crate) const SHARDS: usize = 1 << SHARD_BITS;

/// Shard index of a vertex. Uses `wang64` (not the raw id) so dense
/// vertex ranges spread evenly.
#[inline]
pub(crate) fn shard_of(v: VertexId) -> usize {
    (wang64(v) as usize) & (SHARDS - 1)
}

/// One shard: a slice of the vertex map plus its combine dirty list.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub map: FxHashMap<VertexId, VertexEntry>,
    /// Vertices in this shard with `has_partial` set. Pushed exactly
    /// once per flip (guarded by the `has_partial` transition), drained
    /// and sorted by `phase_combine`.
    pub partial_dirty: Vec<VertexId>,
}

/// The agent's vertex map, split into [`SHARDS`] fixed shards.
#[derive(Debug)]
pub(crate) struct VertexStore {
    shards: Vec<Shard>,
    len: usize,
}

impl Default for VertexStore {
    fn default() -> Self {
        VertexStore {
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            len: 0,
        }
    }
}

impl VertexStore {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn get(&self, v: &VertexId) -> Option<&VertexEntry> {
        self.shards[shard_of(*v)].map.get(v)
    }

    pub fn get_mut(&mut self, v: &VertexId) -> Option<&mut VertexEntry> {
        self.shards[shard_of(*v)].map.get_mut(v)
    }

    pub fn contains_key(&self, v: &VertexId) -> bool {
        self.shards[shard_of(*v)].map.contains_key(v)
    }

    /// Entry-or-default, as `FxHashMap::entry(v).or_default()`.
    pub fn entry_or_default(&mut self, v: VertexId) -> &mut VertexEntry {
        let idx = shard_of(v);
        if !self.shards[idx].map.contains_key(&v) {
            self.len += 1;
        }
        self.shards[idx].map.entry(v).or_default()
    }

    /// Entry-or-default plus the shard's partial dirty list, for
    /// handlers that flip `has_partial` and must record the flip.
    pub fn entry_and_dirty(&mut self, v: VertexId) -> (&mut VertexEntry, &mut Vec<VertexId>) {
        let idx = shard_of(v);
        if !self.shards[idx].map.contains_key(&v) {
            self.len += 1;
        }
        let shard = &mut self.shards[idx];
        (shard.map.entry(v).or_default(), &mut shard.partial_dirty)
    }

    pub fn remove(&mut self, v: &VertexId) -> Option<VertexEntry> {
        let removed = self.shards[shard_of(*v)].map.remove(v);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.map.clear();
            s.partial_dirty.clear();
        }
        self.len = 0;
    }

    /// Drop all combine dirty lists (run start / recovery reset the
    /// `has_partial` flags they mirror).
    pub fn clear_partial_dirty(&mut self) {
        for s in &mut self.shards {
            s.partial_dirty.clear();
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&VertexId, &VertexEntry)> {
        self.shards.iter().flat_map(|s| s.map.iter())
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&VertexId, &mut VertexEntry)> {
        self.shards.iter_mut().flat_map(|s| s.map.iter_mut())
    }

    pub fn keys(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.shards.iter().flat_map(|s| s.map.keys().copied())
    }

    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut VertexEntry> {
        self.shards.iter_mut().flat_map(|s| s.map.values_mut())
    }

    /// The shards themselves, in index order, for the parallel kernels.
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for v in 0..10_000u64 {
            let s = shard_of(v);
            assert!(s < SHARDS);
            assert_eq!(s, shard_of(v));
        }
    }

    #[test]
    fn vertices_land_in_their_shard() {
        let mut store = VertexStore::default();
        for v in 0..500u64 {
            store.entry_or_default(v).out.push(v + 1);
        }
        assert_eq!(store.len(), 500);
        for v in 0..500u64 {
            assert!(store.shards_mut()[shard_of(v)].map.contains_key(&v));
            assert_eq!(store.get(&v).unwrap().out, vec![v + 1]);
        }
        // Every vertex appears exactly once across shards.
        assert_eq!(store.iter().count(), 500);
    }

    #[test]
    fn len_tracks_inserts_and_removes() {
        let mut store = VertexStore::default();
        store.entry_or_default(1);
        store.entry_or_default(2);
        store.entry_or_default(1); // existing: no double count
        assert_eq!(store.len(), 2);
        assert!(store.remove(&1).is_some());
        assert!(store.remove(&1).is_none());
        assert_eq!(store.len(), 1);
        store.clear();
        assert_eq!(store.len(), 0);
        assert!(!store.contains_key(&2));
    }

    #[test]
    fn dirty_list_lives_with_the_entry_shard() {
        let mut store = VertexStore::default();
        let (e, dirty) = store.entry_and_dirty(77);
        e.has_partial = true;
        dirty.push(77);
        assert_eq!(store.shards_mut()[shard_of(77)].partial_dirty, vec![77]);
        store.clear_partial_dirty();
        assert!(store.shards_mut()[shard_of(77)].partial_dirty.is_empty());
    }
}
