//! The locally persistent vertex-centric programming model (paper
//! §3.2).
//!
//! Programs run "from the perspective of a vertex": they hold per-
//! vertex state, receive aggregated messages from neighbors, and send
//! messages along edges. ElGA executes them either synchronously
//! (bulk-synchronous supersteps coordinated through the directory,
//! Figure 2) or asynchronously (vertices are processed the moment all
//! outstanding updates arrive).
//!
//! State, messages and aggregates are all encoded as `u64` words —
//! every algorithm the paper evaluates (PageRank, WCC) and the
//! extension algorithms (BFS, SSSP, degree) carry one scalar per
//! vertex, and a fixed-width encoding keeps agents monomorphic and the
//! wire format copy-through (§3.5). `f64` state (PageRank) is stored
//! via `to_bits`/`from_bits`.

use elga_graph::types::VertexId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Synchronous (BSP) or asynchronous execution (§2.1, §3.4: "In ElGA's
/// asynchronous mode, vertices are individually processed when they no
/// longer have any outstanding updates").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Bulk-synchronous supersteps with directory barriers.
    #[default]
    Sync,
    /// Event-driven processing; requires a monotone (idempotent,
    /// commutative) program such as WCC/BFS/SSSP.
    Async,
}

/// Per-vertex execution context.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexCtx {
    /// The vertex's *global* out-degree (summed over replicas,
    /// maintained by its primary).
    pub out_degree: u64,
    /// The vertex's global in-degree. Authoritative at the primary
    /// (apply/init); zero in replica-side scatter contexts.
    pub in_degree: u64,
    /// Current global vertex count.
    pub n_vertices: u64,
    /// Current superstep (0 = initialization).
    pub step: u32,
    /// Global reduce value from the current step's reports (e.g.
    /// PageRank's dangling mass).
    pub global: f64,
}

/// A vertex-centric program. All values are `u64`-encoded.
pub trait VertexProgram: Send + Sync {
    /// Program name (diagnostics).
    fn name(&self) -> &'static str;

    /// Whether the program tolerates asynchronous execution.
    fn supports_async(&self) -> bool {
        false
    }

    /// Initial state of vertex `v`.
    fn init(&self, v: VertexId, ctx: &VertexCtx) -> u64;

    /// Identity element of [`VertexProgram::combine`].
    fn identity(&self) -> u64;

    /// Commutative, associative combination of two message values.
    fn combine(&self, a: u64, b: u64) -> u64;

    /// Compute the new state from the old state and the aggregate of
    /// this step's messages (`None` when no messages arrived). Returns
    /// `(new_state, changed)`; `changed` keeps the vertex active.
    fn apply(&self, v: VertexId, state: u64, agg: Option<u64>, ctx: &VertexCtx) -> (u64, bool);

    /// Value sent along each out-edge of an active vertex, or `None`
    /// to send nothing.
    fn scatter_out(&self, v: VertexId, state: u64, ctx: &VertexCtx) -> Option<u64>;

    /// Value sent along each *in*-edge (reverse direction); WCC sends
    /// "to both in- and out-neighbors" (§4.3).
    fn scatter_in(&self, _v: VertexId, _state: u64, _ctx: &VertexCtx) -> Option<u64> {
        None
    }

    /// Per-edge transform of a scattered value (e.g. SSSP adds the
    /// edge weight).
    fn along_edge(&self, _from: VertexId, _to: VertexId, value: u64) -> u64 {
        value
    }

    /// When true, every vertex applies each superstep even without
    /// incoming messages (PageRank); otherwise only message receivers
    /// apply (WCC/BFS).
    fn applies_without_messages(&self) -> bool {
        false
    }

    /// Whether `v` starts active on a fresh (non-incremental) run.
    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    /// Degree-aware variant of [`VertexProgram::initially_active`],
    /// evaluated at the primary with authoritative degrees. Defaults to
    /// the degree-blind answer.
    fn initially_active_ctx(&self, v: VertexId, _ctx: &VertexCtx) -> bool {
        self.initially_active(v)
    }

    /// §3.2 waiting sets, asynchronous mode only: the number of
    /// neighbor messages `v` must collect before it is processed ("it
    /// places itself in the waiting set for that vertex ... When a
    /// vertex is no longer waiting on any messages, it enters an
    /// active state and can be processed again"). Zero (default)
    /// processes on every message. Ignored in synchronous mode, where
    /// the superstep barrier already delivers all messages at once.
    fn waits_for(&self, _v: VertexId, _ctx: &VertexCtx) -> u64 {
        0
    }

    /// Per-vertex contribution to the global reduce, evaluated at
    /// scatter time (e.g. PageRank dangling mass).
    fn global_contrib(&self, _v: VertexId, _state: u64, _ctx: &VertexCtx) -> f64 {
        0.0
    }

    /// When true, *every* vertex scatters each superstep regardless of
    /// its active flag. Sum-aggregating programs (PageRank) need this:
    /// an apply must see contributions from all in-neighbors, not only
    /// the recently changed ones. Min-propagating programs leave it
    /// false and scatter only updated values (§4.3: WCC "only sends
    /// updated minimums").
    fn scatter_all(&self) -> bool {
        false
    }

    /// Superstep bound; `None` runs to convergence (empty active set).
    fn max_steps(&self) -> Option<u32> {
        None
    }

    // --- Incremental (delta) formulation -----------------------------
    //
    // A program may declare how it recomputes *incrementally* after a
    // batch of edge changes, instead of re-executing over the whole
    // graph. Two strategies exist (see DESIGN.md "Incremental
    // execution"):
    //
    // * [`DeltaKind::Monotone`] — the fixpoint is a monotone fold
    //   (min/max) of `combine`, so reuse-state runs are already exact:
    //   vertices touched by the batch re-scatter their values and the
    //   frontier expands only where the fold improves (WCC, SSSP
    //   insertions).
    // * [`DeltaKind::Residual`] — the program keeps, next to each
    //   vertex's applied state, a *residual* of not-yet-applied mass.
    //   Edge changes convert into residual corrections at ingest time;
    //   a delta run folds residuals above tolerance into state and
    //   pushes `scatter_delta` values only along the affected frontier
    //   (delta-PageRank).

    /// The program's incremental strategy. [`DeltaKind::None`] means a
    /// reuse-state run falls back to the dirty-vertex activation path.
    fn delta_kind(&self) -> DeltaKind {
        DeltaKind::None
    }

    /// Fresh-vertex initialization on a *residual* delta run:
    /// `(state, residual)`. The default starts from `init` with no
    /// pending residual.
    fn delta_init(&self, v: VertexId, ctx: &VertexCtx) -> (u64, u64) {
        (self.init(v, ctx), self.residual_identity())
    }

    /// Seed residual owed to a vertex that first appears in a delta
    /// run. `base` is the per-vertex dangling term already baked into
    /// every carried state (total dangling mass over vertex count at
    /// the previous convergence, from
    /// [`RunInfo::dangling_base`](crate::msg::RunInfo)); pre-existing
    /// vertices hold it in their state, so a newcomer must receive the
    /// equivalent mass as a residual or it converges short of the
    /// rebuilt fixpoint.
    fn dangling_seed_residual(&self, _base: f64, _ctx: &VertexCtx) -> Option<u64> {
        None
    }

    /// Identity element of [`VertexProgram::merge_residual`].
    fn residual_identity(&self) -> u64 {
        self.identity()
    }

    /// Commutative, associative merge of two residual values.
    fn merge_residual(&self, a: u64, b: u64) -> u64 {
        self.combine(a, b)
    }

    /// Decide whether the accumulated residual is significant enough
    /// to fold into the state: `Some((new_state, applied_delta))`
    /// applies and activates the vertex, `None` keeps accumulating.
    fn fold_residual(
        &self,
        _v: VertexId,
        _state: u64,
        _residual: u64,
        _ctx: &VertexCtx,
    ) -> Option<(u64, u64)> {
        None
    }

    /// Value sent along each out-edge after a fold applied `delta`
    /// (the frontier push of a residual run). Defaults to the full
    /// re-scatter, which is what monotone programs want (their delta
    /// *is* the new state).
    fn scatter_delta(&self, v: VertexId, state: u64, _delta: u64, ctx: &VertexCtx) -> Option<u64> {
        self.scatter_out(v, state, ctx)
    }

    /// Ingest-time correction at a vertex's *primary* when its global
    /// out-degree changes `d0 -> d1` between runs: returns
    /// `(new_state, residual_adjustment)` or `None` when state is
    /// unaffected. Delta-PageRank rescales so the per-edge share
    /// `state / degree` stays invariant (Ohsaka et al.-style scaling).
    fn rescale_on_degree_change(&self, _state: u64, _d0: u64, _d1: u64) -> Option<(u64, u64)> {
        None
    }

    /// Ingest-time residual pushed to the target of a changed edge
    /// `(u, w)`, computed where the change applies from `u`'s
    /// replica-visible `state` and pre-batch out-degree `share_degree`
    /// (both stale copies of the last broadcast, which the scaling
    /// invariant keeps exact). `None` pushes nothing.
    fn edge_change_residual(
        &self,
        _u: VertexId,
        _state: u64,
        _share_degree: u64,
        _insert: bool,
    ) -> Option<u64> {
        None
    }

    /// Per-vertex residual adjustment when the global vertex count
    /// changed `old_n -> ctx.n_vertices` since the state was computed
    /// (PageRank's teleport term is `(1-d)/n`). Applied once at step 0
    /// of a reuse-state residual run.
    fn reseed_residual(&self, _old_n: u64, _ctx: &VertexCtx) -> Option<u64> {
        None
    }

    /// The share of `state` that counts toward the program's global
    /// reduce term (PageRank: the whole rank of a zero-out-degree
    /// vertex). Delta runs track *changes* to the sum of this quantity
    /// — folds at dangling primaries, ingest-time rescales — and
    /// redistribute them through [`VertexProgram::dangling_residual`],
    /// closing the loop the directory's global reduce provides on full
    /// runs.
    fn dangling_mass(&self, _state: u64, _out_degree: u64) -> f64 {
        0.0
    }

    /// Residual correction every primary receives when `ctx.global`
    /// carries a freshly reported dangling-mass change (PageRank:
    /// `d·global/n`). `None` when the program has no global term.
    fn dangling_residual(&self, _ctx: &VertexCtx) -> Option<u64> {
        None
    }

    /// Threshold below which the directory stops issuing dangling-mass
    /// redistribution rounds on an async delta run. The default
    /// (`INFINITY`) disables redistribution entirely.
    fn dangling_epsilon(&self) -> f64 {
        f64::INFINITY
    }
}

/// How a program recomputes incrementally (see the trait docs above).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaKind {
    /// No delta formulation: reuse-state runs use dirty-vertex
    /// activation and re-converge from whatever state is left.
    #[default]
    None,
    /// Monotone fold: reuse + dirty activation is already exact for
    /// insertions; deletions need a label reset (WCC) or a fresh run.
    Monotone,
    /// Residual accumulation: ingest converts edge changes into
    /// residuals, runs fold and push only the affected frontier.
    Residual,
}

/// Registry for [`ProgramSpec::Custom`] programs: specs travel the wire
/// as tokens and resolve through this in-process table (real
/// deployments distribute algorithm code in the binary, exactly like
/// the paper's C++ system).
static CUSTOM_REGISTRY: Mutex<Option<HashMap<u64, Arc<dyn VertexProgram>>>> = Mutex::new(None);
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

fn register_custom(p: Arc<dyn VertexProgram>) -> u64 {
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    CUSTOM_REGISTRY
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(token, p);
    token
}

fn lookup_custom(token: u64) -> Option<Arc<dyn VertexProgram>> {
    CUSTOM_REGISTRY.lock().as_ref()?.get(&token).cloned()
}

/// Serializable description of the program a run executes. Built-in
/// algorithms carry parameters by value; [`ProgramSpec::Custom`] wraps
/// any user [`VertexProgram`].
#[derive(Clone)]
pub enum ProgramSpec {
    /// PageRank with damping factor, an iteration bound, and an
    /// optional convergence tolerance (0 = run all iterations).
    PageRank {
        /// Damping factor (paper uses 0.85).
        damping: f64,
        /// Superstep bound.
        max_iters: u32,
        /// L∞ convergence tolerance; 0 disables early termination.
        tolerance: f64,
    },
    /// Weakly connected components via min-label propagation.
    Wcc,
    /// Unweighted BFS distances from a source.
    Bfs {
        /// Source vertex.
        source: VertexId,
    },
    /// SSSP over deterministic hash weights (see
    /// `elga_graph::reference::edge_weight`).
    Sssp {
        /// Source vertex.
        source: VertexId,
    },
    /// Each vertex's total degree (one superstep; smoke-test program).
    Degree,
    /// DAG levels via §3.2 waiting sets (async mode).
    DagLevel,
    /// Personalized PageRank with restart at a source.
    Ppr {
        /// Restart vertex.
        source: VertexId,
        /// Damping factor.
        damping: f64,
        /// Superstep bound.
        max_iters: u32,
    },
    /// Any user-supplied program (in-process only).
    Custom(Arc<dyn VertexProgram>),
}

impl std::fmt::Debug for ProgramSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramSpec::PageRank {
                damping,
                max_iters,
                tolerance,
            } => f
                .debug_struct("PageRank")
                .field("damping", damping)
                .field("max_iters", max_iters)
                .field("tolerance", tolerance)
                .finish(),
            ProgramSpec::Wcc => write!(f, "Wcc"),
            ProgramSpec::Bfs { source } => write!(f, "Bfs({source})"),
            ProgramSpec::Sssp { source } => write!(f, "Sssp({source})"),
            ProgramSpec::Degree => write!(f, "Degree"),
            ProgramSpec::DagLevel => write!(f, "DagLevel"),
            ProgramSpec::Ppr {
                source,
                damping,
                max_iters,
            } => write!(f, "Ppr(src={source}, d={damping}, iters={max_iters})"),
            ProgramSpec::Custom(p) => write!(f, "Custom({})", p.name()),
        }
    }
}

impl ProgramSpec {
    /// Build the executable program.
    pub fn instantiate(&self) -> Arc<dyn VertexProgram> {
        use crate::algorithms;
        match self {
            ProgramSpec::PageRank {
                damping,
                max_iters,
                tolerance,
            } => Arc::new(
                algorithms::PageRank::new(*damping)
                    .with_max_iters(*max_iters)
                    .with_tolerance(*tolerance),
            ),
            ProgramSpec::Wcc => Arc::new(algorithms::Wcc::new()),
            ProgramSpec::Bfs { source } => Arc::new(algorithms::Bfs::new(*source)),
            ProgramSpec::Sssp { source } => Arc::new(algorithms::Sssp::new(*source)),
            ProgramSpec::Degree => Arc::new(algorithms::Degree::new()),
            ProgramSpec::DagLevel => Arc::new(algorithms::DagLevel::new()),
            ProgramSpec::Ppr {
                source,
                damping,
                max_iters,
            } => Arc::new(algorithms::Ppr::new(*source, *damping).with_max_iters(*max_iters)),
            ProgramSpec::Custom(p) => p.clone(),
        }
    }

    /// Encode into `(tag, params)` wire fields.
    pub fn encode(&self) -> (u8, [u64; 3]) {
        match self {
            ProgramSpec::PageRank {
                damping,
                max_iters,
                tolerance,
            } => (
                0,
                [
                    damping.to_bits(),
                    u64::from(*max_iters),
                    tolerance.to_bits(),
                ],
            ),
            ProgramSpec::Wcc => (1, [0, 0, 0]),
            ProgramSpec::Bfs { source } => (2, [*source, 0, 0]),
            ProgramSpec::Sssp { source } => (3, [*source, 0, 0]),
            ProgramSpec::Degree => (4, [0, 0, 0]),
            ProgramSpec::Custom(p) => (5, [register_custom(p.clone()), 0, 0]),
            ProgramSpec::DagLevel => (6, [0, 0, 0]),
            ProgramSpec::Ppr {
                source,
                damping,
                max_iters,
            } => (7, [*source, damping.to_bits(), u64::from(*max_iters)]),
        }
    }

    /// Decode from wire fields.
    pub fn decode(tag: u8, params: [u64; 3]) -> Option<ProgramSpec> {
        Some(match tag {
            0 => ProgramSpec::PageRank {
                damping: f64::from_bits(params[0]),
                max_iters: params[1] as u32,
                tolerance: f64::from_bits(params[2]),
            },
            1 => ProgramSpec::Wcc,
            2 => ProgramSpec::Bfs { source: params[0] },
            3 => ProgramSpec::Sssp { source: params[0] },
            4 => ProgramSpec::Degree,
            5 => ProgramSpec::Custom(lookup_custom(params[0])?),
            6 => ProgramSpec::DagLevel,
            7 => ProgramSpec::Ppr {
                source: params[0],
                damping: f64::from_bits(params[1]),
                max_iters: params[2] as u32,
            },
            _ => return None,
        })
    }
}

/// Options controlling a single run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Reuse state from the previous run and activate only vertices
    /// touched by intervening batches (Definition 2.5's dynamic
    /// algorithm). When false, all state is re-initialized.
    pub reuse_state: bool,
    /// Execution mode.
    pub mode: ExecutionMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            reuse_state: false,
            mode: ExecutionMode::Sync,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_roundtrip_the_wire() {
        let specs = [
            ProgramSpec::PageRank {
                damping: 0.85,
                max_iters: 30,
                tolerance: 1e-9,
            },
            ProgramSpec::Wcc,
            ProgramSpec::Bfs { source: 7 },
            ProgramSpec::Sssp { source: 8 },
            ProgramSpec::Degree,
            ProgramSpec::DagLevel,
            ProgramSpec::Ppr {
                source: 4,
                damping: 0.85,
                max_iters: 12,
            },
        ];
        for spec in specs {
            let (tag, params) = spec.encode();
            let back = ProgramSpec::decode(tag, params).unwrap();
            assert_eq!(format!("{spec:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn custom_specs_resolve_through_registry() {
        struct Noop;
        impl VertexProgram for Noop {
            fn name(&self) -> &'static str {
                "noop"
            }
            fn init(&self, _: VertexId, _: &VertexCtx) -> u64 {
                0
            }
            fn identity(&self) -> u64 {
                0
            }
            fn combine(&self, a: u64, _b: u64) -> u64 {
                a
            }
            fn apply(&self, _: VertexId, s: u64, _: Option<u64>, _: &VertexCtx) -> (u64, bool) {
                (s, false)
            }
            fn scatter_out(&self, _: VertexId, _: u64, _: &VertexCtx) -> Option<u64> {
                None
            }
        }
        let spec = ProgramSpec::Custom(Arc::new(Noop));
        let (tag, params) = spec.encode();
        assert_eq!(tag, 5);
        let back = ProgramSpec::decode(tag, params).unwrap();
        assert_eq!(back.instantiate().name(), "noop");
    }

    #[test]
    fn unknown_tag_decodes_to_none() {
        assert!(ProgramSpec::decode(250, [0, 0, 0]).is_none());
        assert!(ProgramSpec::decode(5, [u64::MAX, 0, 0]).is_none());
    }

    #[test]
    fn run_options_default_is_fresh_sync() {
        let o = RunOptions::default();
        assert!(!o.reuse_state);
        assert_eq!(o.mode, ExecutionMode::Sync);
    }
}
