//! Wire protocol: packet types and message encodings.
//!
//! "The first byte of any message is a packet type" (§3.5). Every
//! protocol message is hand-encoded with fixed-width little-endian
//! fields over [`elga_net::Frame`] — the paper's "direct memory copies
//! into network buffers". Subscription filtering uses the packet-type
//! byte, so broadcast topics (VIEW, ADVANCE, START, SHUTDOWN) each get
//! their own type.

use elga_graph::types::{Action, EdgeChange, VertexId};
use elga_hash::{AgentId, EdgeLocator, HashKind, LocatorConfig, Ring};
use elga_net::{Addr, Frame, FrameReader};
use elga_sketch::CountMinSketch;

/// Packet-type bytes.
pub mod packet {
    /// Agent joins (REQ to a Directory; reply is VIEW).
    pub const JOIN: u8 = 1;
    /// Agent announces departure (push to a Directory).
    pub const LEAVE: u8 = 2;
    /// Directory view broadcast (PUB topic).
    pub const VIEW: u8 = 3;
    /// Count-min sketch delta (push, Streamer/Agent → Directory).
    pub const SKETCH_DELTA: u8 = 4;
    /// Edge changes (push, Streamer → Agent, or forwarded Agent →
    /// Agent).
    pub const EDGE_CHANGES: u8 = 5;
    /// Vertex messages (push, Agent → Agent, scatter phase).
    pub const VMSG: u8 = 6;
    /// Partial aggregates (push, replica → primary, combine phase).
    pub const PARTIAL: u8 = 7;
    /// State broadcast (push, primary → replicas, apply phase).
    pub const STATE: u8 = 8;
    /// Barrier report (push, Agent → Directory).
    pub const READY: u8 = 9;
    /// Barrier advance (PUB topic, Directory → Agents).
    pub const ADVANCE: u8 = 10;
    /// Algorithm start (PUB topic).
    pub const START: u8 = 11;
    /// Migrated edges (push, Agent → Agent).
    pub const MIG_EDGES: u8 = 12;
    /// Migrated vertex metadata (push, Agent → Agent).
    pub const MIG_META: u8 = 13;
    /// Vertex query (REQ to an Agent).
    pub const QUERY: u8 = 14;
    /// Query reply.
    pub const QUERY_REP: u8 = 15;
    /// Drain request (REQ to an Agent; reply carries counters).
    pub const DRAIN: u8 = 16;
    /// Drain/ready counter snapshot reply.
    pub const COUNTERS: u8 = 17;
    /// Get current view (REQ to a Directory).
    pub const GET_VIEW: u8 = 18;
    /// Run status (REQ to a Directory).
    pub const RUN_STATUS: u8 = 19;
    /// Run status reply.
    pub const RUN_STATUS_REP: u8 = 20;
    /// Metric report (push, Agent → Directory).
    pub const METRICS: u8 = 21;
    /// Aggregated metrics (REQ to a Directory + its reply).
    pub const GET_METRICS: u8 = 22;
    /// Shutdown broadcast (PUB topic).
    pub const SHUTDOWN: u8 = 23;
    /// Directory-to-lead-directory aggregate (push).
    pub const DIR_AGG: u8 = 24;
    /// Bootstrap: ask the DirectoryMaster for a Directory (REQ).
    pub const GET_DIRECTORY: u8 = 25;
    /// Directory registers itself with the DirectoryMaster (REQ).
    pub const DIR_REGISTER: u8 = 26;
    /// Generic OK reply.
    pub const OK: u8 = 27;
    /// WCC-style label reset broadcast (PUB topic).
    pub const RESET_LABELS: u8 = 28;
    /// Global degree deltas (push, Agent → primary Agent).
    pub const DEG_DELTA: u8 = 29;
    /// Join reply (view + optional in-progress run description).
    pub const JOIN_REP: u8 = 30;
    /// Bulk state dump (REQ to an Agent; reply lists its primary
    /// vertices' states).
    pub const DUMP: u8 = 31;
    /// Liveness heartbeat (push, Agent → Directory → lead).
    pub const HEARTBEAT: u8 = 32;
    /// Failure-recovery broadcast (PUB topic): an agent was declared
    /// dead; survivors reset and the driver replays retained changes.
    pub const RECOVER: u8 = 33;
    /// Test-harness kill switch (push to an Agent): die immediately
    /// without the polite LEAVE protocol, simulating a crash.
    pub const KILL: u8 = 34;
    /// Drain a participant's trace ring buffer (request; reply carries
    /// `elga_trace::encode_events` bytes).
    pub const TRACE_DUMP: u8 = 35;
    /// Checkpoint request (REQ to an Agent): serialize and durably
    /// write one shard of the named generation; the reply reports the
    /// write outcome.
    pub const CKPT_SAVE: u8 = 36;
    /// Checkpoint restore: edge records re-routed by the driver under
    /// the post-recovery view (push, driver → Agent). Same vocabulary
    /// as MIG_EDGES but *uncounted* — restore injection happens outside
    /// any barrier and must not disturb the Mattern counters.
    pub const CKPT_EDGES: u8 = 37;
    /// Checkpoint restore: primary-side meta records (push, driver →
    /// Agent). Uncounted, like CKPT_EDGES.
    pub const CKPT_META: u8 = 38;
    /// Ingest-time residual corrections for incremental (delta) runs:
    /// `(vertex, residual)` pushes routed to the vertex's primary,
    /// merged into its stored residual via the program's
    /// `merge_residual`. Counted under the change class (`chg_*`) like
    /// DEG_DELTA — corrections travel with the batch, never inside a
    /// run's barriers.
    pub const RESIDUAL: u8 = 39;
    /// Batched multi-vertex query (REQ, client → Agent): a
    /// [`Records`]-framed list of vertex ids, answered by one
    /// QUERY_BATCH_REP. The batch form of QUERY — one round trip and
    /// one frame pair for any number of vertices.
    pub const QUERY_BATCH: u8 = 40;
    /// Reply to QUERY_BATCH: per-vertex `(vertex, found, state)`
    /// records plus the snapshot tag (run id + batch watermark) the
    /// answers were served under.
    pub const QUERY_BATCH_REP: u8 = 41;
    /// Standing-subscription registration (REQ, client → Agent): the
    /// client's push address plus the vertex set it watches. The agent
    /// pushes SUB_PUSH deltas whenever a completed run changed a
    /// watched vertex.
    pub const SUB_REG: u8 = 42;
    /// Subscription push (Agent → client): `(vertex, state)` records
    /// tagged with the completed run id and batch watermark. Uncounted
    /// client-plane traffic, flushed through the per-destination
    /// coalescers like every other bulk record stream.
    pub const SUB_PUSH: u8 = 43;
    /// Re-arm the residual delta seed after a checkpoint restore (REQ,
    /// driver → Agent): program spec plus the vertex count the restored
    /// states converged under. The recovery reset wipes the seed; the
    /// replayed log suffix regenerates its residual corrections only if
    /// the seed is re-armed *before* the replay routes the changes.
    pub const ARM_DELTA: u8 = 44;
    /// Read the lead's dangling-mass book `(S, n)` (REQ, driver →
    /// lead); answered with DANGLING_REP. Captured into checkpoint
    /// manifests so a restore can rebuild the book.
    pub const DANGLING_GET: u8 = 45;
    /// Reply to DANGLING_GET.
    pub const DANGLING_REP: u8 = 46;
    /// Restore the lead's dangling-mass book after a checkpoint
    /// restore (REQ, driver → lead): the manifest's `(S, n)` plus a
    /// carry term for mass the restored states hold beyond `S` (the
    /// agents' unreported accumulators died with them; the driver
    /// recomputes the difference from the restored shards).
    pub const DANGLING_SET: u8 = 47;
}

/// Superstep phases (see crate docs). `Migrate` barriers elastic
/// membership changes with the same counting machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Scatter program messages along local edges.
    Scatter = 0,
    /// Forward partial aggregates to primaries.
    Combine = 1,
    /// Apply at primaries and broadcast state to replicas.
    Apply = 2,
    /// Migrate edges/state after a membership or sketch change.
    Migrate = 3,
}

impl Phase {
    /// Decode from its wire byte.
    pub fn from_u8(b: u8) -> Option<Phase> {
        match b {
            0 => Some(Phase::Scatter),
            1 => Some(Phase::Combine),
            2 => Some(Phase::Apply),
            3 => Some(Phase::Migrate),
            _ => None,
        }
    }
}

/// Cumulative per-agent message counters, compared pairwise by the
/// directory for Mattern-style termination/barrier detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Scatter messages sent / received (per entry, not per frame).
    pub vmsg_sent: u64,
    /// Scatter messages received.
    pub vmsg_recv: u64,
    /// Partial aggregates sent.
    pub part_sent: u64,
    /// Partial aggregates received.
    pub part_recv: u64,
    /// State broadcasts sent.
    pub state_sent: u64,
    /// State broadcasts received.
    pub state_recv: u64,
    /// Migration records sent.
    pub mig_sent: u64,
    /// Migration records received.
    pub mig_recv: u64,
    /// Edge-change records sent onward (forwarding).
    pub chg_sent: u64,
    /// Edge-change records received.
    pub chg_recv: u64,
}

impl Counters {
    /// Element-wise sum.
    pub fn add(&self, other: &Counters) -> Counters {
        Counters {
            vmsg_sent: self.vmsg_sent + other.vmsg_sent,
            vmsg_recv: self.vmsg_recv + other.vmsg_recv,
            part_sent: self.part_sent + other.part_sent,
            part_recv: self.part_recv + other.part_recv,
            state_sent: self.state_sent + other.state_sent,
            state_recv: self.state_recv + other.state_recv,
            mig_sent: self.mig_sent + other.mig_sent,
            mig_recv: self.mig_recv + other.mig_recv,
            chg_sent: self.chg_sent + other.chg_sent,
            chg_recv: self.chg_recv + other.chg_recv,
        }
    }

    /// True when every sent counter equals its received counter — the
    /// no-messages-in-flight condition.
    pub fn settled(&self) -> bool {
        self.vmsg_sent == self.vmsg_recv
            && self.part_sent == self.part_recv
            && self.state_sent == self.state_recv
            && self.mig_sent == self.mig_recv
            && self.chg_sent == self.chg_recv
    }

    fn encode_into(&self, b: elga_net::frame::FrameBuilder) -> elga_net::frame::FrameBuilder {
        b.u64(self.vmsg_sent)
            .u64(self.vmsg_recv)
            .u64(self.part_sent)
            .u64(self.part_recv)
            .u64(self.state_sent)
            .u64(self.state_recv)
            .u64(self.mig_sent)
            .u64(self.mig_recv)
            .u64(self.chg_sent)
            .u64(self.chg_recv)
    }

    fn decode(r: &mut FrameReader<'_>) -> Option<Counters> {
        Some(Counters {
            vmsg_sent: r.u64()?,
            vmsg_recv: r.u64()?,
            part_sent: r.u64()?,
            part_recv: r.u64()?,
            state_sent: r.u64()?,
            state_recv: r.u64()?,
            mig_sent: r.u64()?,
            mig_recv: r.u64()?,
            chg_sent: r.u64()?,
            chg_recv: r.u64()?,
        })
    }
}

/// One agent's registration record in the view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentInfo {
    /// Agent id (ring key).
    pub id: AgentId,
    /// The agent's mailbox address.
    pub addr: Addr,
}

/// The broadcast directory view: everything a Participant needs to
/// locate any edge (§3.3). Size is `O(P + d·w)` as in the paper.
#[derive(Debug, Clone)]
pub struct DirectoryView {
    /// Monotone version; bumped on membership or sketch change.
    pub epoch: u64,
    /// Current batch clock (§3.3).
    pub batch_id: u64,
    /// Latest known global vertex count (for programs needing `n`).
    pub n_vertices: u64,
    /// Registered agents.
    pub agents: Vec<AgentInfo>,
    /// Degree sketch.
    pub sketch: CountMinSketch,
    /// Ring hash function.
    pub hash: HashKind,
    /// Virtual agents per agent.
    pub virtual_agents: u32,
    /// Replication threshold (estimated degree per replica).
    pub replication_threshold: u64,
    /// Max replicas per vertex.
    pub max_replicas: u32,
}

impl DirectoryView {
    /// Build the locator implied by this view.
    pub fn locator(&self) -> EdgeLocator {
        let ring = Ring::from_agents(
            self.hash,
            self.virtual_agents,
            self.agents.iter().map(|a| a.id),
        );
        EdgeLocator::new(
            ring,
            LocatorConfig {
                replication_threshold: self.replication_threshold,
                max_replicas: self.max_replicas,
            },
        )
    }

    /// Address of an agent by id.
    pub fn addr_of(&self, id: AgentId) -> Option<&Addr> {
        self.agents.iter().find(|a| a.id == id).map(|a| &a.addr)
    }

    /// Estimated degree of `v` from the view's sketch.
    pub fn degree_estimate(&self, v: VertexId) -> u64 {
        self.sketch.estimate(v)
    }

    /// Encode as a VIEW frame.
    pub fn encode(&self) -> Frame {
        let mut b = Frame::builder(packet::VIEW)
            .u64(self.epoch)
            .u64(self.batch_id)
            .u64(self.n_vertices)
            .u8(hash_to_u8(self.hash))
            .u32(self.virtual_agents)
            .u64(self.replication_threshold)
            .u32(self.max_replicas)
            .u32(self.agents.len() as u32);
        for a in &self.agents {
            b = b.u64(a.id).bytes(a.addr.to_string().as_bytes());
        }
        b = b
            .u32(self.sketch.width() as u32)
            .u32(self.sketch.depth() as u32)
            .u64(self.sketch.items());
        // Counter table, delta-friendly raw dump.
        let mut raw = Vec::with_capacity(self.sketch.width() * self.sketch.depth() * 4);
        for row in 0..self.sketch.depth() {
            for col in 0..self.sketch.width() {
                raw.extend_from_slice(&self.sketch.cell(row, col).to_le_bytes());
            }
        }
        b.bytes(&raw).finish()
    }

    /// Decode a VIEW frame.
    pub fn decode(frame: &Frame) -> Option<DirectoryView> {
        Self::decode_slice(frame.as_bytes())
    }

    /// Decode a VIEW encoding from raw bytes (first byte is the packet
    /// type). Lets a view nested inside another message — a join reply
    /// or recover broadcast — be parsed straight from the borrowed
    /// length-prefixed field, with no intermediate copy into a fresh
    /// `Frame`.
    pub fn decode_slice(buf: &[u8]) -> Option<DirectoryView> {
        if buf.first() != Some(&packet::VIEW) {
            return None;
        }
        let mut r = FrameReader::new(&buf[1..]);
        let epoch = r.u64()?;
        let batch_id = r.u64()?;
        let n_vertices = r.u64()?;
        let hash = hash_from_u8(r.u8()?)?;
        let virtual_agents = r.u32()?;
        let replication_threshold = r.u64()?;
        let max_replicas = r.u32()?;
        let n_agents = r.u32()? as usize;
        // 12 bytes minimum per agent record (id + length-prefixed addr).
        let mut agents = Vec::with_capacity(n_agents.min(r.remaining() / 12));
        for _ in 0..n_agents {
            let id = r.u64()?;
            let addr = Addr::parse(std::str::from_utf8(r.bytes()?).ok()?).ok()?;
            agents.push(AgentInfo { id, addr });
        }
        let width = r.u32()? as usize;
        let depth = r.u32()? as usize;
        let items = r.u64()?;
        let raw = r.bytes()?;
        let expected = width.checked_mul(depth).and_then(|x| x.checked_mul(4))?;
        if raw.len() != expected {
            return None;
        }
        let cells: Vec<u32> = raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let sketch = CountMinSketch::from_parts(width, depth, cells, items)?;
        Some(DirectoryView {
            epoch,
            batch_id,
            n_vertices,
            agents,
            sketch,
            hash,
            virtual_agents,
            replication_threshold,
            max_replicas,
        })
    }
}

/// Reader over `frame`'s payload, or `None` when the packet type is
/// not `ty` — every decoder starts here so a frame routed to the wrong
/// decoder surfaces as a parse failure, never a misread.
fn expect(frame: &Frame, ty: u8) -> Option<FrameReader<'_>> {
    (frame.packet_type() == ty).then(|| frame.reader())
}

/// A fixed-stride packed wire record, parsed in place from a frame
/// payload.
///
/// Records are `STRIDE` bytes of little-endian fields with no padding.
/// `validate` pre-screens one raw chunk (e.g. the EDGE_CHANGES action
/// byte must be 0 or 1); once a [`Records`] view is constructed, every
/// chunk has passed it and `parse` runs infallibly during iteration.
pub trait WireRecord: Sized {
    /// Bytes per record on the wire.
    const STRIDE: usize;

    /// Whether a raw `STRIDE`-byte chunk is a well-formed record.
    fn validate(_chunk: &[u8]) -> bool {
        true
    }

    /// Parse a validated `STRIDE`-byte chunk.
    fn parse(chunk: &[u8]) -> Self;
}

#[inline]
fn le_u64(chunk: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(chunk[at..at + 8].try_into().unwrap())
}

/// A borrowed, validated view over the packed record region of a frame
/// payload.
///
/// Construction checks the record count against the region length
/// (exact multiple of the stride — trailing bytes are malformed, not
/// ignored) and validates every record once; iteration then parses in
/// place with zero per-record allocation. The records live in the
/// frame's pooled, `Arc`-shared receive buffer for as long as the
/// frame is alive; the view borrows the frame, so consuming a view
/// never outlives its bytes.
#[derive(Debug)]
pub struct Records<'a, T> {
    buf: &'a [u8],
    _marker: std::marker::PhantomData<fn() -> T>,
}

// Manual impls: the view is a fat pointer regardless of `T`, so no
// `T: Copy` bound (derive would add one).
impl<T> Clone for Records<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Records<'_, T> {}

/// Iterator over a [`Records`] view, parsing each record in place.
///
/// A concrete struct rather than an `iter::Map` with a fn pointer so
/// `T::parse` stays statically dispatched — the per-record parse
/// inlines into the consumer's loop.
#[derive(Debug, Clone)]
pub struct RecordsIter<'a, T> {
    chunks: std::slice::ChunksExact<'a, u8>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: WireRecord> Iterator for RecordsIter<'_, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        self.chunks.next().map(T::parse)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.chunks.size_hint()
    }
}

impl<T: WireRecord> ExactSizeIterator for RecordsIter<'_, T> {}

impl<T: WireRecord> DoubleEndedIterator for RecordsIter<'_, T> {
    fn next_back(&mut self) -> Option<T> {
        self.chunks.next_back().map(T::parse)
    }
}

impl<'a, T: WireRecord> Records<'a, T> {
    fn new(buf: &'a [u8], n: usize) -> Option<Self> {
        if buf.len() != n.checked_mul(T::STRIDE)? {
            return None;
        }
        if !buf.chunks_exact(T::STRIDE).all(T::validate) {
            return None;
        }
        Some(Records {
            buf,
            _marker: std::marker::PhantomData,
        })
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.buf.len() / T::STRIDE
    }

    /// True when the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterate, parsing each record off the borrowed payload.
    pub fn iter(&self) -> RecordsIter<'a, T> {
        (*self).into_iter()
    }

    /// Materialize into a `Vec` (tests and cold paths only — the hot
    /// path iterates).
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }
}

impl<'a, T: WireRecord> IntoIterator for Records<'a, T> {
    type Item = T;
    type IntoIter = RecordsIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        RecordsIter {
            chunks: self.buf.chunks_exact(T::STRIDE),
            _marker: std::marker::PhantomData,
        }
    }
}

/// VMSG / PARTIAL record: `(target, value)`, 16 bytes.
impl WireRecord for (VertexId, u64) {
    const STRIDE: usize = 16;

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        (le_u64(chunk, 0), le_u64(chunk, 8))
    }
}

/// STATE record: vertex + state + out-degree + aux + active flag,
/// 33 bytes. `aux` carries the applied delta on incremental runs
/// (zero otherwise).
impl WireRecord for StateRecord {
    const STRIDE: usize = 33;

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        StateRecord {
            vertex: le_u64(chunk, 0),
            state: le_u64(chunk, 8),
            out_degree: le_u64(chunk, 16),
            aux: le_u64(chunk, 24),
            active: chunk[32] != 0,
        }
    }
}

/// EDGE_CHANGES record: action byte + src + dst, 17 bytes.
impl WireRecord for EdgeChange {
    const STRIDE: usize = 17;

    #[inline]
    fn validate(chunk: &[u8]) -> bool {
        chunk[0] <= 1
    }

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        EdgeChange {
            action: if chunk[0] == 0 {
                Action::Insert
            } else {
                Action::Delete
            },
            edge: (le_u64(chunk, 1), le_u64(chunk, 9)).into(),
        }
    }
}

/// DEG_DELTA record: vertex + out-delta + in-delta, 24 bytes.
impl WireRecord for (VertexId, i64, i64) {
    const STRIDE: usize = 24;

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        (
            le_u64(chunk, 0),
            le_u64(chunk, 8) as i64,
            le_u64(chunk, 16) as i64,
        )
    }
}

/// QUERY_BATCH record: one bare vertex id, 8 bytes.
impl WireRecord for VertexId {
    const STRIDE: usize = 8;

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        le_u64(chunk, 0)
    }
}

/// Answer code in a query reply: the responding replica holds no state
/// for the vertex. Not authoritative — the caller should try another
/// replica.
pub const ANSWER_MISS: u8 = 0;
/// Answer code in a query reply: vertex found, its state is valid.
pub const ANSWER_HIT: u8 = 1;
/// Answer code in a query reply: the responding agent is the vertex's
/// primary under the current view and the vertex does not exist. An
/// authoritative negative — callers stop searching.
pub const ANSWER_GONE: u8 = 2;

/// One vertex's answer inside a QUERY_BATCH_REP frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The queried vertex.
    pub vertex: VertexId,
    /// Program state (meaningless unless `found == ANSWER_HIT`).
    pub state: u64,
    /// [`ANSWER_MISS`], [`ANSWER_HIT`] or [`ANSWER_GONE`].
    pub found: u8,
}

/// QUERY_BATCH_REP record: vertex + state + answer code, 17 bytes.
impl WireRecord for QueryAnswer {
    const STRIDE: usize = 17;

    #[inline]
    fn validate(chunk: &[u8]) -> bool {
        chunk[16] <= ANSWER_GONE
    }

    #[inline]
    fn parse(chunk: &[u8]) -> Self {
        QueryAnswer {
            vertex: le_u64(chunk, 0),
            state: le_u64(chunk, 8),
            found: chunk[16],
        }
    }
}

fn hash_to_u8(h: HashKind) -> u8 {
    match h {
        HashKind::Wang => 0,
        HashKind::Mult => 1,
        HashKind::Abseil => 2,
        HashKind::Crc64 => 3,
    }
}

fn hash_from_u8(b: u8) -> Option<HashKind> {
    match b {
        0 => Some(HashKind::Wang),
        1 => Some(HashKind::Mult),
        2 => Some(HashKind::Abseil),
        3 => Some(HashKind::Crc64),
        _ => None,
    }
}

/// Which placement an edge-change record targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Out-edge of the change's `src`, placed by `owner(src, dst)`.
    Out,
    /// In-edge of the change's `dst`, placed by `owner(dst, src)`.
    In,
}

/// Encode a batch of edge changes for one placement side.
pub fn encode_edge_changes(side: Side, hop: u8, changes: &[EdgeChange]) -> Frame {
    let mut b = Frame::builder(packet::EDGE_CHANGES)
        .u8(match side {
            Side::Out => 0,
            Side::In => 1,
        })
        .u8(hop)
        .u32(changes.len() as u32);
    for c in changes {
        b = b
            .u8(match c.action {
                Action::Insert => 0,
                Action::Delete => 1,
            })
            .u64(c.edge.src)
            .u64(c.edge.dst);
    }
    b.finish()
}

/// Borrowed EDGE_CHANGES payload: placement side, forwarding hop, and
/// the packed change records parsed in place off the frame.
#[derive(Debug, Clone, Copy)]
pub struct EdgeChangesView<'a> {
    /// Which placement the records target.
    pub side: Side,
    /// Forwarding hop count.
    pub hop: u8,
    /// The packed records.
    pub records: Records<'a, EdgeChange>,
}

/// Decode an EDGE_CHANGES frame into a borrowed view. `None` on a
/// wrong packet type, a bad side or action byte, or a record region
/// that is not exactly `n` records long.
pub fn decode_edge_changes(frame: &Frame) -> Option<EdgeChangesView<'_>> {
    let mut r = expect(frame, packet::EDGE_CHANGES)?;
    let side = match r.u8()? {
        0 => Side::Out,
        1 => Side::In,
        _ => return None,
    };
    let hop = r.u8()?;
    let n = r.u32()? as usize;
    Some(EdgeChangesView {
        side,
        hop,
        records: Records::new(r.rest(), n)?,
    })
}

/// Encode vertex messages: `(run, step, [(target, value)])`.
pub fn encode_vmsgs(run: u64, step: u32, msgs: &[(VertexId, u64)]) -> Frame {
    let mut b = Frame::builder(packet::VMSG)
        .u64(run)
        .u32(step)
        .u32(msgs.len() as u32);
    for &(t, v) in msgs {
        b = b.u64(t).u64(v);
    }
    b.finish()
}

/// Borrowed VMSG / PARTIAL payload: run header plus packed
/// `(target, value)` records parsed in place off the frame.
#[derive(Debug, Clone, Copy)]
pub struct ValuesView<'a> {
    /// Run id.
    pub run: u64,
    /// Superstep.
    pub step: u32,
    /// The packed records.
    pub records: Records<'a, (VertexId, u64)>,
}

fn decode_values(frame: &Frame, ty: u8) -> Option<ValuesView<'_>> {
    let mut r = expect(frame, ty)?;
    let run = r.u64()?;
    let step = r.u32()?;
    let n = r.u32()? as usize;
    Some(ValuesView {
        run,
        step,
        records: Records::new(r.rest(), n)?,
    })
}

/// Decode a VMSG frame into a borrowed view.
pub fn decode_vmsgs(frame: &Frame) -> Option<ValuesView<'_>> {
    decode_values(frame, packet::VMSG)
}

/// Encode partial aggregates: `(run, step, [(vertex, agg)])`. Shares
/// the VMSG payload shape under its own packet type.
pub fn encode_partials(run: u64, step: u32, parts: &[(VertexId, u64)]) -> Frame {
    let mut b = Frame::builder(packet::PARTIAL)
        .u64(run)
        .u32(step)
        .u32(parts.len() as u32);
    for &(t, v) in parts {
        b = b.u64(t).u64(v);
    }
    b.finish()
}

/// Decode a PARTIAL frame (same payload as VMSG) into a borrowed view.
pub fn decode_partials(frame: &Frame) -> Option<ValuesView<'_>> {
    decode_values(frame, packet::PARTIAL)
}

/// One state-broadcast record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRecord {
    /// The vertex.
    pub vertex: VertexId,
    /// Its new (encoded) state.
    pub state: u64,
    /// Its global out-degree.
    pub out_degree: u64,
    /// On incremental (delta) runs: the applied delta the replicas
    /// scatter via `scatter_delta`. Zero on full runs.
    pub aux: u64,
    /// Whether it is active next superstep.
    pub active: bool,
}

/// Encode state broadcasts.
pub fn encode_states(run: u64, step: u32, recs: &[StateRecord]) -> Frame {
    let mut b = Frame::builder(packet::STATE)
        .u64(run)
        .u32(step)
        .u32(recs.len() as u32);
    for rec in recs {
        b = b
            .u64(rec.vertex)
            .u64(rec.state)
            .u64(rec.out_degree)
            .u64(rec.aux)
            .u8(rec.active as u8);
    }
    b.finish()
}

/// Borrowed STATE payload: run header plus packed [`StateRecord`]s
/// parsed in place off the frame.
#[derive(Debug, Clone, Copy)]
pub struct StatesView<'a> {
    /// Run id.
    pub run: u64,
    /// Superstep.
    pub step: u32,
    /// The packed records.
    pub records: Records<'a, StateRecord>,
}

/// Decode a STATE frame into a borrowed view.
pub fn decode_states(frame: &Frame) -> Option<StatesView<'_>> {
    let mut r = expect(frame, packet::STATE)?;
    let run = r.u64()?;
    let step = r.u32()?;
    let n = r.u32()? as usize;
    Some(StatesView {
        run,
        step,
        records: Records::new(r.rest(), n)?,
    })
}

/// A barrier report from an agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadyReport {
    /// Reporting agent.
    pub agent: AgentId,
    /// Run id (0 when idle / migrating outside a run).
    pub run: u64,
    /// Superstep.
    pub step: u32,
    /// Phase the agent finished local work for.
    pub phase: Phase,
    /// Cumulative counters.
    pub counters: Counters,
    /// Vertices active for the next step (phase Apply only).
    pub active: u64,
    /// Program's global-reduce contribution (e.g. dangling PageRank
    /// mass).
    pub global_contrib: f64,
    /// Vertices this agent is primary for.
    pub n_primary: u64,
    /// Per-agent monotone report sequence. A retransmitting transport
    /// can reorder pushes; the lead discards any report older than the
    /// one it already holds, so a stale snapshot can never overwrite a
    /// fresh one and wedge a barrier.
    pub seq: u64,
    /// The reporter's adopted view epoch. Async idle reports are only
    /// trusted when this matches the lead's current epoch, so a report
    /// predating a mid-run migration can never settle the restarted
    /// termination detector against post-migration counters.
    pub epoch: u64,
}

/// Encode a READY frame.
pub fn encode_ready(r: &ReadyReport) -> Frame {
    let b = Frame::builder(packet::READY)
        .u64(r.agent)
        .u64(r.run)
        .u32(r.step)
        .u8(r.phase as u8);
    r.counters
        .encode_into(b)
        .u64(r.active)
        .f64(r.global_contrib)
        .u64(r.n_primary)
        .u64(r.seq)
        .u64(r.epoch)
        .finish()
}

/// Decode a READY frame.
pub fn decode_ready(frame: &Frame) -> Option<ReadyReport> {
    let mut r = expect(frame, packet::READY)?;
    Some(ReadyReport {
        agent: r.u64()?,
        run: r.u64()?,
        step: r.u32()?,
        phase: Phase::from_u8(r.u8()?)?,
        counters: Counters::decode(&mut r)?,
        active: r.u64()?,
        global_contrib: r.f64()?,
        n_primary: r.u64()?,
        seq: r.u64()?,
        epoch: r.u64()?,
    })
}

/// A barrier advance broadcast by the directory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Advance {
    /// Run id.
    pub run: u64,
    /// Superstep to execute.
    pub step: u32,
    /// Phase to execute.
    pub phase: Phase,
    /// Global vertex count.
    pub n_vertices: u64,
    /// Global reduce value (Σ `global_contrib`).
    pub global: f64,
    /// When set, the run is complete; `step`/`phase` are final.
    pub done: bool,
}

/// Encode an ADVANCE frame.
pub fn encode_advance(a: &Advance) -> Frame {
    Frame::builder(packet::ADVANCE)
        .u64(a.run)
        .u32(a.step)
        .u8(a.phase as u8)
        .u64(a.n_vertices)
        .f64(a.global)
        .u8(a.done as u8)
        .finish()
}

/// Decode an ADVANCE frame.
pub fn decode_advance(frame: &Frame) -> Option<Advance> {
    let mut r = expect(frame, packet::ADVANCE)?;
    Some(Advance {
        run: r.u64()?,
        step: r.u32()?,
        phase: Phase::from_u8(r.u8()?)?,
        n_vertices: r.u64()?,
        global: r.f64()?,
        done: r.u8()? != 0,
    })
}

/// Encode one migrated vertex-metadata record batch. The header
/// carries the sender's serving-snapshot tag `(snap_run,
/// snap_watermark)` so a joining agent adopting migrated snaps also
/// adopts the tag they belong to — otherwise it would serve correct
/// values under run 0 and look checkpoint-restored to clients.
pub fn encode_mig_meta(recs: &[MetaRecord], snap_run: u64, snap_watermark: u64) -> Frame {
    let mut b = Frame::builder(packet::MIG_META)
        .u64(snap_run)
        .u64(snap_watermark)
        .u32(recs.len() as u32);
    for m in recs {
        b = b
            .u64(m.vertex)
            .u64(m.state)
            .u64(m.out_degree)
            .u8(m.active as u8)
            .u8(m.dirty as u8)
            .u8(m.has_state as u8)
            .u8(m.has_meta as u8)
            .u64(m.ppartial)
            .u8(m.has_ppartial as u8)
            .u64(m.wait_recv)
            .u64(m.residual)
            .u8(m.has_residual as u8)
            .u64(m.snap)
            .u8(m.has_snap as u8);
    }
    b.finish()
}

/// Decode a MIG_META frame: the sender's `(snap_run, snap_watermark)`
/// serving tag plus the metadata records.
pub fn decode_mig_meta(frame: &Frame) -> Option<(u64, u64, Vec<MetaRecord>)> {
    let mut r = expect(frame, packet::MIG_META)?;
    let snap_run = r.u64()?;
    let snap_watermark = r.u64()?;
    let n = r.u32()? as usize;
    let mut recs = Vec::with_capacity(n.min(r.remaining() / 63));
    for _ in 0..n {
        recs.push(MetaRecord {
            vertex: r.u64()?,
            state: r.u64()?,
            out_degree: r.u64()?,
            active: r.u8()? != 0,
            dirty: r.u8()? != 0,
            has_state: r.u8()? != 0,
            has_meta: r.u8()? != 0,
            ppartial: r.u64()?,
            has_ppartial: r.u8()? != 0,
            wait_recv: r.u64()?,
            residual: r.u64()?,
            has_residual: r.u8()? != 0,
            snap: r.u64()?,
            has_snap: r.u8()? != 0,
        });
    }
    Some((snap_run, snap_watermark, recs))
}

/// Primary-side vertex metadata moved during migration.
///
/// Besides the meta payload (global out-degree, dirty flag), the record
/// carries the vertex's *async run state* — the §3.2 waiting-set
/// progress that lives only at the primary. Migrating it keeps an
/// asynchronous run correct across a mid-run view change: the new
/// primary resumes the waiting set exactly where the old one left off
/// instead of waiting forever for messages that were already consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaRecord {
    /// The vertex.
    pub vertex: VertexId,
    /// Encoded program state (meaningless when `has_state` is false).
    pub state: u64,
    /// Global out-degree accumulated at the primary.
    pub out_degree: u64,
    /// Active flag.
    pub active: bool,
    /// Touched by changes since the last run.
    pub dirty: bool,
    /// Whether `state` is initialized.
    pub has_state: bool,
    /// Whether this record carries primary metadata (`out_degree`,
    /// existence). False for records shipped solely to hand off async
    /// run state for a vertex whose meta lives elsewhere.
    pub has_meta: bool,
    /// Pending combined partial of an async waiting set (meaningless
    /// when `has_ppartial` is false).
    pub ppartial: u64,
    /// Whether `ppartial` holds a combined value.
    pub has_ppartial: bool,
    /// Messages received so far toward the vertex's waiting set.
    pub wait_recv: u64,
    /// Unapplied residual of an incremental run (meaningless when
    /// `has_residual` is false). Residuals live only at the primary, so
    /// migrating them with the meta bundle keeps delta runs exact
    /// across a mid-run view change.
    pub residual: u64,
    /// Whether `residual` holds an accumulated delta.
    pub has_residual: bool,
    /// Query-serving snapshot (the vertex's value at the last completed
    /// run; meaningless when `has_snap` is false). Moves with
    /// primaryship so snapshot reads survive view changes.
    pub snap: u64,
    /// Whether `snap` holds a completed-run value.
    pub has_snap: bool,
}

/// Encode degree deltas: `[(vertex, out_delta, in_delta)]` sent to each
/// vertex's primary so it maintains global degrees, existence and the
/// dirty flag.
pub fn encode_deg_deltas(deltas: &[(VertexId, i64, i64)]) -> Frame {
    let mut b = Frame::builder(packet::DEG_DELTA).u32(deltas.len() as u32);
    for &(v, dout, din) in deltas {
        b = b.u64(v).u64(dout as u64).u64(din as u64);
    }
    b.finish()
}

/// Decode a DEG_DELTA frame into a borrowed record view.
pub fn decode_deg_deltas(frame: &Frame) -> Option<Records<'_, (VertexId, i64, i64)>> {
    let mut r = expect(frame, packet::DEG_DELTA)?;
    let n = r.u32()? as usize;
    Records::new(r.rest(), n)
}

/// Encode residual corrections: `[(vertex, delta)]` sent to each
/// vertex's primary at ingest time so the next incremental run's
/// frontier and mass budget reflect the batch's edge changes. `delta`
/// is program-encoded (f64 bits for PageRank) and merged with the
/// program's `merge_residual`.
pub fn encode_residuals(residuals: &[(VertexId, u64)]) -> Frame {
    let mut b = Frame::builder(packet::RESIDUAL).u32(residuals.len() as u32);
    for &(v, delta) in residuals {
        b = b.u64(v).u64(delta);
    }
    b.finish()
}

/// Decode a RESIDUAL frame into a borrowed record view.
pub fn decode_residuals(frame: &Frame) -> Option<Records<'_, (VertexId, u64)>> {
    let mut r = expect(frame, packet::RESIDUAL)?;
    let n = r.u32()? as usize;
    Records::new(r.rest(), n)
}

/// Encode a QUERY_BATCH request: point-lookup `vertices` in one frame.
pub fn encode_query_batch(vertices: &[VertexId]) -> Frame {
    let mut b = Frame::builder(packet::QUERY_BATCH).u32(vertices.len() as u32);
    for &v in vertices {
        b = b.u64(v);
    }
    b.finish()
}

/// Decode a QUERY_BATCH request into a borrowed record view.
pub fn decode_query_batch(frame: &Frame) -> Option<Records<'_, VertexId>> {
    let mut r = expect(frame, packet::QUERY_BATCH)?;
    let n = r.u32()? as usize;
    Records::new(r.rest(), n)
}

/// Encode a QUERY_BATCH reply: per-vertex answers tagged with the
/// snapshot they were read from — the last *completed* run (`run`, 0
/// when none has finished yet) and the ingest batch watermark current
/// when that run finished. All answers in one reply come from the same
/// snapshot; a client never observes torn mid-superstep state.
pub fn encode_query_batch_rep(run: u64, watermark: u64, answers: &[QueryAnswer]) -> Frame {
    let mut b = Frame::builder(packet::QUERY_BATCH_REP)
        .u64(run)
        .u64(watermark)
        .u32(answers.len() as u32);
    for a in answers {
        b = b.u64(a.vertex).u64(a.state).u8(a.found);
    }
    b.finish()
}

/// Decode a QUERY_BATCH reply into `(run, watermark, answers)`.
pub fn decode_query_batch_rep(frame: &Frame) -> Option<(u64, u64, Records<'_, QueryAnswer>)> {
    let mut r = expect(frame, packet::QUERY_BATCH_REP)?;
    let (run, watermark) = (r.u64()?, r.u64()?);
    let n = r.u32()? as usize;
    Some((run, watermark, Records::new(r.rest(), n)?))
}

/// Encode a SUB_REG request: register standing subscription `sub`
/// (client-chosen id, unique per push address) covering `vertices`;
/// the agent pushes value deltas to `addr` after each completed run.
/// An empty vertex list cancels the subscription.
pub fn encode_sub_reg(addr: &Addr, sub: u64, vertices: &[VertexId]) -> Frame {
    let mut b = Frame::builder(packet::SUB_REG)
        .bytes(addr.to_string().as_bytes())
        .u64(sub)
        .u32(vertices.len() as u32);
    for &v in vertices {
        b = b.u64(v);
    }
    b.finish()
}

/// Decode a SUB_REG request into `(push address, sub id, vertices)`.
pub fn decode_sub_reg(frame: &Frame) -> Option<(Addr, u64, Records<'_, VertexId>)> {
    let mut r = expect(frame, packet::SUB_REG)?;
    let addr = Addr::parse(std::str::from_utf8(r.bytes()?).ok()?).ok()?;
    let sub = r.u64()?;
    let n = r.u32()? as usize;
    Some((addr, sub, Records::new(r.rest(), n)?))
}

/// Append one changed `(vertex, state)` pair to `out`'s open SUB_PUSH
/// frame for subscription `sub`, tagged like a query reply with the
/// completed run id and its ingest batch watermark.
pub fn append_sub_push(
    out: &mut elga_net::CoalescingOutbox,
    sub: u64,
    run: u64,
    watermark: u64,
    vertex: VertexId,
    state: u64,
) {
    out.append(
        packet::SUB_PUSH,
        sub,
        |b| {
            b.extend_from_slice(&sub.to_le_bytes());
            b.extend_from_slice(&run.to_le_bytes());
            b.extend_from_slice(&watermark.to_le_bytes());
        },
        move |b| {
            b.extend_from_slice(&vertex.to_le_bytes());
            b.extend_from_slice(&state.to_le_bytes());
        },
    );
}

/// A decoded SUB_PUSH: `(sub, run, watermark, records)`.
pub type SubPush<'a> = (u64, u64, u64, Records<'a, (VertexId, u64)>);

/// Decode a SUB_PUSH frame into `(sub, run, watermark, records)`.
pub fn decode_sub_push(frame: &Frame) -> Option<SubPush<'_>> {
    let mut r = expect(frame, packet::SUB_PUSH)?;
    let (sub, run, watermark) = (r.u64()?, r.u64()?, r.u64()?);
    let n = r.u32()? as usize;
    Some((sub, run, watermark, Records::new(r.rest(), n)?))
}

/// Encode an ARM_DELTA request: before replaying a log suffix onto a
/// restored cluster, re-arm every agent's ingest-time delta seed with
/// the program (`tag`, `params`) and the vertex count `n` the restored
/// states converged under, so the replay regenerates the same residual
/// corrections live ingest would have produced.
pub fn encode_arm_delta(tag: u8, params: [u64; 3], n: u64) -> Frame {
    Frame::builder(packet::ARM_DELTA)
        .u8(tag)
        .u64(params[0])
        .u64(params[1])
        .u64(params[2])
        .u64(n)
        .finish()
}

/// Decode an ARM_DELTA request into `(tag, params, n)`.
pub fn decode_arm_delta(frame: &Frame) -> Option<(u8, [u64; 3], u64)> {
    let mut r = expect(frame, packet::ARM_DELTA)?;
    Some((r.u8()?, [r.u64()?, r.u64()?, r.u64()?], r.u64()?))
}

/// Encode a DANGLING_GET request (no payload): read the lead
/// directory's dangling-mass book.
pub fn encode_dangling_get() -> Frame {
    Frame::builder(packet::DANGLING_GET).finish()
}

/// Encode a DANGLING_GET reply: the lead's converged dangling mass and
/// the vertex count it was accumulated under.
pub fn encode_dangling_rep(mass: f64, n: u64) -> Frame {
    Frame::builder(packet::DANGLING_REP)
        .f64(mass)
        .u64(n)
        .finish()
}

/// Decode a DANGLING_GET reply into `(mass, n)`.
pub fn decode_dangling_rep(frame: &Frame) -> Option<(f64, u64)> {
    let mut r = expect(frame, packet::DANGLING_REP)?;
    Some((r.f64()?, r.u64()?))
}

/// Encode a DANGLING_SET request: seed the lead's dangling-mass book
/// after a checkpoint restore. `mass`/`n` reinstate the book the
/// manifest recorded at checkpoint time; `carry` is the dangling-mass
/// drift between the restored states and that book (log-suffix changes
/// whose unreported accumulators died with the old agents), absorbed
/// into the global term at the next delta run's first reduction.
pub fn encode_dangling_set(mass: f64, n: u64, carry: f64) -> Frame {
    Frame::builder(packet::DANGLING_SET)
        .f64(mass)
        .u64(n)
        .f64(carry)
        .finish()
}

/// Decode a DANGLING_SET request into `(mass, n, carry)`.
pub fn decode_dangling_set(frame: &Frame) -> Option<(f64, u64, f64)> {
    let mut r = expect(frame, packet::DANGLING_SET)?;
    Some((r.f64()?, r.u64()?, r.f64()?))
}

/// Encode a CKPT_SAVE request: write one shard of checkpoint
/// `generation` at view `epoch`, covering the first `watermark`
/// ingested change records.
pub fn encode_ckpt_save(generation: u64, epoch: u64, watermark: u64) -> Frame {
    Frame::builder(packet::CKPT_SAVE)
        .u64(generation)
        .u64(epoch)
        .u64(watermark)
        .finish()
}

/// Decode a CKPT_SAVE request into `(generation, epoch, watermark)`.
pub fn decode_ckpt_save(frame: &Frame) -> Option<(u64, u64, u64)> {
    let mut r = expect(frame, packet::CKPT_SAVE)?;
    Some((r.u64()?, r.u64()?, r.u64()?))
}

/// One agent's reply to a CKPT_SAVE request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptSaveReport {
    /// Whether the shard file was written, fsynced and renamed into
    /// place. False leaves the generation uncommittable — the driver
    /// must not write a manifest for it.
    pub ok: bool,
    /// Serialized payload bytes (0 on failure).
    pub bytes: u64,
    /// Wall time spent serializing and writing, in nanoseconds.
    pub nanos: u64,
}

/// Encode a CKPT_SAVE reply.
pub fn encode_ckpt_save_reply(r: &CkptSaveReport) -> Frame {
    Frame::builder(packet::CKPT_SAVE)
        .u8(r.ok as u8)
        .u64(r.bytes)
        .u64(r.nanos)
        .finish()
}

/// Decode a CKPT_SAVE reply.
pub fn decode_ckpt_save_reply(frame: &Frame) -> Option<CkptSaveReport> {
    let mut r = expect(frame, packet::CKPT_SAVE)?;
    Some(CkptSaveReport {
        ok: r.u8()? != 0,
        bytes: r.u64()?,
        nanos: r.u64()?,
    })
}

/// One restored vertex's edges for one placement side, re-routed by
/// the driver under the post-recovery view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptEdgeGroup {
    /// Which placement the group targets.
    pub side: Side,
    /// The vertex the edges belong to.
    pub vertex: VertexId,
    /// Replica-visible program state (meaningless when `has_state` is
    /// false).
    pub state: u64,
    /// Whether `state` is initialized.
    pub has_state: bool,
    /// Replica-visible out-degree snapshot (scatter denominators).
    pub rep_out_degree: u64,
    /// Active flag.
    pub active: bool,
    /// The other endpoints: targets of out-edges (`side == Out`) or
    /// sources of in-edges (`side == In`).
    pub others: Vec<VertexId>,
}

/// Encode a batch of restored edge groups.
pub fn encode_ckpt_edges(groups: &[CkptEdgeGroup]) -> Frame {
    let mut b = Frame::builder(packet::CKPT_EDGES).u32(groups.len() as u32);
    for g in groups {
        b = b
            .u8(match g.side {
                Side::Out => 0,
                Side::In => 1,
            })
            .u64(g.vertex)
            .u64(g.state)
            .u8(g.has_state as u8)
            .u64(g.rep_out_degree)
            .u8(g.active as u8)
            .u32(g.others.len() as u32);
        for &w in &g.others {
            b = b.u64(w);
        }
    }
    b.finish()
}

/// Decode a CKPT_EDGES frame.
pub fn decode_ckpt_edges(frame: &Frame) -> Option<Vec<CkptEdgeGroup>> {
    let mut r = expect(frame, packet::CKPT_EDGES)?;
    let n = r.u32()? as usize;
    // 31 bytes is the minimum (edgeless) group encoding.
    let mut groups = Vec::with_capacity(n.min(r.remaining() / 31));
    for _ in 0..n {
        let side = match r.u8()? {
            0 => Side::Out,
            1 => Side::In,
            _ => return None,
        };
        let vertex = r.u64()?;
        let state = r.u64()?;
        let has_state = r.u8()? != 0;
        let rep_out_degree = r.u64()?;
        let active = r.u8()? != 0;
        let m = r.u32()? as usize;
        let mut others = Vec::with_capacity(m.min(r.remaining() / 8));
        for _ in 0..m {
            others.push(r.u64()?);
        }
        groups.push(CkptEdgeGroup {
            side,
            vertex,
            state,
            has_state,
            rep_out_degree,
            active,
            others,
        });
    }
    Some(groups)
}

/// Primary-side vertex metadata restored from a checkpoint.
///
/// Unlike [`MetaRecord`] this carries *both* global degrees — a
/// checkpoint payload has no migration-style piggyback path for
/// `g_in` — and no async run state: checkpoints are taken only at
/// quiesced batch boundaries, where no run is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptMetaRecord {
    /// The vertex.
    pub vertex: VertexId,
    /// Encoded program state (meaningless when `has_state` is false).
    pub state: u64,
    /// Whether `state` is initialized.
    pub has_state: bool,
    /// Active flag.
    pub active: bool,
    /// Touched by changes since the last run.
    pub dirty: bool,
    /// Whether the vertex existed as a primary (meta) entry.
    pub is_meta: bool,
    /// Global out-degree accumulated at the primary.
    pub g_out: i64,
    /// Global in-degree accumulated at the primary.
    pub g_in: i64,
    /// Unapplied incremental-run residual carried across the restart
    /// (meaningless when `has_residual` is false).
    pub residual: u64,
    /// Whether `residual` holds an accumulated delta.
    pub has_residual: bool,
}

/// Encode a batch of restored meta records.
pub fn encode_ckpt_meta(recs: &[CkptMetaRecord]) -> Frame {
    let mut b = Frame::builder(packet::CKPT_META).u32(recs.len() as u32);
    for m in recs {
        b = b
            .u64(m.vertex)
            .u64(m.state)
            .u8(m.has_state as u8)
            .u8(m.active as u8)
            .u8(m.dirty as u8)
            .u8(m.is_meta as u8)
            .u64(m.g_out as u64)
            .u64(m.g_in as u64)
            .u64(m.residual)
            .u8(m.has_residual as u8);
    }
    b.finish()
}

/// Decode a CKPT_META frame.
pub fn decode_ckpt_meta(frame: &Frame) -> Option<Vec<CkptMetaRecord>> {
    let mut r = expect(frame, packet::CKPT_META)?;
    let n = r.u32()? as usize;
    let mut recs = Vec::with_capacity(n.min(r.remaining() / 45));
    for _ in 0..n {
        recs.push(CkptMetaRecord {
            vertex: r.u64()?,
            state: r.u64()?,
            has_state: r.u8()? != 0,
            active: r.u8()? != 0,
            dirty: r.u8()? != 0,
            is_meta: r.u8()? != 0,
            g_out: r.u64()? as i64,
            g_in: r.u64()? as i64,
            residual: r.u64()?,
            has_residual: r.u8()? != 0,
        });
    }
    Some(recs)
}

// ---------------------------------------------------------------------
// Append-style encoders
//
// Each `append_*` writes ONE record into the destination's open
// coalescing frame ([`elga_net::CoalescingOutbox`]) instead of building
// a whole batch frame up front. The byte layout — packet type, header,
// `u32` record count, records — is identical to the batch `encode_*`
// counterpart above, so the `decode_*` functions parse coalesced and
// eagerly built frames alike and sync-mode results stay bit-identical.

/// Coalescing key for `(run, step)` headers: distinct header values
/// must yield distinct keys so records never land under the wrong
/// header. Run ids are small monotone counters, so packing them beside
/// the step is collision-free in practice.
fn run_step_key(run: u64, step: u32) -> u64 {
    (run << 32) | u64::from(step)
}

/// Append one vertex message (`target`, `value`) to `out`'s open VMSG
/// frame for run/step. Layout matches [`encode_vmsgs`].
pub fn append_vmsg(
    out: &mut elga_net::CoalescingOutbox,
    run: u64,
    step: u32,
    target: VertexId,
    value: u64,
) {
    out.append(
        packet::VMSG,
        run_step_key(run, step),
        |b| {
            b.extend_from_slice(&run.to_le_bytes());
            b.extend_from_slice(&step.to_le_bytes());
        },
        |b| {
            b.extend_from_slice(&target.to_le_bytes());
            b.extend_from_slice(&value.to_le_bytes());
        },
    );
}

/// Append one partial aggregate to `out`'s open PARTIAL frame. Layout
/// matches [`encode_partials`].
pub fn append_partial(
    out: &mut elga_net::CoalescingOutbox,
    run: u64,
    step: u32,
    vertex: VertexId,
    agg: u64,
) {
    out.append(
        packet::PARTIAL,
        run_step_key(run, step),
        |b| {
            b.extend_from_slice(&run.to_le_bytes());
            b.extend_from_slice(&step.to_le_bytes());
        },
        |b| {
            b.extend_from_slice(&vertex.to_le_bytes());
            b.extend_from_slice(&agg.to_le_bytes());
        },
    );
}

/// Append one state record to `out`'s open STATE frame. Layout matches
/// [`encode_states`].
pub fn append_state(out: &mut elga_net::CoalescingOutbox, run: u64, step: u32, rec: &StateRecord) {
    let rec = *rec;
    out.append(
        packet::STATE,
        run_step_key(run, step),
        |b| {
            b.extend_from_slice(&run.to_le_bytes());
            b.extend_from_slice(&step.to_le_bytes());
        },
        move |b| {
            b.extend_from_slice(&rec.vertex.to_le_bytes());
            b.extend_from_slice(&rec.state.to_le_bytes());
            b.extend_from_slice(&rec.out_degree.to_le_bytes());
            b.extend_from_slice(&rec.aux.to_le_bytes());
            b.extend_from_slice(&[rec.active as u8]);
        },
    );
}

/// Append one residual correction (`target`, signed-encoded `delta`) to
/// `out`'s open RESIDUAL frame. Layout matches [`encode_residuals`].
pub fn append_residual(out: &mut elga_net::CoalescingOutbox, target: VertexId, delta: u64) {
    out.append(
        packet::RESIDUAL,
        0,
        |_| {},
        move |b| {
            b.extend_from_slice(&target.to_le_bytes());
            b.extend_from_slice(&delta.to_le_bytes());
        },
    );
}

/// Append one edge change to `out`'s open EDGE_CHANGES frame for
/// `(side, hop)`. Layout matches [`encode_edge_changes`].
pub fn append_edge_change(
    out: &mut elga_net::CoalescingOutbox,
    side: Side,
    hop: u8,
    change: &EdgeChange,
) {
    let side_byte: u8 = match side {
        Side::Out => 0,
        Side::In => 1,
    };
    let change = *change;
    out.append(
        packet::EDGE_CHANGES,
        (u64::from(side_byte) << 8) | u64::from(hop),
        |b| b.extend_from_slice(&[side_byte, hop]),
        move |b| {
            b.extend_from_slice(&[match change.action {
                Action::Insert => 0,
                Action::Delete => 1,
            }]);
            b.extend_from_slice(&change.edge.src.to_le_bytes());
            b.extend_from_slice(&change.edge.dst.to_le_bytes());
        },
    );
}

/// Append one degree delta to `out`'s open DEG_DELTA frame. Layout
/// matches [`encode_deg_deltas`].
pub fn append_deg_delta(
    out: &mut elga_net::CoalescingOutbox,
    vertex: VertexId,
    dout: i64,
    din: i64,
) {
    out.append(
        packet::DEG_DELTA,
        0,
        |_| {},
        |b| {
            b.extend_from_slice(&vertex.to_le_bytes());
            b.extend_from_slice(&(dout as u64).to_le_bytes());
            b.extend_from_slice(&(din as u64).to_le_bytes());
        },
    );
}

/// Description of an in-progress run, handed to late-joining agents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunInfo {
    /// Run identifier.
    pub run_id: u64,
    /// Program spec tag.
    pub tag: u8,
    /// Program spec params.
    pub params: [u64; 3],
    /// Whether state is reused (incremental run).
    pub reuse_state: bool,
    /// Async flag.
    pub asynchronous: bool,
    /// Whether this run executes the residual delta formulation:
    /// frontier seeded from ingest-time corrections, unchanged vertices
    /// untouched. Resolved by the driver from the program's
    /// [`DeltaKind`](crate::program::DeltaKind) so every agent agrees.
    pub delta: bool,
    /// Per-vertex dangling term already baked into the carried states
    /// (total dangling mass / vertex count at the previous
    /// convergence). Filled in by the lead when it launches a delta
    /// run; vertices that first appear in this run receive it as a
    /// seed residual, since unlike pre-existing vertices they never
    /// absorbed the term into their state.
    pub dangling_base: f64,
}

/// Encode a JOIN reply: the view plus an optional in-progress run.
pub fn encode_join_reply(view: &DirectoryView, run: Option<&RunInfo>) -> Frame {
    let mut b = Frame::builder(packet::JOIN_REP).bytes(view.encode().as_bytes());
    match run {
        None => b = b.u8(0),
        Some(r) => {
            b = b
                .u8(1)
                .u64(r.run_id)
                .u8(r.tag)
                .u64(r.params[0])
                .u64(r.params[1])
                .u64(r.params[2])
                .u8(r.reuse_state as u8)
                .u8(r.asynchronous as u8)
                .u8(r.delta as u8)
                .f64(r.dangling_base);
        }
    }
    b.finish()
}

/// Decode a JOIN reply.
pub fn decode_join_reply(frame: &Frame) -> Option<(DirectoryView, Option<RunInfo>)> {
    let mut r = expect(frame, packet::JOIN_REP)?;
    let view = DirectoryView::decode_slice(r.bytes()?)?;
    let run = match r.u8()? {
        0 => None,
        _ => Some(RunInfo {
            run_id: r.u64()?,
            tag: r.u8()?,
            params: [r.u64()?, r.u64()?, r.u64()?],
            reuse_state: r.u8()? != 0,
            asynchronous: r.u8()? != 0,
            delta: r.u8()? != 0,
            dangling_base: r.f64()?,
        }),
    };
    Some((view, run))
}

/// Encode a START request/broadcast.
pub fn encode_start(run: &RunInfo) -> Frame {
    Frame::builder(packet::START)
        .u64(run.run_id)
        .u8(run.tag)
        .u64(run.params[0])
        .u64(run.params[1])
        .u64(run.params[2])
        .u8(run.reuse_state as u8)
        .u8(run.asynchronous as u8)
        .u8(run.delta as u8)
        .f64(run.dangling_base)
        .finish()
}

/// Decode a START frame.
pub fn decode_start(frame: &Frame) -> Option<RunInfo> {
    let mut r = expect(frame, packet::START)?;
    Some(RunInfo {
        run_id: r.u64()?,
        tag: r.u8()?,
        params: [r.u64()?, r.u64()?, r.u64()?],
        reuse_state: r.u8()? != 0,
        asynchronous: r.u8()? != 0,
        delta: r.u8()? != 0,
        dangling_base: r.f64()?,
    })
}

/// Run status snapshot returned by the directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStatus {
    /// Run id (0 when none has run).
    pub run_id: u64,
    /// Whether a run is in progress.
    pub running: bool,
    /// Whether the last run completed.
    pub done: bool,
    /// Supersteps completed.
    pub steps: u32,
    /// Whether a migrate barrier is outstanding (elastic change or
    /// sketch update still settling).
    pub migrating: bool,
    /// Per-superstep wall times in nanoseconds.
    pub step_nanos: Vec<u64>,
    /// Global vertex count at the last barrier.
    pub n_vertices: u64,
}

/// Encode a RUN_STATUS reply.
pub fn encode_run_status(s: &RunStatus) -> Frame {
    let mut b = Frame::builder(packet::RUN_STATUS_REP)
        .u64(s.run_id)
        .u8(s.running as u8)
        .u8(s.done as u8)
        .u8(s.migrating as u8)
        .u32(s.steps)
        .u64(s.n_vertices)
        .u32(s.step_nanos.len() as u32);
    for &ns in &s.step_nanos {
        b = b.u64(ns);
    }
    b.finish()
}

/// Decode a RUN_STATUS reply.
pub fn decode_run_status(frame: &Frame) -> Option<RunStatus> {
    let mut r = expect(frame, packet::RUN_STATUS_REP)?;
    let run_id = r.u64()?;
    let running = r.u8()? != 0;
    let done = r.u8()? != 0;
    let migrating = r.u8()? != 0;
    let steps = r.u32()?;
    let n_vertices = r.u64()?;
    let n = r.u32()? as usize;
    let mut step_nanos = Vec::with_capacity(n.min(r.remaining() / 8));
    for _ in 0..n {
        step_nanos.push(r.u64()?);
    }
    Some(RunStatus {
        run_id,
        running,
        done,
        migrating,
        steps,
        step_nanos,
        n_vertices,
    })
}

/// Encode a RESET_LABELS broadcast (incremental WCC deletion support).
pub fn encode_reset_labels(labels: &[u64]) -> Frame {
    let mut b = Frame::builder(packet::RESET_LABELS).u32(labels.len() as u32);
    for &l in labels {
        b = b.u64(l);
    }
    b.finish()
}

/// Decode a RESET_LABELS frame.
pub fn decode_reset_labels(frame: &Frame) -> Option<Vec<u64>> {
    let mut r = expect(frame, packet::RESET_LABELS)?;
    let n = r.u32()? as usize;
    let mut labels = Vec::with_capacity(n.min(r.remaining() / 8));
    for _ in 0..n {
        labels.push(r.u64()?);
    }
    Some(labels)
}

/// Encode a sketch delta (request to the lead directory; the reply is
/// the refreshed VIEW).
pub fn encode_sketch_delta(sketch: &CountMinSketch) -> Frame {
    let mut raw = Vec::with_capacity(sketch.width() * sketch.depth() * 4);
    for row in 0..sketch.depth() {
        for col in 0..sketch.width() {
            raw.extend_from_slice(&sketch.cell(row, col).to_le_bytes());
        }
    }
    Frame::builder(packet::SKETCH_DELTA)
        .u32(sketch.width() as u32)
        .u32(sketch.depth() as u32)
        .u64(sketch.items())
        .bytes(&raw)
        .finish()
}

/// Decode a SKETCH_DELTA frame.
pub fn decode_sketch_delta(frame: &Frame) -> Option<CountMinSketch> {
    let mut r = expect(frame, packet::SKETCH_DELTA)?;
    let width = r.u32()? as usize;
    let depth = r.u32()? as usize;
    let items = r.u64()?;
    let raw = r.bytes()?;
    let expected = width.checked_mul(depth).and_then(|x| x.checked_mul(4))?;
    if raw.len() != expected {
        return None;
    }
    let cells: Vec<u32> = raw
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    CountMinSketch::from_parts(width, depth, cells, items)
}

/// Encode a HEARTBEAT push from an agent.
pub fn encode_heartbeat(agent: AgentId) -> Frame {
    Frame::builder(packet::HEARTBEAT).u64(agent).finish()
}

/// Decode a HEARTBEAT frame.
pub fn decode_heartbeat(frame: &Frame) -> Option<AgentId> {
    expect(frame, packet::HEARTBEAT)?.u64()
}

/// Failure-recovery broadcast published by the lead directory after it
/// declares an agent dead: survivors drop all graph state and counters,
/// adopt the embedded view, and settle a fresh migrate barrier; the
/// driver replays the retained change log and restarts any aborted run.
#[derive(Debug, Clone)]
pub struct Recover {
    /// The post-eviction view epoch.
    pub epoch: u64,
    /// The agent declared dead.
    pub dead_agent: AgentId,
    /// Run id aborted by the failure (0 when no run was active).
    pub aborted_run: u64,
    /// The post-eviction directory view.
    pub view: DirectoryView,
}

/// Encode a RECOVER broadcast.
pub fn encode_recover(r: &Recover) -> Frame {
    Frame::builder(packet::RECOVER)
        .u64(r.epoch)
        .u64(r.dead_agent)
        .u64(r.aborted_run)
        .bytes(r.view.encode().as_bytes())
        .finish()
}

/// Decode a RECOVER frame.
pub fn decode_recover(frame: &Frame) -> Option<Recover> {
    if frame.packet_type() != packet::RECOVER {
        return None;
    }
    let mut r = frame.reader();
    let epoch = r.u64()?;
    let dead_agent = r.u64()?;
    let aborted_run = r.u64()?;
    let view = DirectoryView::decode_slice(r.bytes()?)?;
    Some(Recover {
        epoch,
        dead_agent,
        aborted_run,
        view,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> DirectoryView {
        let mut sketch = CountMinSketch::new(32, 3);
        sketch.inc(5);
        sketch.add(6, 7);
        DirectoryView {
            epoch: 42,
            batch_id: 7,
            n_vertices: 1000,
            agents: vec![
                AgentInfo {
                    id: 1,
                    addr: Addr::inproc("agent-1"),
                },
                AgentInfo {
                    id: 9,
                    addr: Addr::parse("tcp://127.0.0.1:7001").unwrap(),
                },
            ],
            sketch,
            hash: HashKind::Wang,
            virtual_agents: 100,
            replication_threshold: 4096,
            max_replicas: 16,
        }
    }

    #[test]
    fn view_roundtrip() {
        let v = sample_view();
        let decoded = DirectoryView::decode(&v.encode()).unwrap();
        assert_eq!(decoded.epoch, 42);
        assert_eq!(decoded.batch_id, 7);
        assert_eq!(decoded.n_vertices, 1000);
        assert_eq!(decoded.agents, v.agents);
        assert_eq!(decoded.sketch, v.sketch);
        assert_eq!(decoded.hash, HashKind::Wang);
        assert_eq!(decoded.degree_estimate(6), 7);
    }

    #[test]
    fn view_locator_places_edges() {
        let v = sample_view();
        let loc = v.locator();
        assert_eq!(loc.ring().len(), 2);
        let owner = loc.owner_of_edge(1, 2, 0).unwrap();
        assert!(owner == 1 || owner == 9);
        assert_eq!(v.addr_of(1), Some(&Addr::inproc("agent-1")));
        assert_eq!(v.addr_of(99), None);
    }

    #[test]
    fn view_decode_rejects_other_packets() {
        assert!(DirectoryView::decode(&Frame::signal(packet::OK)).is_none());
    }

    #[test]
    fn ckpt_save_request_and_reply_roundtrip() {
        let f = encode_ckpt_save(3, 9, 120_000);
        assert_eq!(decode_ckpt_save(&f), Some((3, 9, 120_000)));
        // The reply reuses the packet type (REQ/REP pair, like DUMP).
        let report = CkptSaveReport {
            ok: true,
            bytes: 4096,
            nanos: 1_234_567,
        };
        let decoded = decode_ckpt_save_reply(&encode_ckpt_save_reply(&report)).unwrap();
        assert_eq!(decoded, report);
        assert!(decode_ckpt_save(&Frame::signal(packet::OK)).is_none());
    }

    #[test]
    fn ckpt_edges_roundtrip() {
        let groups = vec![
            CkptEdgeGroup {
                side: Side::Out,
                vertex: 7,
                state: 99,
                has_state: true,
                rep_out_degree: 12,
                active: true,
                others: vec![1, 2, 3],
            },
            CkptEdgeGroup {
                side: Side::In,
                vertex: 8,
                state: 0,
                has_state: false,
                rep_out_degree: 0,
                active: false,
                others: vec![],
            },
        ];
        let got = decode_ckpt_edges(&encode_ckpt_edges(&groups)).unwrap();
        assert_eq!(got, groups);
    }

    #[test]
    fn ckpt_meta_roundtrip_preserves_both_degrees() {
        let recs = vec![
            CkptMetaRecord {
                vertex: 5,
                state: 17,
                has_state: true,
                active: true,
                dirty: false,
                is_meta: true,
                g_out: 3,
                g_in: -2,
                residual: 0.25f64.to_bits(),
                has_residual: true,
            },
            CkptMetaRecord {
                vertex: 6,
                state: 0,
                has_state: false,
                active: false,
                dirty: true,
                is_meta: false,
                g_out: 0,
                g_in: 0,
                residual: 0,
                has_residual: false,
            },
        ];
        let got = decode_ckpt_meta(&encode_ckpt_meta(&recs)).unwrap();
        assert_eq!(got, recs);
        assert!(decode_ckpt_meta(&encode_ckpt_edges(&[])).is_none());
    }

    #[test]
    fn edge_changes_roundtrip() {
        let changes = vec![EdgeChange::insert(1, 2), EdgeChange::delete(3, 4)];
        let f = encode_edge_changes(Side::In, 2, &changes);
        let view = decode_edge_changes(&f).unwrap();
        assert_eq!(view.side, Side::In);
        assert_eq!(view.hop, 2);
        assert_eq!(view.records.len(), changes.len());
        assert_eq!(view.records.to_vec(), changes);
    }

    #[test]
    fn vmsg_and_partial_roundtrip() {
        let msgs = vec![(10u64, 0.5f64.to_bits()), (11, 7)];
        let f = encode_vmsgs(3, 4, &msgs);
        let view = decode_vmsgs(&f).unwrap();
        assert_eq!((view.run, view.step), (3, 4));
        assert_eq!(view.records.to_vec(), msgs);
        let f = encode_partials(3, 4, &msgs);
        let view = decode_partials(&f).unwrap();
        assert_eq!((view.run, view.step), (3, 4));
        assert_eq!(view.records.to_vec(), msgs);
    }

    #[test]
    fn state_roundtrip() {
        let recs = vec![StateRecord {
            vertex: 8,
            state: 0.25f64.to_bits(),
            out_degree: 12,
            aux: 0.0625f64.to_bits(),
            active: true,
        }];
        let f = encode_states(1, 2, &recs);
        let view = decode_states(&f).unwrap();
        assert_eq!((view.run, view.step), (1, 2));
        assert_eq!(view.records.to_vec(), recs);
    }

    #[test]
    fn ready_advance_roundtrip() {
        let rep = ReadyReport {
            agent: 5,
            run: 2,
            step: 9,
            phase: Phase::Combine,
            counters: Counters {
                vmsg_sent: 10,
                vmsg_recv: 10,
                part_sent: 3,
                part_recv: 2,
                ..Counters::default()
            },
            active: 4,
            global_contrib: 0.125,
            n_primary: 77,
            seq: 12,
            epoch: 6,
        };
        assert_eq!(decode_ready(&encode_ready(&rep)).unwrap(), rep);

        let adv = Advance {
            run: 2,
            step: 9,
            phase: Phase::Apply,
            n_vertices: 100,
            global: 1.5,
            done: false,
        };
        assert_eq!(decode_advance(&encode_advance(&adv)).unwrap(), adv);
    }

    #[test]
    fn counters_settled_and_add() {
        let a = Counters {
            vmsg_sent: 5,
            vmsg_recv: 2,
            ..Counters::default()
        };
        let b = Counters {
            vmsg_recv: 3,
            ..Counters::default()
        };
        assert!(!a.settled());
        assert!(a.add(&b).settled());
        assert!(Counters::default().settled());
    }

    #[test]
    fn mig_meta_roundtrip() {
        let recs = vec![
            MetaRecord {
                vertex: 3,
                state: 99,
                out_degree: 4,
                active: true,
                dirty: false,
                has_state: true,
                has_meta: true,
                ppartial: 0,
                has_ppartial: false,
                wait_recv: 0,
                residual: 0.5f64.to_bits(),
                has_residual: true,
                snap: 98,
                has_snap: true,
            },
            // Pure async-state handoff: no meta payload, but a live
            // waiting set mid-accumulation.
            MetaRecord {
                vertex: 7,
                state: 0,
                out_degree: 0,
                active: false,
                dirty: false,
                has_state: false,
                has_meta: false,
                ppartial: 41,
                has_ppartial: true,
                wait_recv: 2,
                residual: 0,
                has_residual: false,
                snap: 0,
                has_snap: false,
            },
        ];
        assert_eq!(
            decode_mig_meta(&encode_mig_meta(&recs, 6, 11)).unwrap(),
            (6, 11, recs)
        );
    }

    #[test]
    fn phase_wire_codes_roundtrip() {
        for p in [Phase::Scatter, Phase::Combine, Phase::Apply, Phase::Migrate] {
            assert_eq!(Phase::from_u8(p as u8), Some(p));
        }
        assert_eq!(Phase::from_u8(99), None);
    }

    #[test]
    fn deg_delta_roundtrip_with_negatives() {
        let deltas = vec![(5u64, -2i64, 3i64), (9, 1, -1)];
        assert_eq!(
            decode_deg_deltas(&encode_deg_deltas(&deltas))
                .unwrap()
                .to_vec(),
            deltas
        );
    }

    #[test]
    fn join_reply_roundtrip() {
        let view = sample_view();
        let run = RunInfo {
            run_id: 3,
            tag: 0,
            params: [1, 2, 3],
            reuse_state: true,
            asynchronous: false,
            delta: true,
            dangling_base: 0.25,
        };
        let (v2, r2) = decode_join_reply(&encode_join_reply(&view, Some(&run))).unwrap();
        assert_eq!(v2.epoch, view.epoch);
        assert_eq!(r2, Some(run));
        let (_, none) = decode_join_reply(&encode_join_reply(&view, None)).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn start_and_status_roundtrip() {
        let run = RunInfo {
            run_id: 9,
            tag: 1,
            params: [0, 0, 0],
            reuse_state: false,
            asynchronous: true,
            delta: false,
            dangling_base: 0.0,
        };
        assert_eq!(decode_start(&encode_start(&run)).unwrap(), run);

        let status = RunStatus {
            run_id: 9,
            running: false,
            done: true,
            migrating: true,
            steps: 4,
            step_nanos: vec![100, 200, 300, 400],
            n_vertices: 55,
        };
        assert_eq!(
            decode_run_status(&encode_run_status(&status)).unwrap(),
            status
        );
    }

    #[test]
    fn reset_labels_roundtrip() {
        let labels = vec![1u64, 5, 1 << 40];
        assert_eq!(
            decode_reset_labels(&encode_reset_labels(&labels)).unwrap(),
            labels
        );
    }

    #[test]
    fn sketch_delta_roundtrip() {
        let mut s = CountMinSketch::new(16, 2);
        s.add(3, 9);
        let back = decode_sketch_delta(&encode_sketch_delta(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn heartbeat_roundtrip() {
        assert_eq!(decode_heartbeat(&encode_heartbeat(17)), Some(17));
    }

    #[test]
    fn recover_roundtrip() {
        let rec = Recover {
            epoch: 8,
            dead_agent: 3,
            aborted_run: 2,
            view: sample_view(),
        };
        let back = decode_recover(&encode_recover(&rec)).unwrap();
        assert_eq!(back.epoch, 8);
        assert_eq!(back.dead_agent, 3);
        assert_eq!(back.aborted_run, 2);
        assert_eq!(back.view.epoch, rec.view.epoch);
        assert_eq!(back.view.agents, rec.view.agents);
        assert!(decode_recover(&Frame::signal(packet::OK)).is_none());
    }

    #[test]
    fn truncated_frames_decode_to_none() {
        let f = Frame::builder(packet::READY).u64(1).finish();
        assert!(decode_ready(&f).is_none());
        let f = Frame::builder(packet::VMSG).u64(1).u32(0).u32(5).finish();
        assert!(decode_vmsgs(&f).is_none());
    }

    #[test]
    fn wrong_packet_type_decodes_to_none() {
        // A VMSG payload under the PARTIAL packet type (and vice versa)
        // must be rejected even though the layouts agree.
        let msgs = vec![(1u64, 2u64)];
        assert!(decode_partials(&encode_vmsgs(0, 0, &msgs)).is_none());
        assert!(decode_vmsgs(&encode_partials(0, 0, &msgs)).is_none());
        let junk = Frame::signal(packet::OK);
        assert!(decode_edge_changes(&junk).is_none());
        assert!(decode_states(&junk).is_none());
        assert!(decode_ready(&junk).is_none());
        assert!(decode_advance(&junk).is_none());
        assert!(decode_mig_meta(&junk).is_none());
        assert!(decode_deg_deltas(&junk).is_none());
        assert!(decode_join_reply(&junk).is_none());
        assert!(decode_start(&junk).is_none());
        assert!(decode_run_status(&junk).is_none());
        assert!(decode_reset_labels(&junk).is_none());
        assert!(decode_sketch_delta(&junk).is_none());
        assert!(decode_heartbeat(&junk).is_none());
    }

    /// Run `f` against a fresh coalescing outbox and return the single
    /// flushed frame.
    fn coalesced(f: impl FnOnce(&mut elga_net::CoalescingOutbox)) -> Frame {
        use elga_net::{CoalesceConfig, CoalescingOutbox, InProcTransport, Transport};
        let t = InProcTransport::new();
        let addr = Addr::inproc("msg-append-eq");
        let mb = t.bind(&addr).unwrap();
        let mut c = CoalescingOutbox::new(t.sender(&addr).unwrap(), CoalesceConfig::default());
        f(&mut c);
        c.flush();
        mb.recv().unwrap().frame
    }

    #[test]
    fn append_vmsg_matches_batch_encoder() {
        let msgs = vec![(10u64, 0.5f64.to_bits()), (11, 7)];
        let f = coalesced(|c| {
            for &(t, v) in &msgs {
                append_vmsg(c, 3, 4, t, v);
            }
        });
        assert_eq!(f.as_bytes(), encode_vmsgs(3, 4, &msgs).as_bytes());
    }

    #[test]
    fn append_partial_matches_batch_encoder() {
        let parts = vec![(8u64, 21u64), (9, 22)];
        let f = coalesced(|c| {
            for &(t, v) in &parts {
                append_partial(c, 5, 6, t, v);
            }
        });
        assert_eq!(f.as_bytes(), encode_partials(5, 6, &parts).as_bytes());
    }

    #[test]
    fn append_state_matches_batch_encoder() {
        let recs = vec![
            StateRecord {
                vertex: 8,
                state: 0.25f64.to_bits(),
                out_degree: 12,
                aux: 0.125f64.to_bits(),
                active: true,
            },
            StateRecord {
                vertex: 9,
                state: 1,
                out_degree: 0,
                aux: 0,
                active: false,
            },
        ];
        let f = coalesced(|c| {
            for r in &recs {
                append_state(c, 1, 2, r);
            }
        });
        assert_eq!(f.as_bytes(), encode_states(1, 2, &recs).as_bytes());
    }

    #[test]
    fn residual_roundtrip_and_append_match() {
        let residuals = vec![(4u64, 0.5f64.to_bits()), (11, (-0.25f64).to_bits())];
        let batch = encode_residuals(&residuals);
        assert_eq!(
            decode_residuals(&batch).unwrap().to_vec(),
            residuals,
            "batch roundtrip"
        );
        let f = coalesced(|c| {
            for &(v, d) in &residuals {
                append_residual(c, v, d);
            }
        });
        assert_eq!(f.as_bytes(), batch.as_bytes());
    }

    #[test]
    fn query_batch_roundtrip() {
        let vertices = vec![3u64, 99, 1 << 50];
        let f = encode_query_batch(&vertices);
        assert_eq!(decode_query_batch(&f).unwrap().to_vec(), vertices);
        let answers = vec![
            QueryAnswer {
                vertex: 3,
                state: 0.5f64.to_bits(),
                found: ANSWER_HIT,
            },
            QueryAnswer {
                vertex: 99,
                state: 0,
                found: ANSWER_GONE,
            },
        ];
        let rep = encode_query_batch_rep(7, 120_000, &answers);
        let (run, watermark, recs) = decode_query_batch_rep(&rep).unwrap();
        assert_eq!((run, watermark), (7, 120_000));
        assert_eq!(recs.to_vec(), answers);
    }

    #[test]
    fn sub_reg_roundtrip() {
        let addr = Addr::parse("inproc://client-7-sub").unwrap();
        let vertices = vec![5u64, 6, 7];
        let f = encode_sub_reg(&addr, 42, &vertices);
        let (a, sub, recs) = decode_sub_reg(&f).unwrap();
        assert_eq!(a, addr);
        assert_eq!(sub, 42);
        assert_eq!(recs.to_vec(), vertices);
    }

    #[test]
    fn sub_push_coalesced_roundtrip() {
        let pushes = vec![(10u64, 0.125f64.to_bits()), (11, 9u64)];
        let f = coalesced(|c| {
            for &(v, s) in &pushes {
                append_sub_push(c, 42, 3, 500, v, s);
            }
        });
        let (sub, run, watermark, recs) = decode_sub_push(&f).unwrap();
        assert_eq!((sub, run, watermark), (42, 3, 500));
        assert_eq!(recs.to_vec(), pushes);
    }

    #[test]
    fn arm_delta_and_dangling_roundtrip() {
        let f = encode_arm_delta(2, [0.85f64.to_bits(), 7, 9], 1000);
        assert_eq!(
            decode_arm_delta(&f),
            Some((2, [0.85f64.to_bits(), 7, 9], 1000))
        );
        let f = encode_dangling_rep(0.25, 900);
        assert_eq!(decode_dangling_rep(&f), Some((0.25, 900)));
        let f = encode_dangling_set(0.25, 900, -0.0625);
        assert_eq!(decode_dangling_set(&f), Some((0.25, 900, -0.0625)));
    }

    #[test]
    fn append_edge_change_matches_batch_encoder() {
        let changes = vec![EdgeChange::insert(1, 2), EdgeChange::delete(3, 4)];
        let f = coalesced(|c| {
            for ch in &changes {
                append_edge_change(c, Side::In, 2, ch);
            }
        });
        assert_eq!(
            f.as_bytes(),
            encode_edge_changes(Side::In, 2, &changes).as_bytes()
        );
    }

    #[test]
    fn append_deg_delta_matches_batch_encoder() {
        let deltas = vec![(5u64, -2i64, 3i64), (9, 1, -1)];
        let f = coalesced(|c| {
            for &(v, dout, din) in &deltas {
                append_deg_delta(c, v, dout, din);
            }
        });
        assert_eq!(f.as_bytes(), encode_deg_deltas(&deltas).as_bytes());
    }

    #[test]
    fn append_header_switch_preserves_record_order() {
        // Interleaving steps forces switch flushes; decoded record
        // order must equal append order within each frame.
        use elga_net::{CoalesceConfig, CoalescingOutbox, InProcTransport, Transport};
        let t = InProcTransport::new();
        let addr = Addr::inproc("msg-append-switch");
        let mb = t.bind(&addr).unwrap();
        let mut c = CoalescingOutbox::new(t.sender(&addr).unwrap(), CoalesceConfig::default());
        append_vmsg(&mut c, 1, 0, 100, 1);
        append_vmsg(&mut c, 1, 0, 101, 2);
        append_vmsg(&mut c, 1, 1, 102, 3);
        c.flush();
        let f0 = mb.recv().unwrap().frame;
        let v0 = decode_vmsgs(&f0).unwrap();
        assert_eq!(
            (v0.step, v0.records.to_vec()),
            (0, vec![(100, 1), (101, 2)])
        );
        let f1 = mb.recv().unwrap().frame;
        let v1 = decode_vmsgs(&f1).unwrap();
        assert_eq!((v1.step, v1.records.to_vec()), (1, vec![(102, 3)]));
    }
}
