//! The directory system (paper §3.3).
//!
//! "Inside of the directory system, there are Directories and a single
//! DirectoryMaster. The DirectoryMaster serves as a bootstrap service
//! ... When Agents join or leave, or the graph changes enough to
//! impact load balancing, Agents inform their respective Directory
//! server. To keep each Directory in sync, all Directories internally
//! broadcast messages appropriately."
//!
//! One directory (id 0) acts as the *lead*: it owns the authoritative
//! [`DirectoryView`], evaluates every barrier, and publishes VIEW /
//! START / ADVANCE / SHUTDOWN frames on the global bus. Non-lead
//! directories serve their connected agents by relaying reports to the
//! lead and mirroring broadcasts — the paper's "Directories re-broadcast
//! ready messages among themselves" (Figure 2, step 4).
//!
//! Every barrier uses the same condition: all members have reported
//! the current (run, step, phase) *and* the summed cumulative counters
//! are settled (every sent counter equals its received counter) —
//! Mattern-style double counting, which makes in-flight and
//! out-of-order messages harmless.

use crate::config::SystemConfig;
use crate::metrics::{AgentMetrics, ClusterMetrics};
use crate::msg::{
    self, packet, Advance, AgentInfo, Counters, DirectoryView, Phase, ReadyReport, RunInfo,
    RunStatus,
};
use elga_hash::AgentId;
use elga_net::{Addr, Frame, Mailbox, NetError, Publisher, Transport};
use elga_sketch::CountMinSketch;
use elga_trace::{EventKind, Tracer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Coordination state for an in-progress run.
#[derive(Debug)]
struct Run {
    info: RunInfo,
    max_steps: Option<u32>,
    step: u32,
    phase: Phase,
    n_vertices: u64,
    global: f64,
    started: Instant,
    step_started: Instant,
    step_nanos: Vec<u64>,
    /// Async: id of the outstanding confirmation probe.
    probe: u32,
    /// Async: counter sums at the previous successful probe.
    last_probe_sums: Option<Counters>,
    /// Async mode entered (after initialization phases).
    async_live: bool,
    /// Delta runs: dangling-mass change reported but not yet
    /// redistributed (async protocol; sync runs ride the per-step
    /// global reduce instead).
    dangling_pending: f64,
    /// Last cumulative dangling value seen per agent; reports
    /// telescope `new - seen` into `dangling_pending`, which makes
    /// re-sent or stale values self-correcting.
    dangling_seen: HashMap<AgentId, f64>,
    /// Id of the last redistribution round published.
    dangling_round: u32,
    /// Threshold below which redistribution stops (from the program).
    dangling_eps: f64,
}

/// The lead directory's full coordination state. Separated from the
/// I/O loop so barrier logic is unit-testable.
struct Lead {
    view: DirectoryView,
    publisher: Publisher,
    transport: Arc<dyn Transport>,
    reports: HashMap<AgentId, ReadyReport>,
    metrics: HashMap<AgentId, AgentMetrics>,
    run: Option<Run>,
    next_run_id: u64,
    pending_joins: Vec<AgentInfo>,
    pending_leaves: Vec<AgentId>,
    pending_sketch: Vec<CountMinSketch>,
    /// Epoch of the outstanding migrate barrier, if any.
    migrate_epoch: Option<u64>,
    /// Members of the outstanding migrate barrier (view agents plus
    /// departers).
    migrate_members: Vec<AgentId>,
    /// Agents currently draining before departure.
    departing: Vec<AgentId>,
    /// Final counter totals of agents that already departed; included
    /// in every sum so cumulative counts stay balanced.
    ghost: Counters,
    /// Resume point once a mid-run migrate barrier settles.
    resume: Option<Advance>,
    /// A run requested while the system was migrating; starts once the
    /// barrier settles.
    pending_start: Option<RunInfo>,
    last_status: RunStatus,
    /// Last heartbeat (or any agent-originated push) per live agent.
    last_seen: HashMap<AgentId, Instant>,
    /// Agents declared dead and evicted by failure detection.
    agents_recovered: u64,
    /// The broadcast that opened the outstanding migrate barrier
    /// (VIEW or RECOVER), kept for re-publication: a joiner whose bus
    /// subscription registers a moment after its JOIN is handled
    /// misses the original broadcast, and without a repeat it can
    /// never send the READY that settles the barrier.
    barrier_broadcast: Option<Frame>,
    /// When the barrier broadcast was last published.
    barrier_published: Instant,
    /// Dangling-mass accumulator handed over by departing agents
    /// (their unreported ingest-era changes); absorbed into the next
    /// delta run's first scatter reduce.
    dangling_carry: f64,
    /// Running total of the system's dangling mass `S`, tracked from
    /// the reported deltas (and re-based exactly by every full run's
    /// final scatter reduce). With [`Lead::dangling_n`] it names the
    /// `d·S/n` term baked into the carried vertex state, so a delta
    /// run starting under a different vertex count can publish the
    /// equivalent mass shift `S·(n0−n1)/n0` and re-base the term —
    /// the dangling analogue of the per-vertex teleport reseed.
    dangling_mass: f64,
    /// Vertex count `dangling_mass` was last redistributed under;
    /// 0 = unknown (no run yet, or a recovery reset), which skips the
    /// re-base shift.
    dangling_n: u64,
    /// Event recorder (view changes, heartbeat misses, recoveries);
    /// disabled unless `cfg.tracing`.
    tracer: Arc<Tracer>,
}

impl Lead {
    fn new(cfg: &SystemConfig, publisher: Publisher, transport: Arc<dyn Transport>) -> Self {
        Lead {
            view: DirectoryView {
                epoch: 1,
                batch_id: 0,
                n_vertices: 0,
                agents: Vec::new(),
                sketch: CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth),
                hash: cfg.hash,
                virtual_agents: cfg.virtual_agents,
                replication_threshold: cfg.replication_threshold,
                max_replicas: cfg.max_replicas,
            },
            publisher,
            transport,
            reports: HashMap::new(),
            metrics: HashMap::new(),
            run: None,
            next_run_id: 1,
            pending_joins: Vec::new(),
            pending_leaves: Vec::new(),
            pending_sketch: Vec::new(),
            migrate_epoch: None,
            migrate_members: Vec::new(),
            departing: Vec::new(),
            ghost: Counters::default(),
            resume: None,
            pending_start: None,
            last_status: RunStatus::default(),
            last_seen: HashMap::new(),
            agents_recovered: 0,
            barrier_broadcast: None,
            barrier_published: Instant::now(),
            dangling_carry: 0.0,
            dangling_mass: 0.0,
            dangling_n: 0,
            tracer: Arc::new(Tracer::from_flag(cfg.tracing)),
        }
    }

    /// Fold a report's cumulative dangling-mass value into the run's
    /// pending redistribution (async delta runs only). Every READY an
    /// agent sends while such a run is live carries its cumulative
    /// value, so differences telescope to the true total even across
    /// re-sends, migrations, and departures.
    fn note_dangling(&mut self, rep: &ReadyReport) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        if !(run.async_live && run.info.delta && run.info.run_id == rep.run) {
            return;
        }
        let seen = run
            .dangling_seen
            .insert(rep.agent, rep.global_contrib)
            .unwrap_or(0.0);
        run.dangling_pending += rep.global_contrib - seen;
        self.dangling_mass += rep.global_contrib - seen;
    }

    /// Re-publish the broadcast that opened the current migrate
    /// barrier if it has been outstanding for a while. Subscriptions
    /// race joins (an agent subscribes, then JOINs; the view bump
    /// publishes during JOIN handling), so the opening broadcast can
    /// be lost; adoption is idempotent on the agent side, making a
    /// periodic repeat safe and sufficient for liveness.
    fn republish_barrier(&mut self, interval: Duration) {
        if self.migrate_epoch.is_none() || self.barrier_published.elapsed() < interval {
            return;
        }
        if let Some(f) = self.barrier_broadcast.clone() {
            self.barrier_published = Instant::now();
            self.publish(f);
        }
    }

    /// Record liveness for an agent-originated push.
    fn saw(&mut self, id: AgentId) {
        self.last_seen.insert(id, Instant::now());
    }

    fn publish(&self, frame: Frame) {
        self.publisher.publish(&frame);
    }

    fn busy(&self) -> bool {
        self.run.is_some() || self.migrate_epoch.is_some()
    }

    /// Sum counters over `members`, including ghosts of departed
    /// agents.
    fn summed(&self, members: &[AgentId]) -> Option<Counters> {
        let mut total = self.ghost;
        for id in members {
            total = total.add(&self.reports.get(id)?.counters);
        }
        Some(total)
    }

    /// All members reported the given context and counts are settled.
    fn barrier_met(&self, members: &[AgentId], run: u64, step: u32, phase: Phase) -> bool {
        for id in members {
            match self.reports.get(id) {
                Some(r) if r.run == run && r.step == step && r.phase == phase => {}
                _ => return false,
            }
        }
        self.summed(members).is_some_and(|c| c.settled())
    }

    fn member_ids(&self) -> Vec<AgentId> {
        self.view.agents.iter().map(|a| a.id).collect()
    }

    /// Apply queued membership and sketch changes: bump the epoch,
    /// broadcast the view, and open a migrate barrier.
    fn apply_membership(&mut self) {
        if self.pending_joins.is_empty()
            && self.pending_leaves.is_empty()
            && self.pending_sketch.is_empty()
        {
            return;
        }
        for j in self.pending_joins.drain(..) {
            if !self.view.agents.iter().any(|a| a.id == j.id) {
                self.view.agents.push(j);
            }
        }
        for l in self.pending_leaves.drain(..) {
            if let Some(pos) = self.view.agents.iter().position(|a| a.id == l) {
                self.view.agents.remove(pos);
                self.departing.push(l);
            }
        }
        for s in self.pending_sketch.drain(..) {
            // Mismatched deltas are a client bug; drop them rather than
            // poisoning the view.
            let _ = self.view.sketch.merge(&s);
        }
        self.view.epoch += 1;
        self.tracer.instant(
            EventKind::ViewAdopt,
            self.view.epoch,
            self.view.agents.len() as u64,
        );
        self.migrate_epoch = Some(self.view.epoch);
        self.migrate_members = self.member_ids();
        self.migrate_members.extend(self.departing.iter().copied());
        let frame = self.view.encode();
        self.barrier_broadcast = Some(frame.clone());
        self.barrier_published = Instant::now();
        self.publish(frame);
    }

    /// Send the post-drain OK to departed agents and absorb their
    /// final counters into the ghost totals.
    fn release_departers(&mut self) {
        for id in self.departing.drain(..) {
            if let Some(rep) = self.reports.remove(&id) {
                self.ghost = self.ghost.add(&rep.counters);
                // A departer's final READY carries its dangling-mass
                // report. Mid-async-run it is the final cumulative
                // value: telescope it against the seen-map entry being
                // retired. Otherwise it is the unreported accumulator,
                // carried into the next delta run's scatter reduce.
                match self.run.as_mut() {
                    Some(run) if run.async_live && run.info.delta => {
                        let seen = run.dangling_seen.remove(&id).unwrap_or(0.0);
                        run.dangling_pending += rep.global_contrib - seen;
                        self.dangling_mass += rep.global_contrib - seen;
                    }
                    _ => self.dangling_carry += rep.global_contrib,
                }
            }
            self.metrics.remove(&id);
            // The agent's mailbox address is conventional.
            if let Some(addr) = agent_addr_from_reports(id, &self.view) {
                if let Ok(out) = self.transport.sender(&addr) {
                    let _ = out.send(Frame::signal(packet::OK));
                }
            }
        }
    }

    /// View members whose last sign of life is older than the
    /// detection window. Members with no recorded liveness are stamped
    /// now rather than reported, so a freshly joined agent gets a full
    /// window before its first heartbeat is due.
    fn dead_agents(&mut self, window: Duration) -> Vec<AgentId> {
        let mut dead = Vec::new();
        for id in self.member_ids() {
            match self.last_seen.get(&id) {
                Some(t) if t.elapsed() > window => dead.push(id),
                Some(_) => {}
                None => self.saw(id),
            }
        }
        dead
    }

    /// Evict a dead agent and rewind the whole system.
    ///
    /// Exact reconciliation is impossible after an unplanned loss:
    /// messages in flight to or from the dead agent are unaccounted
    /// for, and its primary vertex state is gone. Instead survivors
    /// drop all graph state and zero their counters (so the fresh
    /// migrate barrier settles trivially), any active run is aborted,
    /// and the driver replays the retained change log before
    /// restarting the run.
    fn recover(&mut self, dead: AgentId) {
        // Fold queued joins in so a joiner racing the recovery is not
        // evicted by the broadcast view; queued leaves and departers
        // exit on receipt of RECOVER — after the reset they hold no
        // data worth draining.
        for j in self.pending_joins.drain(..) {
            if !self.view.agents.iter().any(|a| a.id == j.id) {
                self.view.agents.push(j);
            }
        }
        for l in self.pending_leaves.drain(..) {
            self.view.agents.retain(|a| a.id != l);
        }
        self.departing.clear();
        self.view.agents.retain(|a| a.id != dead);
        self.last_seen.remove(&dead);
        self.metrics.remove(&dead);
        // Queued sketch deltas describe batches that were already
        // routed; the replayed edges must see the same estimates.
        for s in self.pending_sketch.drain(..) {
            let _ = self.view.sketch.merge(&s);
        }
        // The reset rewinds every cumulative counter to zero,
        // survivors and ghosts alike. Dangling carry describes
        // pre-crash state the replay will regenerate.
        self.reports.clear();
        self.ghost = Counters::default();
        self.dangling_carry = 0.0;
        // The dangling base describes state the reset wiped; unknown
        // (n = 0) until a finished run re-establishes it.
        self.dangling_mass = 0.0;
        self.dangling_n = 0;
        self.resume = None;
        let aborted = self
            .run
            .take()
            .map(|r| r.info.run_id)
            .or_else(|| self.pending_start.take().map(|i| i.run_id))
            .unwrap_or(0);
        if aborted != 0 {
            self.last_status = RunStatus {
                run_id: aborted,
                running: false,
                done: false,
                migrating: false,
                steps: 0,
                step_nanos: Vec::new(),
                n_vertices: self.view.n_vertices,
            };
        }
        self.view.epoch += 1;
        self.tracer
            .instant(EventKind::RecoveryTrigger, self.view.epoch, dead);
        self.migrate_epoch = Some(self.view.epoch);
        self.migrate_members = self.member_ids();
        self.agents_recovered += 1;
        let frame = msg::encode_recover(&msg::Recover {
            epoch: self.view.epoch,
            dead_agent: dead,
            aborted_run: aborted,
            view: self.view.clone(),
        });
        self.barrier_broadcast = Some(frame.clone());
        self.barrier_published = Instant::now();
        self.publish(frame);
        // Zero survivors: the barrier is trivially met.
        self.evaluate();
    }

    /// Re-evaluate all outstanding barriers until no further progress
    /// is possible; called on every READY (and after start/membership
    /// changes, so zero-member edge cases cannot stall).
    fn evaluate(&mut self) {
        for _ in 0..1024 {
            if !self.evaluate_once() {
                break;
            }
        }
    }

    /// One evaluation step. Returns true when a barrier fired.
    fn evaluate_once(&mut self) -> bool {
        // Migrate barriers take precedence: nothing else advances while
        // data is moving.
        if let Some(epoch) = self.migrate_epoch {
            let members = self.migrate_members.clone();
            if !self.barrier_met(&members, 0, epoch as u32, Phase::Migrate) {
                return false;
            }
            self.migrate_epoch = None;
            self.barrier_broadcast = None;
            self.release_departers();
            self.migrate_members.clear();
            if let Some(adv) = self.resume.take() {
                if let Some(run) = self.run.as_mut() {
                    run.step = adv.step;
                    run.phase = adv.phase;
                    run.step_started = Instant::now();
                    if run.info.asynchronous && adv.phase == Phase::Scatter {
                        // Releasing (or re-releasing) the agents into
                        // event-driven execution: the resumed advance
                        // is answered by idle reports, not a sync
                        // barrier.
                        run.async_live = true;
                    }
                }
                self.publish(msg::encode_advance(&adv));
            } else if !self.busy() {
                // Chain queued membership changes, then any deferred
                // run start.
                self.apply_membership();
                if self.migrate_epoch.is_none() {
                    if let Some(info) = self.pending_start.take() {
                        self.launch_run(info);
                    }
                }
            }
            return true;
        }
        let Some(run) = self.run.as_ref() else {
            return false;
        };
        if run.async_live {
            return self.evaluate_async();
        }
        let members = self.member_ids();
        let (run_id, step, phase) = (run.info.run_id, run.step, run.phase);
        if !self.barrier_met(&members, run_id, step, phase) {
            return false;
        }
        self.on_phase_complete();
        true
    }

    /// Handle completion of the current sync phase.
    fn on_phase_complete(&mut self) {
        let members = self.member_ids();
        let phase = self.run.as_ref().expect("run").phase;
        match phase {
            Phase::Scatter => {
                let mut n = 0;
                let mut global = 0.0;
                for id in &members {
                    let r = &self.reports[id];
                    n += r.n_primary;
                    global += r.global_contrib;
                }
                // Delta runs report dangling-mass *changes* here;
                // departed agents' handed-over accumulators join the
                // same reduce so their mass is not lost. At step 0 the
                // published global additionally re-bases the dangling
                // term when the vertex count moved between runs: the
                // carried state bakes in d·S/n0, the run needs d·S/n1,
                // and a shift of S·(n0−n1)/n0 mass makes the uniform
                // share close the difference exactly.
                if self.run.as_ref().is_some_and(|r| r.info.delta) {
                    let delta_s = global + std::mem::take(&mut self.dangling_carry);
                    global = delta_s;
                    let step = self.run.as_ref().expect("run").step;
                    if step == 0 {
                        if self.dangling_n != 0 && self.dangling_n != n {
                            global += self.dangling_mass * (self.dangling_n as f64 - n as f64)
                                / self.dangling_n as f64;
                        }
                        self.dangling_n = n;
                    }
                    self.dangling_mass += delta_s;
                }
                self.view.n_vertices = n;
                let run = self.run.as_mut().expect("run");
                run.n_vertices = n;
                run.global = global;
                run.phase = Phase::Combine;
                let adv = Advance {
                    run: run.info.run_id,
                    step: run.step,
                    phase: Phase::Combine,
                    n_vertices: n,
                    global,
                    done: false,
                };
                self.publish(msg::encode_advance(&adv));
            }
            Phase::Combine => {
                let run = self.run.as_mut().expect("run");
                run.phase = Phase::Apply;
                let adv = Advance {
                    run: run.info.run_id,
                    step: run.step,
                    phase: Phase::Apply,
                    n_vertices: run.n_vertices,
                    global: run.global,
                    done: false,
                };
                self.publish(msg::encode_advance(&adv));
            }
            Phase::Apply => {
                let active: u64 = members.iter().map(|id| self.reports[id].active).sum();
                let (max_reached, converged, next) = {
                    let run = self.run.as_mut().expect("run");
                    run.step_nanos
                        .push(run.step_started.elapsed().as_nanos() as u64);
                    run.step_started = Instant::now();
                    let max_reached = run.max_steps.is_some_and(|m| run.step >= m);
                    let converged = active == 0;
                    let next = Advance {
                        run: run.info.run_id,
                        step: run.step + 1,
                        phase: Phase::Scatter,
                        n_vertices: run.n_vertices,
                        global: 0.0,
                        done: false,
                    };
                    (max_reached, converged, next)
                };
                if max_reached || converged {
                    self.finish_run();
                    return;
                }
                // Elastic scaling happens at superstep boundaries: if
                // membership changed mid-run, migrate first and resume
                // after (§3.4.3 / Figure 17). Checked before the async
                // transition so a change queued during async
                // initialization migrates now; the resume then doubles
                // as the async release (`next` is exactly the step-1
                // scatter advance, and the resume path re-arms
                // `async_live`).
                if !self.pending_joins.is_empty()
                    || !self.pending_leaves.is_empty()
                    || !self.pending_sketch.is_empty()
                {
                    self.resume = Some(next);
                    self.apply_membership();
                    return;
                }
                if self.run.as_ref().expect("run").info.asynchronous {
                    // Initialization done; release the agents into
                    // event-driven execution.
                    let run = self.run.as_mut().expect("run");
                    run.async_live = true;
                    run.step = 1;
                    run.phase = Phase::Scatter;
                    let adv = Advance {
                        run: run.info.run_id,
                        step: 1,
                        phase: Phase::Scatter,
                        n_vertices: run.n_vertices,
                        global: 0.0,
                        done: false,
                    };
                    self.publish(msg::encode_advance(&adv));
                    return;
                }
                let run = self.run.as_mut().expect("run");
                run.step = next.step;
                run.phase = Phase::Scatter;
                self.publish(msg::encode_advance(&next));
            }
            Phase::Migrate => unreachable!("migrate handled separately"),
        }
    }

    /// Async termination: all agents idle with settled counters twice
    /// in a row. Returns true when it made progress.
    fn evaluate_async(&mut self) -> bool {
        // A membership or sketch change arrived mid-async-run: pause
        // the run behind a migrate barrier. Any outstanding probe is
        // void (its responses predate the migration traffic), so the
        // probe state resets; once the barrier settles, the resume
        // advance re-releases the agents and termination detection
        // starts over.
        if !self.pending_joins.is_empty()
            || !self.pending_leaves.is_empty()
            || !self.pending_sketch.is_empty()
        {
            let resume = {
                let run = self.run.as_mut().expect("run");
                run.probe = 0;
                run.last_probe_sums = None;
                Advance {
                    run: run.info.run_id,
                    step: 1,
                    phase: Phase::Scatter,
                    n_vertices: run.n_vertices,
                    global: 0.0,
                    done: false,
                }
            };
            self.resume = Some(resume);
            self.apply_membership();
            return true;
        }
        // Reported dangling-mass changes above the program's epsilon
        // redistribute before termination detection may proceed: the
        // round's advance tells every agent to fold the uniform share
        // into its primaries' residuals. Clearing the reports (and the
        // agents re-reporting after the merge) forces a fresh idle
        // round, so the run cannot terminate past an unmerged share.
        {
            let run = self.run.as_mut().expect("run");
            if run.info.delta && run.dangling_pending.abs() > run.dangling_eps {
                let pending = run.dangling_pending;
                run.dangling_pending = 0.0;
                run.dangling_round += 1;
                run.probe = 0;
                run.last_probe_sums = None;
                let adv = Advance {
                    run: run.info.run_id,
                    step: run.dangling_round,
                    phase: Phase::Apply,
                    n_vertices: run.n_vertices,
                    global: pending,
                    done: false,
                };
                self.reports.clear();
                self.publish(msg::encode_advance(&adv));
                return false;
            }
        }
        let members = self.member_ids();
        let (run_id, probe, last_sums, n_vertices) = {
            let run = self.run.as_ref().expect("run");
            (
                run.info.run_id,
                run.probe,
                run.last_probe_sums,
                run.n_vertices,
            )
        };
        if probe > 0 {
            // Waiting on probe responses.
            let all = members.iter().all(|id| {
                self.reports.get(id).is_some_and(|r| {
                    r.run == run_id && r.phase == Phase::Combine && r.step == probe
                })
            });
            if !all {
                return false;
            }
            let Some(sums) = self.summed(&members) else {
                return false;
            };
            if sums.settled() && last_sums == Some(sums) {
                self.finish_run();
                return true;
            }
            let run = self.run.as_mut().expect("run");
            run.last_probe_sums = sums.settled().then_some(sums);
            run.probe += 1;
            let adv = Advance {
                run: run_id,
                step: run.probe,
                phase: Phase::Combine,
                n_vertices,
                global: 0.0,
                done: false,
            };
            self.publish(msg::encode_advance(&adv));
            // Progress was made, but re-evaluating immediately cannot
            // fire again until responses arrive.
            return false;
        }
        // Idle detection: every agent has sent an idle report — under
        // the current view epoch, so quiescence observed before a view
        // change can never terminate the run it resumed — and the sums
        // are settled -> start probing.
        let all_idle = members.iter().all(|id| {
            self.reports.get(id).is_some_and(|r| {
                r.run == run_id && r.step == u32::MAX && r.epoch == self.view.epoch
            })
        });
        if !all_idle {
            return false;
        }
        let Some(sums) = self.summed(&members) else {
            return false;
        };
        if !sums.settled() {
            return false;
        }
        let run = self.run.as_mut().expect("run");
        run.last_probe_sums = Some(sums);
        run.probe = 1;
        let adv = Advance {
            run: run_id,
            step: 1,
            phase: Phase::Combine,
            n_vertices,
            global: 0.0,
            done: false,
        };
        self.publish(msg::encode_advance(&adv));
        false
    }

    /// An idle report accepted while a confirmation probe is
    /// outstanding means an agent saw new traffic after (or instead
    /// of) answering — its probe response is masked by the newer idle
    /// report and will never be re-sent once the agent is quiescent.
    /// The responses collected so far may also predate that activity.
    /// Restart the double probe so both compared rounds postdate it.
    fn restart_probe(&mut self) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        run.probe += 1;
        run.last_probe_sums = None;
        let adv = Advance {
            run: run.info.run_id,
            step: run.probe,
            phase: Phase::Combine,
            n_vertices: run.n_vertices,
            global: 0.0,
            done: false,
        };
        self.publish(msg::encode_advance(&adv));
    }

    fn finish_run(&mut self) {
        let run = self.run.take().expect("finishing without run");
        if run.info.delta {
            self.dangling_n = run.n_vertices;
        } else {
            // A full run's final scatter reduce summed the dangling
            // mass exactly; re-base the running total on it (healing
            // any f64 drift the delta tracking accumulated).
            self.dangling_mass = run.global;
            self.dangling_n = run.n_vertices;
        }
        let adv = Advance {
            run: run.info.run_id,
            step: run.step,
            phase: run.phase,
            n_vertices: run.n_vertices,
            global: 0.0,
            done: true,
        };
        self.publish(msg::encode_advance(&adv));
        self.last_status = RunStatus {
            run_id: run.info.run_id,
            running: false,
            done: true,
            migrating: false,
            steps: run.step,
            step_nanos: if run.info.asynchronous {
                vec![run.started.elapsed().as_nanos() as u64]
            } else {
                run.step_nanos
            },
            n_vertices: run.n_vertices,
        };
        // Any membership changes queued during the run apply now.
        self.apply_membership();
    }

    /// Accept a run request: assigns the id immediately; the run
    /// launches now or after the outstanding migrate barrier settles.
    fn start_run(&mut self, mut info: RunInfo) -> u64 {
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        info.run_id = run_id;
        if self.busy() {
            self.pending_start = Some(info);
        } else {
            self.launch_run(info);
        }
        run_id
    }

    fn launch_run(&mut self, mut info: RunInfo) {
        // Ship the per-vertex dangling term baked into the carried
        // states: vertices first appearing in this run seed it as a
        // residual instead (they never absorbed it into their state).
        info.dangling_base = if info.delta && self.dangling_n != 0 {
            self.dangling_mass / self.dangling_n as f64
        } else {
            0.0
        };
        let spec = crate::program::ProgramSpec::decode(info.tag, info.params);
        let prog = spec.as_ref().map(|s| s.instantiate());
        let max_steps = prog.as_ref().and_then(|p| p.max_steps());
        let dangling_eps = prog
            .as_ref()
            .map_or(f64::INFINITY, |p| p.dangling_epsilon());
        if !info.delta {
            // A full run recomputes every vertex from scratch; mass
            // handed over by past departures is subsumed by it.
            self.dangling_carry = 0.0;
        }
        self.reports.clear();
        let now = Instant::now();
        let run_id = info.run_id;
        self.run = Some(Run {
            info,
            max_steps,
            step: 0,
            phase: Phase::Scatter,
            n_vertices: self.view.n_vertices,
            global: 0.0,
            started: now,
            step_started: now,
            step_nanos: Vec::new(),
            probe: 0,
            last_probe_sums: None,
            async_live: false,
            dangling_pending: 0.0,
            dangling_seen: HashMap::new(),
            dangling_round: 0,
            dangling_eps,
        });
        self.last_status = RunStatus {
            run_id,
            running: true,
            done: false,
            migrating: false,
            steps: 0,
            step_nanos: Vec::new(),
            n_vertices: self.view.n_vertices,
        };
        self.publish(msg::encode_start(&self.run.as_ref().expect("run").info));
        let adv = Advance {
            run: run_id,
            step: 0,
            phase: Phase::Scatter,
            n_vertices: self.view.n_vertices,
            global: 0.0,
            done: false,
        };
        self.publish(msg::encode_advance(&adv));
        self.evaluate();
    }

    fn status(&self) -> RunStatus {
        let mut status = match &self.run {
            Some(run) => RunStatus {
                run_id: run.info.run_id,
                running: true,
                done: false,
                migrating: false,
                steps: run.step,
                step_nanos: run.step_nanos.clone(),
                n_vertices: run.n_vertices,
            },
            None => self.last_status.clone(),
        };
        status.migrating = self.migrate_epoch.is_some()
            || !self.pending_joins.is_empty()
            || !self.pending_leaves.is_empty()
            || !self.pending_sketch.is_empty()
            || self.pending_start.is_some();
        status
    }
}

/// The agent mailbox address convention shared by the whole workspace.
pub fn agent_addr(id: AgentId) -> Addr {
    Addr::inproc(format!("agent-{id}"))
}

/// Directory mailbox address convention.
pub fn directory_addr(id: u64) -> Addr {
    Addr::inproc(format!("dir-{id}"))
}

/// The global broadcast bus address convention.
pub fn bus_addr() -> Addr {
    Addr::inproc("bus")
}

/// DirectoryMaster bootstrap address convention.
pub fn master_addr() -> Addr {
    Addr::inproc("master")
}

fn agent_addr_from_reports(id: AgentId, view: &DirectoryView) -> Option<Addr> {
    view.addr_of(id).cloned().or(Some(agent_addr(id)))
}

/// Spawn the DirectoryMaster: a bootstrap registry handing out
/// directory addresses round-robin (§3.3: "queried once by any
/// component to find a Directory").
pub fn spawn_master(transport: Arc<dyn Transport>, addr: Addr) -> std::thread::JoinHandle<()> {
    let mailbox = transport.bind(&addr).expect("bind master");
    std::thread::Builder::new()
        .name("elga-master".into())
        .spawn(move || {
            let mut directories: Vec<Addr> = Vec::new();
            let mut next = 0usize;
            while let Ok(d) = mailbox.recv() {
                match d.frame.packet_type() {
                    packet::DIR_REGISTER => {
                        if let Some(s) = d
                            .frame
                            .reader()
                            .bytes()
                            .and_then(|b| std::str::from_utf8(b).ok())
                        {
                            if let Ok(a) = Addr::parse(s) {
                                directories.push(a);
                            }
                        }
                        if let Some(reply) = d.reply {
                            let _ = reply.send(Frame::signal(packet::OK));
                        }
                    }
                    packet::GET_DIRECTORY => {
                        let reply_frame = if directories.is_empty() {
                            Frame::signal(packet::GET_DIRECTORY)
                        } else {
                            let a = &directories[next % directories.len()];
                            next += 1;
                            Frame::builder(packet::GET_DIRECTORY)
                                .bytes(a.to_string().as_bytes())
                                .finish()
                        };
                        if let Some(reply) = d.reply {
                            let _ = reply.send(reply_frame);
                        }
                    }
                    packet::SHUTDOWN => break,
                    _ => {}
                }
            }
        })
        .expect("spawn master")
}

/// Ask the master for a directory address.
pub fn bootstrap_directory(
    transport: &dyn Transport,
    master: &Addr,
    timeout: Duration,
) -> Result<Addr, NetError> {
    let rep = transport.request(master, Frame::signal(packet::GET_DIRECTORY), timeout)?;
    let bytes = rep
        .reader()
        .bytes()
        .ok_or(NetError::Protocol("no directory registered"))?;
    let s = std::str::from_utf8(bytes).map_err(|_| NetError::Protocol("bad directory addr"))?;
    Addr::parse(s).map_err(|_| NetError::Protocol("bad directory addr"))
}

/// Spawn a Directory entity using the in-process address conventions.
///
/// Directory 0 is the lead: it binds the global bus publisher and owns
/// all coordination state. Non-lead directories relay their agents'
/// traffic to the lead (Figure 2's inter-directory re-broadcast).
pub fn spawn_directory(
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    id: u64,
    master: Addr,
) -> std::thread::JoinHandle<()> {
    let role = if id == 0 {
        DirectoryRole::Lead { bus: bus_addr() }
    } else {
        DirectoryRole::Relay {
            lead: directory_addr(0),
            bus: bus_addr(),
        }
    };
    spawn_directory_at(transport, cfg, id, master, directory_addr(id), role)
}

/// Which role a directory plays, with the addresses it needs.
#[derive(Debug, Clone)]
pub enum DirectoryRole {
    /// The lead directory: binds the broadcast bus at this address.
    Lead {
        /// PUB endpoint to bind (for TCP, a concrete port).
        bus: Addr,
    },
    /// A relay directory: forwards to the lead and watches the bus for
    /// shutdown.
    Relay {
        /// The lead directory's mailbox address.
        lead: Addr,
        /// The broadcast bus to subscribe to.
        bus: Addr,
    },
}

/// Spawn a Directory entity at explicit addresses — the
/// deployment-agnostic form used by TCP clusters, where every endpoint
/// is a concrete `tcp://host:port` (the paper's scripts configure
/// hosts the same way; see its Artifact Description).
pub fn spawn_directory_at(
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    id: u64,
    master: Addr,
    addr: Addr,
    role: DirectoryRole,
) -> std::thread::JoinHandle<()> {
    let mailbox = transport.bind(&addr).expect("bind directory");
    let actual = mailbox.addr().clone();
    // The lead's bus must be listening before this function returns:
    // participants subscribe to it immediately after their JOIN.
    let prepared = match role {
        DirectoryRole::Lead { bus } => {
            let publisher = transport.bind_publisher(&bus).expect("bind bus");
            Ok(publisher)
        }
        DirectoryRole::Relay { lead, bus } => Err((lead, bus)),
    };
    // Register with the master before serving.
    let _ = transport.request(
        &master,
        Frame::builder(packet::DIR_REGISTER)
            .bytes(actual.to_string().as_bytes())
            .finish(),
        cfg.request_timeout,
    );
    std::thread::Builder::new()
        .name(format!("elga-dir-{id}"))
        .spawn(move || match prepared {
            Ok(publisher) => lead_loop(transport, cfg, mailbox, publisher),
            Err((lead, bus)) => relay_loop(transport, cfg, mailbox, lead, bus),
        })
        .expect("spawn directory")
}

fn lead_loop(
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    mailbox: Mailbox,
    publisher: Publisher,
) {
    let mut lead = Lead::new(&cfg, publisher, transport.clone());
    let window = cfg.heartbeat_interval * cfg.heartbeat_misses;
    let mut checked = Instant::now();
    loop {
        // Failure detection ticks between messages and (throttled)
        // under load, so a busy mailbox cannot starve it.
        if cfg.failure_detection && checked.elapsed() >= cfg.heartbeat_interval {
            checked = Instant::now();
            for dead in lead.dead_agents(window) {
                lead.tracer
                    .instant(EventKind::HeartbeatMiss, dead, window.as_millis() as u64);
                lead.recover(dead);
            }
        }
        lead.republish_barrier(cfg.heartbeat_interval);
        let d = match mailbox.recv_timeout(Duration::from_millis(20)) {
            Ok(d) => d,
            Err(NetError::Timeout) => continue,
            Err(_) => break,
        };
        match d.frame.packet_type() {
            packet::READY => {
                if let Some(rep) = msg::decode_ready(&d.frame) {
                    lead.saw(rep.agent);
                    // A retransmitting transport can reorder pushes;
                    // never let a stale report overwrite a fresh one.
                    let stale = lead
                        .reports
                        .get(&rep.agent)
                        .is_some_and(|old| old.seq > rep.seq);
                    if !stale {
                        // Only idle reports from the current epoch can
                        // restart probes: a report that predates an
                        // adopted view describes traffic the resumed
                        // run has already re-scattered.
                        let probe_reset = rep.step == u32::MAX
                            && rep.epoch == lead.view.epoch
                            && lead.run.as_ref().is_some_and(|r| {
                                r.async_live && r.probe > 0 && r.info.run_id == rep.run
                            });
                        lead.note_dangling(&rep);
                        lead.reports.insert(rep.agent, rep);
                        if probe_reset {
                            lead.restart_probe();
                        }
                        lead.evaluate();
                    }
                }
            }
            packet::HEARTBEAT => {
                if let Some(id) = msg::decode_heartbeat(&d.frame) {
                    lead.saw(id);
                }
            }
            packet::JOIN => {
                let mut r = d.frame.reader();
                let info = (|| {
                    let id = r.u64()?;
                    let addr = Addr::parse(std::str::from_utf8(r.bytes()?).ok()?).ok()?;
                    Some(AgentInfo { id, addr })
                })();
                if let Some(info) = info {
                    let run_info = lead.run.as_ref().map(|r| r.info);
                    lead.saw(info.id);
                    lead.pending_joins.push(info);
                    if !lead.busy() {
                        lead.apply_membership();
                    }
                    if let Some(reply) = d.reply {
                        let _ = reply.send(msg::encode_join_reply(&lead.view, run_info.as_ref()));
                    }
                    lead.evaluate();
                } else if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
            }
            packet::LEAVE => {
                // One frame may carry any number of departing ids;
                // queueing them all before one apply_membership retires
                // the whole batch in a single view change + migration.
                let mut r = d.frame.reader();
                let mut any = false;
                while let Some(id) = r.u64() {
                    lead.pending_leaves.push(id);
                    any = true;
                }
                if any {
                    if !lead.busy() {
                        lead.apply_membership();
                    }
                    lead.evaluate();
                }
                if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
            }
            packet::SKETCH_DELTA => {
                if let Some(delta) = msg::decode_sketch_delta(&d.frame) {
                    lead.view.batch_id += 1;
                    lead.pending_sketch.push(delta);
                    if !lead.busy() {
                        lead.apply_membership();
                    }
                    lead.evaluate();
                }
                if let Some(reply) = d.reply {
                    let _ = reply.send(lead.view.encode());
                }
            }
            packet::START => {
                if let Some(info) = msg::decode_start(&d.frame) {
                    let run_id = lead.start_run(info);
                    if let Some(reply) = d.reply {
                        let _ = reply.send(Frame::builder(packet::OK).u64(run_id).finish());
                    }
                } else if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
            }
            packet::GET_VIEW => {
                if let Some(reply) = d.reply {
                    let _ = reply.send(lead.view.encode());
                }
            }
            packet::RUN_STATUS => {
                if let Some(reply) = d.reply {
                    let _ = reply.send(msg::encode_run_status(&lead.status()));
                }
            }
            packet::COUNTERS => {
                // Ghost totals of departed agents, needed by external
                // quiescence checks to balance cumulative sums.
                if let Some(reply) = d.reply {
                    let g = lead.ghost;
                    let rep = Frame::builder(packet::COUNTERS)
                        .u64(g.vmsg_sent)
                        .u64(g.vmsg_recv)
                        .u64(g.part_sent)
                        .u64(g.part_recv)
                        .u64(g.state_sent)
                        .u64(g.state_recv)
                        .u64(g.mig_sent)
                        .u64(g.mig_recv)
                        .u64(g.chg_sent)
                        .u64(g.chg_recv)
                        .finish();
                    let _ = reply.send(rep);
                }
            }
            packet::METRICS => {
                if let Some(m) = AgentMetrics::decode(&d.frame) {
                    lead.saw(m.agent);
                    lead.metrics.insert(m.agent, m);
                }
            }
            packet::GET_METRICS => {
                let mut agg = ClusterMetrics {
                    agents: lead.view.agents.len() as u64,
                    agents_recovered: lead.agents_recovered,
                    ..Default::default()
                };
                for m in lead.metrics.values() {
                    agg.absorb(m);
                }
                if let Some(reply) = d.reply {
                    let _ = reply.send(agg.encode());
                }
            }
            packet::TRACE_DUMP => {
                if let Some(reply) = d.reply {
                    let (events, dropped) = lead.tracer.drain();
                    let rep = Frame::builder(packet::TRACE_DUMP)
                        .raw(&elga_trace::encode_events(&events, dropped))
                        .finish();
                    let _ = reply.send(rep);
                }
            }
            packet::RESET_LABELS => {
                lead.publish(d.frame.clone());
                if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
            }
            packet::DANGLING_GET => {
                // Driver fetching the converged dangling book `(S, n)`
                // for the checkpoint manifest.
                if let Some(reply) = d.reply {
                    let _ = reply.send(msg::encode_dangling_rep(
                        lead.dangling_mass,
                        lead.dangling_n,
                    ));
                }
            }
            packet::DANGLING_SET => {
                // Checkpoint restore re-anchoring the telescoped
                // dangling series: adopt the manifest's converged
                // `(S, n)` and absorb the replayed suffix's drift as a
                // carry, folded into the next delta run's scatter
                // reduce exactly like a departer's residue.
                if let Some((mass, n, carry)) = msg::decode_dangling_set(&d.frame) {
                    lead.dangling_mass = mass;
                    lead.dangling_n = n;
                    lead.dangling_carry += carry;
                }
                if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
            }
            packet::SHUTDOWN => {
                lead.publish(Frame::signal(packet::SHUTDOWN));
                if let Some(reply) = d.reply {
                    let _ = reply.send(Frame::signal(packet::OK));
                }
                break;
            }
            _ => {}
        }
    }
}

/// Non-lead directories proxy their agents to the lead.
fn relay_loop(
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    mailbox: Mailbox,
    lead_addr: Addr,
    bus: Addr,
) {
    let lead_push = transport.sender(&lead_addr).expect("lead sender");
    // Exit alongside the rest of the system.
    let shutdown = transport
        .subscribe(&bus, &[packet::SHUTDOWN])
        .expect("bus subscribe");
    loop {
        if shutdown.try_recv().ok().flatten().is_some() {
            break;
        }
        let d = match mailbox.recv_timeout(Duration::from_millis(50)) {
            Ok(d) => d,
            Err(NetError::Timeout) => continue,
            Err(_) => break,
        };
        match d.frame.packet_type() {
            // Pushes relay as pushes (Figure 2 step 4: re-broadcast
            // ready messages among Directories).
            packet::READY | packet::LEAVE | packet::METRICS | packet::HEARTBEAT => {
                let _ = lead_push.send(d.frame);
            }
            packet::SHUTDOWN => break,
            // Requests relay as requests.
            _ => {
                let rep = transport.request(&lead_addr, d.frame, cfg.request_timeout);
                if let (Some(reply), Ok(frame)) = (d.reply, rep) {
                    let _ = reply.send(frame);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elga_net::InProcTransport;

    fn test_lead() -> Lead {
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let publisher = transport.bind_publisher(&Addr::inproc("test-bus")).unwrap();
        Lead::new(&SystemConfig::default(), publisher, transport)
    }

    fn ready(agent: AgentId, run: u64, step: u32, phase: Phase, c: Counters) -> ReadyReport {
        ReadyReport {
            agent,
            run,
            step,
            phase,
            counters: c,
            active: 0,
            global_contrib: 0.0,
            n_primary: 0,
            seq: 0,
            epoch: 0,
        }
    }

    fn idle(agent: AgentId, run: u64, epoch: u64) -> ReadyReport {
        ReadyReport {
            epoch,
            ..ready(agent, run, u32::MAX, Phase::Scatter, Counters::default())
        }
    }

    #[test]
    fn barrier_requires_all_members_and_settled_counts() {
        let mut lead = test_lead();
        let members = vec![1, 2];
        let unsettled = Counters {
            vmsg_sent: 5,
            vmsg_recv: 3,
            ..Default::default()
        };
        lead.reports
            .insert(1, ready(1, 7, 2, Phase::Scatter, unsettled));
        assert!(
            !lead.barrier_met(&members, 7, 2, Phase::Scatter),
            "missing member"
        );
        lead.reports
            .insert(2, ready(2, 7, 2, Phase::Scatter, Counters::default()));
        assert!(
            !lead.barrier_met(&members, 7, 2, Phase::Scatter),
            "in-flight messages"
        );
        let balancing = Counters {
            vmsg_recv: 2,
            ..Default::default()
        };
        lead.reports
            .insert(2, ready(2, 7, 2, Phase::Scatter, balancing));
        assert!(lead.barrier_met(&members, 7, 2, Phase::Scatter));
        assert!(
            !lead.barrier_met(&members, 7, 2, Phase::Combine),
            "wrong phase"
        );
    }

    #[test]
    fn ghost_counters_keep_sums_balanced_after_departure() {
        let mut lead = test_lead();
        // Agent 9 departed having sent 4 messages that agent 1 received.
        lead.ghost = Counters {
            vmsg_sent: 4,
            ..Default::default()
        };
        let c1 = Counters {
            vmsg_recv: 4,
            ..Default::default()
        };
        lead.reports.insert(1, ready(1, 1, 0, Phase::Scatter, c1));
        assert!(lead.barrier_met(&[1], 1, 0, Phase::Scatter));
    }

    #[test]
    fn membership_changes_bump_epoch_and_open_migrate_barrier() {
        let mut lead = test_lead();
        let e0 = lead.view.epoch;
        lead.pending_joins.push(AgentInfo {
            id: 5,
            addr: agent_addr(5),
        });
        lead.apply_membership();
        assert_eq!(lead.view.epoch, e0 + 1);
        assert_eq!(lead.migrate_epoch, Some(e0 + 1));
        assert_eq!(lead.migrate_members, vec![5]);
        // The migrate barrier settles once agent 5 reports.
        lead.reports.insert(
            5,
            ready(5, 0, (e0 + 1) as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
    }

    #[test]
    fn leave_moves_agent_to_departing() {
        let mut lead = test_lead();
        lead.pending_joins.push(AgentInfo {
            id: 3,
            addr: agent_addr(3),
        });
        lead.apply_membership();
        lead.migrate_epoch = None; // pretend join migration settled
        lead.pending_leaves.push(3);
        lead.apply_membership();
        assert!(lead.view.agents.is_empty());
        assert_eq!(lead.departing, vec![3]);
        assert!(lead.migrate_members.contains(&3), "departer must drain");
    }

    #[test]
    fn start_run_publishes_and_tracks_status() {
        let mut lead = test_lead();
        let run_id = lead.start_run(RunInfo {
            run_id: 0,
            tag: 1, // WCC
            params: [0, 0, 0],
            reuse_state: false,
            asynchronous: false,
            delta: false,
            dangling_base: 0.0,
        });
        assert_eq!(run_id, 1);
        // Empty membership: every barrier is trivially met, so the run
        // completes during launch.
        let st = lead.status();
        assert_eq!(st.run_id, 1);
        assert!(!st.running);
        assert!(st.done);
    }

    #[test]
    fn async_run_pauses_for_membership_and_resumes() {
        let mut lead = test_lead();
        lead.pending_joins.push(AgentInfo {
            id: 1,
            addr: agent_addr(1),
        });
        lead.apply_membership();
        let epoch = lead.view.epoch;
        lead.reports.insert(
            1,
            ready(1, 0, epoch as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
        let run_id = lead.start_run(RunInfo {
            run_id: 0,
            tag: 1, // WCC
            params: [0, 0, 0],
            reuse_state: false,
            asynchronous: true,
            delta: false,
            dangling_base: 0.0,
        });
        // Drive the sync initialization barriers (step 0).
        lead.reports
            .insert(1, ready(1, run_id, 0, Phase::Scatter, Counters::default()));
        lead.evaluate();
        lead.reports
            .insert(1, ready(1, run_id, 0, Phase::Combine, Counters::default()));
        lead.evaluate();
        let mut apply = ready(1, run_id, 0, Phase::Apply, Counters::default());
        apply.active = 1; // not converged: release into async
        lead.reports.insert(1, apply);
        lead.evaluate();
        assert!(lead.run.as_ref().unwrap().async_live);
        // A joiner arrives mid-async-run: the run pauses behind a
        // migrate barrier instead of mis-routing against a stale view.
        lead.pending_joins.push(AgentInfo {
            id: 2,
            addr: agent_addr(2),
        });
        lead.evaluate();
        let e2 = lead.view.epoch;
        assert_eq!(e2, epoch + 1);
        assert_eq!(lead.migrate_epoch, Some(e2));
        assert!(
            lead.resume.is_some(),
            "paused run must carry a resume point"
        );
        assert!(lead.run.is_some(), "the run survives the view change");
        lead.reports.insert(
            1,
            ready(1, 0, e2 as u32, Phase::Migrate, Counters::default()),
        );
        lead.reports.insert(
            2,
            ready(2, 0, e2 as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
        assert!(lead.resume.is_none());
        {
            let run = lead.run.as_ref().unwrap();
            assert!(run.async_live, "resume re-releases async execution");
            assert_eq!(run.probe, 0, "probe state resets across the pause");
        }
        // Idle reports from before the view change are not trusted.
        lead.reports.insert(1, idle(1, run_id, epoch));
        lead.reports.insert(2, idle(2, run_id, epoch));
        lead.evaluate();
        assert_eq!(
            lead.run.as_ref().unwrap().probe,
            0,
            "stale-epoch idle reports must not start a probe"
        );
        // Fresh idle reports start the confirmation probe; two
        // identical settled rounds finish the run.
        lead.reports.insert(1, idle(1, run_id, e2));
        lead.reports.insert(2, idle(2, run_id, e2));
        lead.evaluate();
        assert_eq!(lead.run.as_ref().unwrap().probe, 1);
        lead.reports
            .insert(1, ready(1, run_id, 1, Phase::Combine, Counters::default()));
        lead.reports
            .insert(2, ready(2, run_id, 1, Phase::Combine, Counters::default()));
        lead.evaluate();
        assert!(
            lead.run.is_none(),
            "double-confirmed quiescence ends the run"
        );
        assert!(lead.status().done);
    }

    #[test]
    fn membership_queued_during_async_init_migrates_before_release() {
        let mut lead = test_lead();
        lead.pending_joins.push(AgentInfo {
            id: 1,
            addr: agent_addr(1),
        });
        lead.apply_membership();
        let epoch = lead.view.epoch;
        lead.reports.insert(
            1,
            ready(1, 0, epoch as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        let run_id = lead.start_run(RunInfo {
            run_id: 0,
            tag: 1, // WCC
            params: [0, 0, 0],
            reuse_state: false,
            asynchronous: true,
            delta: false,
            dangling_base: 0.0,
        });
        lead.reports
            .insert(1, ready(1, run_id, 0, Phase::Scatter, Counters::default()));
        lead.evaluate();
        lead.reports
            .insert(1, ready(1, run_id, 0, Phase::Combine, Counters::default()));
        lead.evaluate();
        // Membership changes while step-0 initialization is finishing:
        // the migration must run before the async release.
        lead.pending_joins.push(AgentInfo {
            id: 2,
            addr: agent_addr(2),
        });
        let mut apply = ready(1, run_id, 0, Phase::Apply, Counters::default());
        apply.active = 1;
        lead.reports.insert(1, apply);
        lead.evaluate();
        let e2 = lead.view.epoch;
        assert_eq!(e2, epoch + 1);
        assert_eq!(lead.migrate_epoch, Some(e2));
        assert!(
            !lead.run.as_ref().unwrap().async_live,
            "release deferred until the migration settles"
        );
        lead.reports.insert(
            1,
            ready(1, 0, e2 as u32, Phase::Migrate, Counters::default()),
        );
        lead.reports.insert(
            2,
            ready(2, 0, e2 as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
        let run = lead.run.as_ref().unwrap();
        assert!(run.async_live, "resume doubles as the async release");
        assert_eq!((run.step, run.phase), (1, Phase::Scatter));
    }

    #[test]
    fn recover_evicts_agent_aborts_run_and_resets_counters() {
        let mut lead = test_lead();
        lead.pending_joins.push(AgentInfo {
            id: 1,
            addr: agent_addr(1),
        });
        lead.pending_joins.push(AgentInfo {
            id: 2,
            addr: agent_addr(2),
        });
        lead.apply_membership();
        let epoch = lead.view.epoch;
        lead.reports.insert(
            1,
            ready(1, 0, epoch as u32, Phase::Migrate, Counters::default()),
        );
        lead.reports.insert(
            2,
            ready(2, 0, epoch as u32, Phase::Migrate, Counters::default()),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
        let run_id = lead.start_run(RunInfo {
            run_id: 0,
            tag: 1, // WCC
            params: [0, 0, 0],
            reuse_state: false,
            asynchronous: false,
            delta: false,
            dangling_base: 0.0,
        });
        assert!(lead.run.is_some());
        lead.ghost = Counters {
            vmsg_sent: 3,
            ..Default::default()
        };
        lead.recover(2);
        assert_eq!(lead.member_ids(), vec![1]);
        assert_eq!(lead.agents_recovered, 1);
        assert!(lead.run.is_none(), "active run must abort");
        assert_eq!(
            lead.ghost,
            Counters::default(),
            "ghosts rewind with the reset"
        );
        assert_eq!(lead.migrate_epoch, Some(epoch + 1));
        let st = lead.status();
        assert_eq!(st.run_id, run_id);
        assert!(
            !st.running && !st.done,
            "aborted run is neither running nor done"
        );
        // The lone survivor reports the recover barrier with zeroed
        // counters and the system unwedges.
        lead.reports.insert(
            1,
            ready(
                1,
                0,
                (epoch + 1) as u32,
                Phase::Migrate,
                Counters::default(),
            ),
        );
        lead.evaluate();
        assert_eq!(lead.migrate_epoch, None);
    }

    #[test]
    fn silent_agents_are_detected_after_the_window() {
        let mut lead = test_lead();
        lead.view.agents.push(AgentInfo {
            id: 7,
            addr: agent_addr(7),
        });
        // First pass stamps unknown members instead of reporting them.
        assert!(lead.dead_agents(Duration::from_millis(0)).is_empty());
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(lead.dead_agents(Duration::from_millis(1)), vec![7]);
        lead.saw(7);
        assert!(lead.dead_agents(Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn addr_conventions_are_stable() {
        assert_eq!(agent_addr(3).to_string(), "inproc://agent-3");
        assert_eq!(directory_addr(0).to_string(), "inproc://dir-0");
        assert_eq!(bus_addr().to_string(), "inproc://bus");
        assert_eq!(master_addr().to_string(), "inproc://master");
    }
}
