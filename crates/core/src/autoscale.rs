//! Reactive autoscaling (paper §3.4.3, §4.9).
//!
//! "We implemented a simple reactive autoscaler that computes the
//! exponential moving average of a metric and scales to the average
//! divided by a scaling factor" — and, in the Figure 18 experiment,
//! uses a 30-second EMA of client query rates and waits 60 seconds
//! between scalings so the EMA can stabilize. [`EmaAutoscaler`] is that
//! policy with configurable windows; any [`Autoscaler`] can be plugged
//! into `Cluster::autoscale_once`.

use std::time::{Duration, Instant};

/// An autoscaling policy: observes a metric stream and emits target
/// agent counts.
pub trait Autoscaler: Send {
    /// Observe the metric (e.g. queries/second) at `now`; returns a
    /// new target agent count when the policy wants to scale.
    fn observe(&mut self, metric: f64, now: Instant) -> Option<usize>;

    /// The current target, if any has been decided.
    fn current_target(&self) -> Option<usize>;
}

/// The paper's reactive EMA policy.
#[derive(Debug, Clone)]
pub struct EmaAutoscaler {
    /// EMA time constant (paper: 30 s of query rates).
    pub window: Duration,
    /// Target = EMA / scale_factor (metric units per agent).
    pub scale_factor: f64,
    /// Lower bound on agents.
    pub min_agents: usize,
    /// Upper bound on agents.
    pub max_agents: usize,
    /// Minimum time between scalings (paper: 60 s).
    pub cooldown: Duration,
    ema: Option<f64>,
    last_observation: Option<Instant>,
    last_scale: Option<Instant>,
    target: Option<usize>,
}

impl EmaAutoscaler {
    /// A policy with the paper's structure; windows are configurable
    /// because the scaled-down experiments run in seconds, not
    /// minutes.
    pub fn new(window: Duration, scale_factor: f64, min_agents: usize, max_agents: usize) -> Self {
        assert!(scale_factor > 0.0, "scale factor must be positive");
        assert!(min_agents >= 1 && min_agents <= max_agents, "bad bounds");
        EmaAutoscaler {
            window,
            scale_factor,
            min_agents,
            max_agents,
            cooldown: window.saturating_mul(2),
            ema: None,
            last_observation: None,
            last_scale: None,
            target: None,
        }
    }

    /// Override the cooldown (default 2× window, as 60 s is to 30 s in
    /// the paper).
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// The current smoothed metric.
    pub fn ema(&self) -> Option<f64> {
        self.ema
    }

    /// The raw (unclamped, pre-cooldown) target for a metric value —
    /// what Figure 18 plots as "Target".
    pub fn ideal_target(&self, metric: f64) -> usize {
        ((metric / self.scale_factor).ceil() as usize).clamp(self.min_agents, self.max_agents)
    }
}

impl Autoscaler for EmaAutoscaler {
    fn observe(&mut self, metric: f64, now: Instant) -> Option<usize> {
        // Time-aware EMA: alpha = 1 - exp(-dt / window).
        let dt = self
            .last_observation
            .map(|t| now.saturating_duration_since(t))
            .unwrap_or(self.window);
        self.last_observation = Some(now);
        let alpha = 1.0 - (-dt.as_secs_f64() / self.window.as_secs_f64().max(1e-9)).exp();
        self.ema = Some(match self.ema {
            Some(prev) => prev + alpha * (metric - prev),
            None => metric,
        });

        let cooled = self
            .last_scale
            .is_none_or(|t| now.saturating_duration_since(t) >= self.cooldown);
        if !cooled {
            return None;
        }
        let want = self.ideal_target(self.ema.unwrap());
        if Some(want) != self.target {
            self.target = Some(want);
            self.last_scale = Some(now);
            Some(want)
        } else {
            None
        }
    }

    fn current_target(&self) -> Option<usize> {
        self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> EmaAutoscaler {
        EmaAutoscaler::new(Duration::from_secs(30), 100.0, 1, 64)
            .with_cooldown(Duration::from_secs(60))
    }

    #[test]
    fn first_observation_sets_target() {
        let mut p = policy();
        let t0 = Instant::now();
        assert_eq!(p.observe(800.0, t0), Some(8));
        assert_eq!(p.current_target(), Some(8));
    }

    #[test]
    fn cooldown_blocks_rapid_rescaling() {
        let mut p = policy();
        let t0 = Instant::now();
        p.observe(800.0, t0);
        // 10s later the load exploded, but cooldown holds.
        assert_eq!(p.observe(5000.0, t0 + Duration::from_secs(10)), None);
        // After the cooldown, the EMA has absorbed the new load.
        let next = p.observe(5000.0, t0 + Duration::from_secs(90));
        assert!(next.is_some());
        assert!(next.unwrap() > 8);
    }

    #[test]
    fn ema_smooths_spikes() {
        let mut p = policy();
        let t0 = Instant::now();
        p.observe(100.0, t0);
        // A 1-second spike barely moves a 30-second EMA.
        p.observe(10_000.0, t0 + Duration::from_secs(1));
        assert!(p.ema().unwrap() < 500.0, "ema {:?}", p.ema());
    }

    #[test]
    fn target_clamped_to_bounds() {
        let mut p = EmaAutoscaler::new(Duration::from_secs(1), 10.0, 2, 4);
        assert_eq!(p.observe(0.0, Instant::now()), Some(2));
        assert_eq!(p.ideal_target(1e9), 4);
    }

    #[test]
    fn no_signal_when_target_unchanged() {
        let mut p = policy();
        let t0 = Instant::now();
        assert_eq!(p.observe(800.0, t0), Some(8));
        assert_eq!(p.observe(800.0, t0 + Duration::from_secs(120)), None);
    }

    #[test]
    fn converges_to_step_function() {
        // Emulate Figure 18: a step in query rate; the target converges
        // to rate / scale_factor.
        let mut p = EmaAutoscaler::new(Duration::from_secs(5), 50.0, 1, 64)
            .with_cooldown(Duration::from_secs(1));
        let t0 = Instant::now();
        let mut latest = None;
        for s in 0..120 {
            let rate = if s < 10 { 100.0 } else { 1600.0 };
            if let Some(t) = p.observe(rate, t0 + Duration::from_secs(s)) {
                latest = Some(t);
            }
        }
        assert_eq!(latest, Some(32), "1600/50 = 32 agents");
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_rejected() {
        EmaAutoscaler::new(Duration::from_secs(1), 0.0, 1, 2);
    }
}
