//! Streamers: the entities that feed graph changes into ElGA (paper
//! §3.1: "Streamers send graph updates to Agents").
//!
//! A streamer batches a turnstile change stream, first pushing its
//! local count-min-sketch delta to the directory (which folds it into
//! the broadcast view — the constant-size global state that drives
//! replication decisions), then routing each change to *both* of its
//! placements: the out-edge record to `owner(src, dst)` and the
//! in-edge record to `owner(dst, src)` (Figure 3).

use crate::config::SystemConfig;
use crate::msg::{self, packet, DirectoryView, Side};
use elga_graph::types::EdgeChange;
use elga_hash::{AgentId, EdgeLocator, FxHashMap, OwnerCache};
use elga_net::{
    Addr, CoalesceConfig, CoalesceStats, CoalescingOutbox, Frame, NetError, Transport, TransportExt,
};
use elga_sketch::DegreeEstimator;
use elga_trace::{EventKind, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Records per EDGE_CHANGES frame on the eager (non-coalescing) path.
const BATCH: usize = 4096;

/// A streaming ingest client.
pub struct Streamer {
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    directory: Addr,
    view: DirectoryView,
    locator: EdgeLocator,
    /// Per-agent coalescing outboxes: change records accumulate into
    /// large frames (flushed at the end of every routed batch) instead
    /// of one frame per destination chunk.
    outboxes: FxHashMap<AgentId, CoalescingOutbox>,
    /// Counters of outboxes retired by view changes or dead peers.
    coalesce_retired: CoalesceStats,
    /// Retained suffix of the change stream: everything ingested since
    /// the last checkpoint-driven truncation, so edges lost with a dead
    /// agent can be replayed during recovery.
    log: Vec<EdgeChange>,
    /// Lifetime count of ingested change records, retained or not.
    /// `ingested - log.len()` is the global stream index of `log[0]` —
    /// the *log base* every checkpoint watermark is compared against.
    ingested: u64,
    /// Latched once the retained log exceeds `cfg.change_log_cap`, so
    /// the warning fires once per excursion instead of once per batch.
    log_warned: bool,
    /// Per-view-epoch owner memo: a change batch hashes and estimates
    /// each distinct source vertex once instead of once per edge.
    cache: OwnerCache,
    /// Event recorder (view adoption, recovery replay, coalescer
    /// flushes); disabled unless `cfg.tracing`.
    tracer: Arc<Tracer>,
}

impl Streamer {
    /// Connect to the system through a directory address.
    pub fn connect(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        directory: Addr,
    ) -> Result<Streamer, NetError> {
        let rep = transport.request(
            &directory,
            Frame::signal(packet::GET_VIEW),
            cfg.request_timeout,
        )?;
        let view = DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?;
        let locator = view.locator();
        let cache = if cfg.owner_cache {
            OwnerCache::new()
        } else {
            OwnerCache::disabled()
        };
        let tracer = Arc::new(Tracer::from_flag(cfg.tracing));
        Ok(Streamer {
            transport,
            cfg,
            directory,
            view,
            locator,
            outboxes: FxHashMap::default(),
            coalesce_retired: CoalesceStats::default(),
            log: Vec::new(),
            ingested: 0,
            log_warned: false,
            cache,
            tracer,
        })
    }

    /// The streamer's event recorder; the cluster drains it directly
    /// when collecting traces (streamers have no mailbox to query).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The streamer's current view of the system.
    pub fn view(&self) -> &DirectoryView {
        &self.view
    }

    /// Refresh the view from the directory.
    pub fn refresh(&mut self) -> Result<(), NetError> {
        let (rep, _) = self.transport.request_with_retry(
            &self.directory,
            Frame::signal(packet::GET_VIEW),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        )?;
        self.adopt(DirectoryView::decode(&rep).ok_or(NetError::Protocol("bad view"))?);
        Ok(())
    }

    fn adopt(&mut self, view: DirectoryView) {
        if view.epoch >= self.view.epoch {
            self.view = view;
            self.locator = self.view.locator();
            self.tracer.instant(
                EventKind::ViewAdopt,
                self.view.epoch,
                self.view.agents.len() as u64,
            );
            // Outboxes are always flushed by the end of route(), so
            // retiring them here cannot strand records.
            for (_, out) in self.outboxes.drain() {
                self.coalesce_retired.absorb(out.stats());
            }
        }
    }

    fn coalesce_config(&self) -> CoalesceConfig {
        if self.cfg.coalescing {
            CoalesceConfig::default()
        } else {
            CoalesceConfig::disabled()
        }
    }

    fn outbox(&mut self, agent: AgentId) -> Option<&mut CoalescingOutbox> {
        if !self.outboxes.contains_key(&agent) {
            let addr = self.view.addr_of(agent)?.clone();
            match self.transport.sender(&addr) {
                Ok(out) => {
                    let mut co = CoalescingOutbox::new(out, self.coalesce_config());
                    if self.tracer.enabled() {
                        co = co.with_tracer(self.tracer.clone());
                    }
                    self.outboxes.insert(agent, co);
                }
                Err(_) => return None,
            }
        }
        self.outboxes.get_mut(&agent)
    }

    /// Send one batch of changes: update the global sketch, adopt the
    /// refreshed view, and route every change to both placements.
    /// Returns the number of change records pushed (2× the batch size:
    /// one out-placement and one in-placement each).
    pub fn send_batch(&mut self, changes: &[EdgeChange]) -> Result<usize, NetError> {
        if changes.is_empty() {
            return Ok(0);
        }
        // 1. Degree counting: insertions grow the sketch (deletions
        //    leave it in place — count-min never decrements, keeping
        //    the estimate an upper bound; §2.4).
        let mut delta = DegreeEstimator::new(self.view.sketch.width(), self.view.sketch.depth());
        for c in changes {
            if c.is_insert() {
                delta.record_edge(c.edge.src, c.edge.dst);
            }
        }
        let (rep, _) = self.transport.request_with_retry(
            &self.directory,
            msg::encode_sketch_delta(delta.sketch()),
            self.cfg.request_timeout,
            &self.cfg.send_policy,
        )?;
        if let Some(view) = DirectoryView::decode(&rep) {
            self.adopt(view);
        }
        self.ingested += changes.len() as u64;
        if self.cfg.retain_change_log {
            self.log.extend_from_slice(changes);
            let cap = self.cfg.change_log_cap;
            if cap > 0 && self.log.len() as u64 > cap {
                if !self.log_warned {
                    self.tracer.instant(
                        EventKind::ChangeLogWarn,
                        self.log.len() as u64,
                        self.retained_bytes(),
                    );
                }
                self.log_warned = true;
            }
        }

        // 2. Route each change to both placements.
        Ok(self.route(changes))
    }

    /// Number of change records retained for recovery replay.
    pub fn retained_changes(&self) -> usize {
        self.log.len()
    }

    /// Approximate heap bytes held by the retained change log.
    pub fn retained_bytes(&self) -> u64 {
        (self.log.len() * std::mem::size_of::<EdgeChange>()) as u64
    }

    /// Lifetime count of ingested change records (retained or not).
    /// Checkpoint watermarks are cut at this value.
    pub fn ingested_records(&self) -> u64 {
        self.ingested
    }

    /// Global stream index of the first retained record — the oldest
    /// point the log alone can replay from. With retention disabled
    /// this equals [`ingested_records`](Self::ingested_records), so a
    /// recovery source must cover the stream exactly up to the present.
    pub fn log_base(&self) -> u64 {
        self.ingested - self.log.len() as u64
    }

    /// Drop retained records already covered by a durable checkpoint:
    /// everything before stream index `watermark`. Clamped to the
    /// retained range; never touches records past the watermark.
    pub fn truncate_log(&mut self, watermark: u64) {
        let drop = watermark
            .saturating_sub(self.log_base())
            .min(self.log.len() as u64) as usize;
        if drop > 0 {
            self.log.drain(..drop);
        }
        if self.cfg.change_log_cap == 0 || self.log.len() as u64 <= self.cfg.change_log_cap {
            self.log_warned = false;
        }
    }

    /// Lifetime owner-cache counters `(hits, misses)` for this
    /// streamer's ingest routing.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Lifetime coalescer counters (flush reasons, frames, records,
    /// bytes) summed over all live and retired outboxes.
    pub fn coalesce_stats(&self) -> CoalesceStats {
        let mut total = self.coalesce_retired;
        for out in self.outboxes.values() {
            total.absorb(out.stats());
        }
        total
    }

    /// Re-route the entire retained change log after a recovery reset.
    /// The reset wipes every survivor regardless of execution mode, so
    /// the driver replays this log before restarting either a
    /// synchronous or an asynchronous run.
    ///
    /// The sketch delta is *not* re-pushed — the view's sketch already
    /// counts every logged batch, and the replayed edges must see the
    /// same degree estimates — and the records are not re-logged.
    /// Returns the number of change records pushed.
    pub fn replay(&mut self) -> Result<usize, NetError> {
        self.replay_from(self.log_base())
    }

    /// Re-route the retained records at stream index `watermark` and
    /// beyond — the suffix a checkpoint at that watermark does not
    /// cover. `watermark` below the log base is clamped (the missing
    /// prefix is simply not replayable from the log). Returns the
    /// number of change records replayed.
    pub fn replay_from(&mut self, watermark: u64) -> Result<usize, NetError> {
        let t0 = Instant::now();
        self.refresh()?;
        let skip = watermark
            .saturating_sub(self.log_base())
            .min(self.log.len() as u64) as usize;
        let log = std::mem::take(&mut self.log);
        let replayed = log.len() - skip;
        let pushed = self.route(&log[skip..]);
        self.log = log;
        self.tracer.span(
            EventKind::RecoveryReplay,
            t0,
            replayed as u64,
            pushed as u64,
        );
        Ok(replayed)
    }

    /// Route each change to its two placements: the out-edge record to
    /// `owner(src, dst)` and the in-edge record to `owner(dst, src)`.
    fn route(&mut self, changes: &[EdgeChange]) -> usize {
        let mut out_batches: FxHashMap<AgentId, Vec<EdgeChange>> = FxHashMap::default();
        let mut in_batches: FxHashMap<AgentId, Vec<EdgeChange>> = FxHashMap::default();
        if self.cfg.owner_cache {
            // Batched resolution: both placements of every change in
            // one pass, with each distinct source vertex hashed and
            // sketch-estimated once per view epoch.
            self.cache.ensure_epoch(self.view.epoch);
            let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(changes.len() * 2);
            for c in changes {
                pairs.push((c.edge.src, c.edge.dst));
                pairs.push((c.edge.dst, c.edge.src));
            }
            let mut owners: Vec<Option<AgentId>> = Vec::new();
            {
                let sketch = &self.view.sketch;
                self.cache
                    .resolve_many(&self.locator, &pairs, |u| sketch.estimate(u), &mut owners);
            }
            for (i, &c) in changes.iter().enumerate() {
                if let Some(owner) = owners[2 * i] {
                    out_batches.entry(owner).or_default().push(c);
                }
                if let Some(owner) = owners[2 * i + 1] {
                    in_batches.entry(owner).or_default().push(c);
                }
            }
        } else {
            // Uncached baseline: per-edge resolution, exactly the
            // pre-cache ingest path.
            for &c in changes {
                let (u, v) = (c.edge.src, c.edge.dst);
                if let Some(owner) = self
                    .locator
                    .owner_of_edge(u, v, self.view.sketch.estimate(u))
                {
                    out_batches.entry(owner).or_default().push(c);
                }
                if let Some(owner) = self
                    .locator
                    .owner_of_edge(v, u, self.view.sketch.estimate(v))
                {
                    in_batches.entry(owner).or_default().push(c);
                }
            }
        }
        let mut pushed = 0;
        let coalescing = self.cfg.coalescing;
        for (side, batches) in [(Side::Out, out_batches), (Side::In, in_batches)] {
            for (agent, recs) in batches {
                pushed += recs.len();
                if coalescing {
                    self.append_to(agent, side, &recs);
                } else {
                    for chunk in recs.chunks(BATCH) {
                        self.push_to(agent, msg::encode_edge_changes(side, 0, chunk));
                    }
                }
            }
        }
        // A routed batch must be on the wire when send_batch returns:
        // callers quiesce against the agents right after, and records
        // parked in open frames would be invisible to them.
        self.flush_outboxes();
        pushed
    }

    /// Append the records to `agent`'s open EDGE_CHANGES frame, then
    /// hand any refused frames to the retry path.
    fn append_to(&mut self, agent: AgentId, side: Side, recs: &[EdgeChange]) {
        let failed = match self.outbox(agent) {
            Some(out) => {
                for c in recs {
                    msg::append_edge_change(out, side, 0, c);
                }
                out.has_failed()
            }
            None => false,
        };
        if failed {
            self.retry_failed(agent);
        }
    }

    /// Push a pre-built frame through the cached outbox; on failure,
    /// re-resolve the address and retry under the configured policy.
    fn push_to(&mut self, agent: AgentId, frame: Frame) {
        let failed = match self.outbox(agent) {
            Some(out) => {
                out.send(frame);
                out.has_failed()
            }
            None => false,
        };
        if failed {
            self.retry_failed(agent);
        }
    }

    /// Close every destination's open frame and push it, retrying
    /// whatever the transport refuses.
    fn flush_outboxes(&mut self) {
        let mut failed: Vec<AgentId> = Vec::new();
        for (&agent, out) in self.outboxes.iter_mut() {
            out.flush();
            if out.has_failed() {
                failed.push(agent);
            }
        }
        for agent in failed {
            self.retry_failed(agent);
        }
    }

    /// The cached outbox to `agent` is dead: retire it, re-push the
    /// refused frames with fresh senders, and re-cache a working one.
    fn retry_failed(&mut self, agent: AgentId) {
        let Some(mut dead) = self.outboxes.remove(&agent) else {
            return;
        };
        dead.flush();
        self.coalesce_retired.absorb(dead.stats());
        let frames = dead.take_failed();
        let Some(addr) = self.view.addr_of(agent).cloned() else {
            return;
        };
        let mut all_ok = true;
        for frame in frames {
            if self
                .transport
                .push_with_retry(&addr, frame, &self.cfg.send_policy)
                .is_err()
            {
                all_ok = false;
                break;
            }
        }
        if all_ok {
            if let Ok(out) = self.transport.sender(&addr) {
                let mut co = CoalescingOutbox::new(out, self.coalesce_config());
                if self.tracer.enabled() {
                    co = co.with_tracer(self.tracer.clone());
                }
                self.outboxes.insert(agent, co);
            }
        }
    }
}
