//! The single-process cluster driver.
//!
//! [`Cluster`] assembles a full ElGA deployment over the in-process
//! transport: a DirectoryMaster, one or more Directories, and N Agents,
//! each on its own OS thread — the shared-nothing topology of the
//! paper's Figure 1 with threads standing in for processes (see
//! DESIGN.md, "Substitutions"). It exposes the operations the paper's
//! evaluation drives with `pdsh` and client programs:
//!
//! * `ingest` — stream edge changes in (a Streamer);
//! * `run` / `start_run` + `wait_run` — execute vertex programs
//!   synchronously or asynchronously, optionally incrementally;
//! * `query_*` — client queries, concurrent with everything else;
//! * `add_agents` / `remove_agent` — elastic scaling, mid-run included
//!   (Figure 17: scaling is applied at superstep boundaries);
//! * `metrics` / `autoscale_once` — the reactive autoscaler loop
//!   (Figure 18).

use crate::agent::Agent;
use crate::autoscale::Autoscaler;
use crate::ckpt_codec;
use crate::client::{ClientProxy, QueryResult};
use crate::config::SystemConfig;
use crate::directory::{self, bus_addr, directory_addr, master_addr};
use crate::metrics::ClusterMetrics;
use crate::msg::{self, packet, Counters, DirectoryView, RunInfo, Side};
use crate::program::{ProgramSpec, RunOptions};
use crate::streamer::Streamer;
use elga_ckpt::CheckpointStore;
use elga_graph::types::EdgeChange;
use elga_hash::AgentId;
use elga_net::{
    Addr, DiskFault, FaultPlan, FaultyTransport, Frame, InProcTransport, Mailbox, NetError,
    ReliableTransport, Transport, TransportExt,
};
use elga_trace::{EventKind, Tracer};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Changes per ingest batch (one sketch round-trip each).
const INGEST_BATCH: usize = 16384;

/// Builder for [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    agents: usize,
    config: SystemConfig,
    chaos: Option<(FaultPlan, u64)>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            agents: 4,
            config: SystemConfig::default(),
            chaos: None,
        }
    }
}

impl ClusterBuilder {
    /// Number of initial agents (default 4).
    pub fn agents(mut self, n: usize) -> Self {
        self.agents = n.max(1);
        self
    }

    /// Number of directories (default 1; agents are assigned
    /// round-robin by the master).
    pub fn directories(mut self, n: usize) -> Self {
        self.config.directories = n.max(1);
        self
    }

    /// Full system configuration.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Replication threshold shorthand (degree per replica).
    pub fn replication_threshold(mut self, t: u64) -> Self {
        self.config.replication_threshold = t;
        self
    }

    /// Virtual agents per agent shorthand.
    pub fn virtual_agents(mut self, v: u32) -> Self {
        self.config.virtual_agents = v;
        self
    }

    /// Superstep worker threads per agent shorthand (0 = auto-detect).
    /// Results are bit-identical for any worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Whether agents and streamers coalesce same-destination records
    /// into large frames before sending (default true). Off keeps the
    /// eager one-frame-per-batch path for ablation; results are
    /// bit-identical either way.
    pub fn coalescing(mut self, on: bool) -> Self {
        self.config.coalescing = on;
        self
    }

    /// Run the whole cluster over a fault-injecting transport seeded
    /// for determinism. The chaos stack is `Reliable(Faulty(InProc))`:
    /// the reliability layer (sequence numbers, acknowledgements,
    /// retransmits) recovers every frame the fault layer drops,
    /// duplicates, or delays — including its own acknowledgements.
    pub fn chaos(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.chaos = Some((plan, seed));
        self
    }

    /// Enable durable checkpointing into `dir` (shorthand for
    /// `SystemConfig::checkpoint_dir`). Recovery then loads the newest
    /// valid generation and replays only the change-log suffix past
    /// its watermark.
    pub fn checkpoints(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// Take a checkpoint automatically after every `n` quiesced ingest
    /// calls' batches (0 disables the automatic trigger; explicit
    /// [`Cluster::checkpoint`] calls always work).
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.config.checkpoint_interval_batches = n;
        self
    }

    /// Inject disk faults (torn writes, bit corruption) into agent
    /// checkpoint writes, deterministically seeded. The driver's
    /// read-back scrub and recovery validation must absorb every one —
    /// a damaged generation is fallen past, never restored from.
    pub fn disk_chaos(mut self, fault: DiskFault, seed: u64) -> Self {
        self.config.disk_fault = Some(fault);
        self.config.disk_fault_seed = seed;
        self
    }

    /// Assemble and start the cluster.
    pub fn build(self) -> Cluster {
        let (transport, fault): (Arc<dyn Transport>, Option<Arc<FaultyTransport>>) =
            match self.chaos {
                Some((plan, seed)) => {
                    let faulty = Arc::new(FaultyTransport::new(
                        Arc::new(InProcTransport::new()),
                        plan,
                        seed,
                    ));
                    let reliable = ReliableTransport::new(faulty.clone())
                        .expect("bind reliability ack mailbox");
                    (Arc::new(reliable), Some(faulty))
                }
                None => (Arc::new(InProcTransport::new()), None),
            };
        let master = master_addr();
        let mut handles = vec![directory::spawn_master(transport.clone(), master.clone())];
        for d in 0..self.config.directories as u64 {
            handles.push(directory::spawn_directory(
                transport.clone(),
                self.config.clone(),
                d,
                master.clone(),
            ));
        }
        let tracer = Arc::new(Tracer::from_flag(self.config.tracing));
        let mut cluster = Cluster {
            transport,
            fault,
            cfg: self.config,
            master,
            lead: directory_addr(0),
            handles,
            agent_handles: HashMap::new(),
            next_agent: 1,
            streamer: None,
            proxy: None,
            alive: true,
            trace_tracks: Vec::new(),
            ckpt_store: None,
            batches_since_ckpt: 0,
            recovery: RecoveryStats::default(),
            tracer,
        };
        cluster.add_agents(self.agents);
        cluster.quiesce().expect("initial quiesce");
        cluster
    }
}

/// Wall-clock results of one run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Run identifier.
    pub run_id: u64,
    /// Supersteps executed (sync) — 0-based init step excluded.
    pub steps: u32,
    /// Per-superstep durations (sync) or the single total (async).
    pub step_durations: Vec<Duration>,
    /// Global vertex count at the end.
    pub n_vertices: u64,
    /// Total wall time observed by the driver.
    pub total: Duration,
}

impl RunStats {
    /// Mean per-iteration time, excluding the initialization step —
    /// the paper's per-iteration PageRank metric.
    pub fn mean_iteration(&self) -> Duration {
        let iters: Vec<&Duration> = self.step_durations.iter().skip(1).collect();
        if iters.is_empty() {
            return self.total;
        }
        let sum: Duration = iters.iter().copied().sum();
        sum / iters.len() as u32
    }
}

/// An in-progress run started with [`Cluster::start_run`].
///
/// Retains the program spec so the driver can restart the run when a
/// mid-run agent failure aborts it.
pub struct RunHandle {
    run_id: u64,
    sub: Mailbox,
    started: Instant,
    spec: ProgramSpec,
    options: RunOptions,
    /// Highest recovery epoch already handled for this run.
    recovered_epoch: u64,
}

/// A fully assembled in-process ElGA deployment.
pub struct Cluster {
    transport: Arc<dyn Transport>,
    /// Fault-injection handle when built with [`ClusterBuilder::chaos`].
    fault: Option<Arc<FaultyTransport>>,
    cfg: SystemConfig,
    #[allow(dead_code)]
    master: Addr,
    lead: Addr,
    handles: Vec<JoinHandle<()>>,
    agent_handles: HashMap<AgentId, JoinHandle<()>>,
    next_agent: u64,
    streamer: Option<Streamer>,
    proxy: Option<ClientProxy>,
    alive: bool,
    /// Trace buffers salvaged from participants that already left
    /// (departed agents drained just before their LEAVE). Merged into
    /// [`Cluster::collect_traces`] output.
    trace_tracks: Vec<(String, Vec<elga_trace::TraceEvent>)>,
    /// Driver-side, fault-free checkpoint store: scrubs and commits
    /// generations the agents wrote (possibly through an injector) and
    /// reads them back during recovery. Opened lazily.
    ckpt_store: Option<CheckpointStore>,
    /// Quiesced ingest batches since the last automatic checkpoint.
    batches_since_ckpt: u64,
    /// Driver-side recovery/restore accounting, merged into
    /// [`Cluster::metrics`].
    recovery: RecoveryStats,
    /// Driver-side event recorder (checkpoint restores, end-to-end
    /// recovery spans); drained as the `driver` track by
    /// [`Cluster::collect_traces`].
    tracer: Arc<Tracer>,
}

/// Driver-side recovery and checkpoint-restore accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Completed recoveries driven by this cluster handle.
    pub recoveries: u64,
    /// Total recovery wall time, RECOVER receipt through restored
    /// cluster (run restarted if one was aborted), in nanoseconds.
    pub recovery_nanos: u64,
    /// Recoveries that restored from a checkpoint generation.
    pub ckpt_restores: u64,
    /// Wall time spent reading, re-routing, and re-injecting shards.
    pub ckpt_restore_nanos: u64,
    /// Committed generations skipped as damaged before a valid one was
    /// found (the fallback ladder length, summed over recoveries).
    pub ckpt_fallbacks: u64,
    /// Change records replayed from the retained log.
    pub replayed_records: u64,
}

/// Outcome of one [`Cluster::checkpoint`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Generation written.
    pub generation: u64,
    /// View epoch at the cut.
    pub epoch: u64,
    /// Change-stream watermark the generation covers.
    pub watermark: u64,
    /// Whether the manifest was committed after the read-back scrub.
    /// False means a shard write failed or did not survive validation;
    /// earlier generations and the full change log stay intact.
    pub committed: bool,
    /// Total payload bytes across shards.
    pub bytes: u64,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The shared transport (for spawning extra Streamers/Proxies).
    pub fn transport(&self) -> Arc<dyn Transport> {
        self.transport.clone()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Address of the lead directory.
    pub fn lead_directory(&self) -> Addr {
        self.lead.clone()
    }

    fn request(&self, frame: Frame) -> Result<Frame, NetError> {
        self.transport
            .request_with_retry(
                &self.lead,
                frame,
                self.cfg.request_timeout,
                &self.cfg.send_policy,
            )
            .map(|(rep, _)| rep)
    }

    /// REQ/REP to an agent, retried under the configured policy.
    fn request_agent(&self, addr: &Addr, frame: Frame) -> Result<Frame, NetError> {
        self.transport
            .request_with_retry(addr, frame, self.cfg.request_timeout, &self.cfg.send_policy)
            .map(|(rep, _)| rep)
    }

    /// Current directory view.
    pub fn view(&self) -> DirectoryView {
        let rep = self
            .request(Frame::signal(packet::GET_VIEW))
            .expect("directory unavailable");
        DirectoryView::decode(&rep).expect("bad view")
    }

    /// Registered agent count.
    pub fn agent_count(&self) -> usize {
        self.view().agents.len()
    }

    /// Ids of the registered agents.
    pub fn agent_ids(&self) -> Vec<AgentId> {
        self.view().agents.iter().map(|a| a.id).collect()
    }

    // ------------------------------------------------------------------
    // Elasticity
    // ------------------------------------------------------------------

    /// Spawn and join `n` new agents; returns their ids. During a run,
    /// they take effect at the next superstep boundary.
    pub fn add_agents(&mut self, n: usize) -> Vec<AgentId> {
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.next_agent;
            self.next_agent += 1;
            let dir = directory::bootstrap_directory(
                self.transport.as_ref(),
                &master_addr(),
                self.cfg.request_timeout,
            )
            .unwrap_or_else(|_| self.lead.clone());
            let agent =
                Agent::join(self.transport.clone(), self.cfg.clone(), id, dir).expect("agent join");
            self.agent_handles.insert(id, agent.spawn());
            ids.push(id);
        }
        ids
    }

    /// Gracefully remove an agent: it migrates all of its data away
    /// and disconnects only once the directory confirms the drain
    /// (§3.4.3).
    pub fn remove_agent(&mut self, id: AgentId) {
        self.remove_agent_batch(&[id]);
    }

    /// Gracefully remove the `n` most recently added agents in a
    /// single view change. One LEAVE frame carries every departing id,
    /// so the directory runs one membership update and one migration
    /// barrier total — not one per agent as a `remove_agent` loop
    /// would. Returns the removed ids (may be fewer than `n` if the
    /// cluster is smaller).
    pub fn remove_agents(&mut self, n: usize) -> Vec<AgentId> {
        let mut ids: Vec<AgentId> = self.agent_handles.keys().copied().collect();
        ids.sort_unstable();
        let keep = ids.len().saturating_sub(n);
        let departing: Vec<AgentId> = ids.split_off(keep);
        self.remove_agent_batch(&departing);
        departing
    }

    fn remove_agent_batch(&mut self, ids: &[AgentId]) {
        if ids.is_empty() {
            return;
        }
        // Departing agents take their trace buffers with them; salvage
        // the events before the LEAVE makes the mailbox unreachable.
        if self.cfg.tracing {
            let view = self.view();
            for &id in ids {
                let Some(info) = view.agents.iter().find(|a| a.id == id) else {
                    continue;
                };
                if let Ok(rep) = self.request_agent(&info.addr, Frame::signal(packet::TRACE_DUMP)) {
                    if let Some((events, _dropped)) = elga_trace::decode_events(rep.payload()) {
                        self.trace_tracks.push((format!("agent-{id}"), events));
                    }
                }
            }
        }
        let mut b = Frame::builder(packet::LEAVE);
        for &id in ids {
            b = b.u64(id);
        }
        let _ = self.request(b.finish());
        for id in ids {
            if let Some(handle) = self.agent_handles.remove(id) {
                let _ = handle.join();
            }
        }
    }

    /// Remove the most recently added agent, if any. Returns its id.
    pub fn remove_last_agent(&mut self) -> Option<AgentId> {
        let id = *self.agent_handles.keys().max()?;
        self.remove_agent(id);
        Some(id)
    }

    /// Crash an agent without the LEAVE drain protocol: it dies
    /// holding its share of the graph and whatever was in flight.
    /// Failure detection must notice the silence, evict it, and
    /// broadcast RECOVER (handled by [`Cluster::wait_run`]).
    pub fn kill_agent(&mut self, id: AgentId) {
        if let Ok(out) = self.transport.sender(&directory::agent_addr(id)) {
            let _ = out.send(Frame::signal(packet::KILL));
        }
        if let Some(handle) = self.agent_handles.remove(&id) {
            let _ = handle.join();
        }
    }

    /// The fault-injection handle, when built with
    /// [`ClusterBuilder::chaos`] (drive disconnects, read drop/dup
    /// counts).
    pub fn fault(&self) -> Option<&Arc<FaultyTransport>> {
        self.fault.as_ref()
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    fn streamer(&mut self) -> &mut Streamer {
        if self.streamer.is_none() {
            self.streamer = Some(
                Streamer::connect(self.transport.clone(), self.cfg.clone(), self.lead.clone())
                    .expect("streamer connect"),
            );
        }
        self.streamer.as_mut().expect("just set")
    }

    /// Stream edge changes into the system and wait for quiescence.
    /// With `checkpoint_interval_batches` configured, a checkpoint is
    /// taken automatically once enough batches have accumulated.
    pub fn ingest(&mut self, changes: impl IntoIterator<Item = EdgeChange>) {
        let mut batches = 0u64;
        let mut buf = Vec::with_capacity(INGEST_BATCH);
        for c in changes {
            buf.push(c);
            if buf.len() == INGEST_BATCH {
                self.streamer().send_batch(&buf).expect("ingest");
                batches += 1;
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.streamer().send_batch(&buf).expect("ingest");
            batches += 1;
        }
        self.quiesce().expect("quiesce after ingest");
        self.maybe_checkpoint(batches);
    }

    /// Automatic-checkpoint trigger: fires once `batches` more ingest
    /// batches push the running count past the configured interval. A
    /// failed (uncommitted) checkpoint is not an error here — the
    /// change log was left intact, so recovery still works; the next
    /// interval retries with a fresh generation number.
    fn maybe_checkpoint(&mut self, batches: u64) {
        if self.cfg.checkpoint_interval_batches == 0 || self.cfg.checkpoint_dir.is_none() {
            return;
        }
        self.batches_since_ckpt += batches;
        if self.batches_since_ckpt >= self.cfg.checkpoint_interval_batches {
            self.batches_since_ckpt = 0;
            let _ = self.checkpoint();
        }
    }

    /// Convenience: ingest plain edges as insertions.
    pub fn ingest_edges(&mut self, edges: impl IntoIterator<Item = (u64, u64)>) {
        self.ingest(edges.into_iter().map(|(u, v)| EdgeChange::insert(u, v)));
    }

    /// Stream a batch without waiting for quiescence (dynamic-rate
    /// experiments drive this directly).
    pub fn ingest_async(&mut self, changes: &[EdgeChange]) {
        self.streamer().send_batch(changes).expect("ingest");
    }

    /// Wait until no messages are in flight anywhere: repeated DRAIN
    /// rounds over all agents until the summed counters are settled
    /// and stable, and the directory reports no outstanding migration.
    ///
    /// Bounded by `SystemConfig::quiesce_deadline`; a wedged system
    /// (e.g. a dead peer with failure detection off) yields
    /// `NetError::Timeout` instead of blocking forever.
    pub fn quiesce(&self) -> Result<(), NetError> {
        let deadline = Instant::now() + self.cfg.quiesce_deadline;
        let mut last: Option<Counters> = None;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            // Outstanding migrate barrier / queued membership?
            let migrating = self
                .request(Frame::signal(packet::RUN_STATUS))
                .ok()
                .and_then(|f| msg::decode_run_status(&f))
                .is_some_and(|s| s.migrating);
            if migrating {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            let view = self.view();
            // Departed agents' final totals (kept by the lead) balance
            // the sums of the survivors.
            let mut sum = self
                .request(Frame::signal(packet::COUNTERS))
                .ok()
                .and_then(|f| decode_counters_frame(&f))
                .unwrap_or_default();
            let mut ok = true;
            for a in &view.agents {
                match self.request_agent(&a.addr, Frame::signal(packet::DRAIN)) {
                    Ok(rep) => match decode_counters_frame(&rep) {
                        Some(c) => sum = sum.add(&c),
                        None => ok = false,
                    },
                    Err(_) => ok = false,
                }
            }
            if ok && sum.settled() && last == Some(sum) {
                return Ok(());
            }
            last = ok.then_some(sum);
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// The driver's fault-free checkpoint store, opened lazily.
    fn driver_store(&mut self) -> Result<&mut CheckpointStore, NetError> {
        if self.ckpt_store.is_none() {
            let dir = self
                .cfg
                .checkpoint_dir
                .as_ref()
                .ok_or(NetError::Protocol("checkpointing not configured"))?;
            // Deliberately without the injector: the driver's job is to
            // validate what the (possibly lying) agent disks produced.
            self.ckpt_store = Some(
                CheckpointStore::open(dir)
                    .map_err(|_| NetError::Protocol("checkpoint directory unavailable"))?,
            );
        }
        Ok(self.ckpt_store.as_mut().expect("just set"))
    }

    /// Take a durable checkpoint: quiesce, have every agent write its
    /// shard of a new generation at the current change-stream
    /// watermark, scrub the shards back through checksum validation,
    /// commit the manifest, prune old generations, and truncate the
    /// streamer's retained change log to the oldest watermark still
    /// covered by a retained generation.
    ///
    /// A failed shard write or scrub (e.g. injected torn writes) leaves
    /// the generation manifest-less and therefore invisible to
    /// recovery, and the change log untruncated: checkpointing degrades
    /// to the previous generation (or full replay), never to a wrong
    /// answer. Such an outcome is reported as `committed: false`, not
    /// an error.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, NetError> {
        if self.cfg.checkpoint_dir.is_none() {
            return Err(NetError::Protocol("checkpointing not configured"));
        }
        self.quiesce()?;
        let view = self.view();
        let watermark = self.streamer().ingested_records();
        let generation = self
            .driver_store()?
            .generations()
            .last()
            .copied()
            .unwrap_or(0)
            + 1;
        let mut report = CheckpointReport {
            generation,
            epoch: view.epoch,
            watermark,
            committed: false,
            bytes: 0,
        };
        let mut all_ok = true;
        for a in &view.agents {
            let rep = self.request_agent(
                &a.addr,
                msg::encode_ckpt_save(generation, view.epoch, watermark),
            )?;
            match msg::decode_ckpt_save_reply(&rep) {
                Some(r) if r.ok => report.bytes += r.bytes,
                _ => all_ok = false,
            }
        }
        if !all_ok {
            return Ok(report);
        }
        // The converged dangling book `(S, n)` rides the manifest so a
        // restore can re-anchor the delta engine's telescoped dangling
        // series at this cut instead of losing it with the recovery
        // reset.
        let dangling = self
            .request(msg::encode_dangling_get())
            .ok()
            .and_then(|rep| msg::decode_dangling_rep(&rep))
            .unwrap_or((0.0, 0));
        let agents: Vec<u64> = view.agents.iter().map(|a| a.id).collect();
        let keep = self.cfg.checkpoint_keep.max(1);
        let store = self.driver_store()?;
        if store
            .commit(generation, view.epoch, watermark, dangling, &agents)
            .is_err()
        {
            return Ok(report);
        }
        report.committed = true;
        let _ = store.prune(keep);
        // The log must still reach back to every retained generation's
        // watermark, or the fallback ladder would leave a replay gap.
        let oldest = store
            .generations()
            .iter()
            .filter_map(|&g| store.manifest(g).ok())
            .map(|m| m.watermark)
            .min()
            .unwrap_or(watermark);
        self.streamer().truncate_log(oldest);
        Ok(report)
    }

    /// Driver-side recovery and checkpoint-restore counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Change-log accounting: `(retained records, retained bytes,
    /// log base, lifetime ingested records)` of the embedded streamer.
    /// The log base is the global stream index of the oldest retained
    /// record — everything before it must be covered by a checkpoint.
    pub fn change_log_stats(&mut self) -> (u64, u64, u64, u64) {
        let s = self.streamer();
        (
            s.retained_changes() as u64,
            s.retained_bytes(),
            s.log_base(),
            s.ingested_records(),
        )
    }

    /// Rebuild graph state after the survivors' recovery reset: load
    /// the newest valid checkpoint generation (walking the fallback
    /// ladder past damaged ones) and replay only the change-log suffix
    /// past its watermark; without checkpointing, replay the whole
    /// retained log. Returns the number of change records replayed.
    ///
    /// Fails with [`NetError::RecoveryUnavailable`] when no combination
    /// of checkpoint and retained log covers the ingested stream —
    /// immediately and explicitly, instead of timing out a deadline on
    /// an answer that could only be wrong.
    ///
    /// `delta_spec` names the residual program whose delta runs will
    /// resume after the restore, if any: the agents are re-armed with
    /// its seed *before* the suffix replay (so replayed changes
    /// regenerate their residual corrections instead of silently
    /// re-dirtying vertices with no mass behind them), and the lead's
    /// dangling book is re-anchored from the manifest.
    fn restore_state(&mut self, delta_spec: Option<&ProgramSpec>) -> Result<u64, NetError> {
        if self.streamer.is_none() || self.streamer().ingested_records() == 0 {
            // Nothing was ever ingested; nothing to rebuild.
            return Ok(0);
        }
        if self.cfg.checkpoint_dir.is_some() {
            let min_watermark = self.streamer().log_base();
            match self.driver_store()?.latest_valid(min_watermark) {
                Some(valid) => {
                    let t0 = Instant::now();
                    let bytes = self.restore_generation(&valid.manifest, delta_spec)?;
                    // The injected frames are uncounted; the DRAIN
                    // round's FIFO ordering behind them is what
                    // guarantees they were applied.
                    self.quiesce()?;
                    let replayed = self.streamer().replay_from(valid.manifest.watermark)? as u64;
                    self.recovery.ckpt_restores += 1;
                    self.recovery.ckpt_restore_nanos += t0.elapsed().as_nanos() as u64;
                    self.recovery.ckpt_fallbacks += valid.fallbacks;
                    self.tracer
                        .span(EventKind::CkptRestore, t0, valid.manifest.generation, bytes);
                    Ok(replayed)
                }
                None if min_watermark == 0 => {
                    // No generation usable, but the log is complete.
                    Ok(self.streamer().replay()? as u64)
                }
                None => Err(NetError::RecoveryUnavailable(
                    "no valid checkpoint generation covers the truncated change log",
                )),
            }
        } else if self.cfg.retain_change_log {
            Ok(self.streamer().replay()? as u64)
        } else {
            Err(NetError::RecoveryUnavailable(
                "change-log retention is off and no checkpoint directory is configured",
            ))
        }
    }

    /// Read every shard of `m`, re-route each record under the current
    /// (post-recovery) view — including the dead agent's surviving
    /// shard — and push the results to the new owners as uncounted
    /// CKPT_EDGES / CKPT_META frames. Returns total payload bytes read.
    ///
    /// When `delta_spec` names a residual program, the shard sweep also
    /// totals the restored cut's dangling mass and primary-vertex
    /// count, re-arms every agent's delta seed (REQ, so it is armed
    /// before any replayed change arrives), and re-anchors the lead's
    /// dangling book: the manifest's converged `(S, n)` plus a carry
    /// covering the drift between the lead's telescoped tracking and
    /// the exact recount of the restored records.
    fn restore_generation(
        &mut self,
        m: &elga_ckpt::Manifest,
        delta_spec: Option<&ProgramSpec>,
    ) -> Result<u64, NetError> {
        /// Groups per CKPT_EDGES frame / records per CKPT_META frame.
        const CHUNK: usize = 1024;
        let residual = delta_spec
            .map(|s| (s, s.instantiate()))
            .filter(|(_, p)| p.delta_kind() == crate::program::DeltaKind::Residual);
        // Per-vertex (state, has_state, Σ g_out, is_meta) across shards:
        // a vertex's out-degree may be split over several records, and
        // it is dangling only if the *total* is zero.
        let mut book: HashMap<u64, (u64, bool, i64, bool)> = HashMap::new();
        let view = self.view();
        let locator = view.locator();
        let mut edge_batches: HashMap<AgentId, Vec<msg::CkptEdgeGroup>> = HashMap::new();
        let mut meta_batches: HashMap<AgentId, Vec<msg::CkptMetaRecord>> = HashMap::new();
        let mut bytes = 0u64;
        for &agent in &m.agents {
            let (_header, payload) = self
                .driver_store()?
                .read_shard(m.generation, agent)
                .map_err(|_| NetError::Protocol("validated checkpoint shard unreadable"))?;
            bytes += payload.len() as u64;
            let records = ckpt_codec::decode_payload(&payload)
                .ok_or(NetError::Protocol("checkpoint payload malformed"))?;
            for rec in records {
                let v = rec.vertex;
                let est = view.sketch.estimate(v);
                let mut outs: HashMap<AgentId, Vec<u64>> = HashMap::new();
                for &w in &rec.out {
                    if let Some(owner) = locator.owner_of_edge(v, w, est) {
                        outs.entry(owner).or_default().push(w);
                    }
                }
                let mut inns: HashMap<AgentId, Vec<u64>> = HashMap::new();
                for &u in &rec.inn {
                    if let Some(owner) = locator.owner_of_edge(v, u, est) {
                        inns.entry(owner).or_default().push(u);
                    }
                }
                for (side, groups) in [(Side::Out, outs), (Side::In, inns)] {
                    for (dest, others) in groups {
                        edge_batches
                            .entry(dest)
                            .or_default()
                            .push(msg::CkptEdgeGroup {
                                side,
                                vertex: v,
                                state: rec.state,
                                has_state: rec.has_state,
                                rep_out_degree: rec.rep_out_degree,
                                active: rec.active,
                                others,
                            });
                    }
                }
                if residual.is_some() && (rec.is_meta || rec.g_out != 0) {
                    let b = book.entry(v).or_insert((0, false, 0, false));
                    if rec.has_state {
                        b.0 = rec.state;
                        b.1 = true;
                    }
                    b.2 += rec.g_out;
                    b.3 |= rec.is_meta;
                }
                if rec.is_meta || rec.g_out != 0 || rec.g_in != 0 || rec.dirty || rec.has_residual {
                    if let Some(primary) = locator.ring().owner(v) {
                        meta_batches
                            .entry(primary)
                            .or_default()
                            .push(msg::CkptMetaRecord {
                                vertex: v,
                                state: rec.state,
                                has_state: rec.has_state,
                                active: rec.active,
                                dirty: rec.dirty,
                                is_meta: rec.is_meta,
                                g_out: rec.g_out,
                                g_in: rec.g_in,
                                residual: rec.residual,
                                has_residual: rec.has_residual,
                            });
                    }
                }
            }
        }
        if let Some((spec, program)) = &residual {
            let mut s_current = 0.0;
            let mut n_current = 0u64;
            for (state, has_state, g_out, is_meta) in book.values() {
                if *is_meta {
                    n_current += 1;
                    if *has_state {
                        s_current += program.dangling_mass(*state, (*g_out).max(0) as u64);
                    }
                }
            }
            // Arm every survivor before any restore frame or replayed
            // change can land (REQ round-trips guarantee ordering
            // against the pushes that follow).
            let (tag, params) = spec.encode();
            let arm = msg::encode_arm_delta(tag, params, n_current);
            for a in &view.agents {
                let rep = self.request_agent(&a.addr, arm.clone())?;
                if rep.reader().u8() != Some(1) {
                    return Err(NetError::Protocol("agent refused delta re-arm"));
                }
            }
            let carry = s_current - m.dangling_mass;
            let set = msg::encode_dangling_set(m.dangling_mass, m.dangling_n, carry);
            let _ = self.request(set)?;
        }
        for (dest, groups) in edge_batches {
            for chunk in groups.chunks(CHUNK) {
                self.push_to_agent(&view, dest, msg::encode_ckpt_edges(chunk))?;
            }
        }
        for (dest, recs) in meta_batches {
            for chunk in recs.chunks(CHUNK) {
                self.push_to_agent(&view, dest, msg::encode_ckpt_meta(chunk))?;
            }
        }
        Ok(bytes)
    }

    /// Push one restore frame to an agent under the given view.
    fn push_to_agent(
        &self,
        view: &DirectoryView,
        agent: AgentId,
        frame: Frame,
    ) -> Result<(), NetError> {
        let addr = view
            .addr_of(agent)
            .ok_or(NetError::Protocol("restore target missing from view"))?;
        self.transport
            .push_with_retry(addr, frame, &self.cfg.send_policy)
            .map(|_| ())
    }

    // ------------------------------------------------------------------
    // Runs
    // ------------------------------------------------------------------

    /// Run a program to completion with default options.
    pub fn run(&mut self, spec: impl Into<ProgramSpec>) -> Result<RunStats, NetError> {
        self.run_with(spec, RunOptions::default())
    }

    /// Run a program with explicit options.
    pub fn run_with(
        &mut self,
        spec: impl Into<ProgramSpec>,
        options: RunOptions,
    ) -> Result<RunStats, NetError> {
        let handle = self.start_run(spec, options)?;
        self.wait_run(handle)
    }

    /// Start a run without blocking; elastic changes may be applied
    /// while it executes (Figure 17).
    pub fn start_run(
        &mut self,
        spec: impl Into<ProgramSpec>,
        options: RunOptions,
    ) -> Result<RunHandle, NetError> {
        // No changes or migrations may be in flight when a run starts:
        // agents buffer edge changes during runs without counting them,
        // so a pre-run in-flight forward would wedge the first barrier.
        self.quiesce()?;
        let spec = spec.into();
        let info = run_info(&spec, options);
        // Subscribe before starting so neither the done-advance nor a
        // mid-run recovery broadcast can be missed.
        let sub = self
            .transport
            .subscribe(&bus_addr(), &[packet::ADVANCE, packet::RECOVER])?;
        let rep = self.request(msg::encode_start(&info))?;
        let run_id = rep
            .reader()
            .u64()
            .ok_or(NetError::Protocol("bad start reply"))?;
        Ok(RunHandle {
            run_id,
            sub,
            started: Instant::now(),
            spec,
            options,
            recovered_epoch: 0,
        })
    }

    /// Block until the run completes and collect its statistics.
    ///
    /// Bounded by `SystemConfig::run_deadline` (yielding
    /// `NetError::Timeout` past it). If an agent dies mid-run, the
    /// lead's RECOVER broadcast arrives here; the driver waits out the
    /// survivors' reset, replays the retained change log, and restarts
    /// the aborted run — all under the same deadline.
    pub fn wait_run(&mut self, mut handle: RunHandle) -> Result<RunStats, NetError> {
        let deadline = handle.started + self.cfg.run_deadline;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let slice = (deadline - now).min(Duration::from_millis(100));
            let d = match handle.sub.recv_timeout(slice) {
                Ok(d) => d,
                Err(NetError::Timeout) => continue,
                Err(e) => return Err(e),
            };
            match d.frame.packet_type() {
                packet::ADVANCE => {
                    if let Some(adv) = msg::decode_advance(&d.frame) {
                        if adv.run == handle.run_id && adv.done {
                            break;
                        }
                    }
                }
                packet::RECOVER => {
                    if let Some(rec) = msg::decode_recover(&d.frame) {
                        self.recover_and_restart(&mut handle, rec)?;
                    }
                }
                _ => {}
            }
        }
        let total = handle.started.elapsed();
        let rep = self.request(Frame::signal(packet::RUN_STATUS))?;
        let status = msg::decode_run_status(&rep).ok_or(NetError::Protocol("bad run status"))?;
        Ok(RunStats {
            run_id: handle.run_id,
            steps: status.steps,
            step_durations: status
                .step_nanos
                .iter()
                .map(|&ns| Duration::from_nanos(ns))
                .collect(),
            n_vertices: status.n_vertices,
            total,
        })
    }

    /// Drive recovery after the lead evicted a dead agent: reap its
    /// thread, wait for the survivors' reset barrier to settle, rebuild
    /// state (checkpoint restore plus change-log suffix replay, or full
    /// replay — see [`Cluster::restore_state`]), and — when the failure
    /// aborted this handle's run — restart it (the handle adopts the
    /// new run id).
    fn recover_and_restart(
        &mut self,
        handle: &mut RunHandle,
        rec: msg::Recover,
    ) -> Result<(), NetError> {
        if let Some(h) = self.agent_handles.remove(&rec.dead_agent) {
            let _ = h.join();
        }
        if rec.epoch <= handle.recovered_epoch {
            return Ok(());
        }
        handle.recovered_epoch = rec.epoch;
        let t0 = Instant::now();
        // Survivors report the zeroed-counter migrate barrier; once it
        // settles the system is empty and consistent.
        self.quiesce()?;
        // The run that resumes after the restore decides whether the
        // replayed suffix needs residual corrections regenerated.
        let info = run_info(&handle.spec, handle.options);
        let delta_spec = if info.delta { Some(&handle.spec) } else { None };
        let replayed = self.restore_state(delta_spec)?;
        self.quiesce()?;
        if rec.aborted_run == handle.run_id {
            let rep = self.request(msg::encode_start(&info))?;
            handle.run_id = rep
                .reader()
                .u64()
                .ok_or(NetError::Protocol("bad start reply"))?;
        }
        self.recovery.recoveries += 1;
        self.recovery.recovery_nanos += t0.elapsed().as_nanos() as u64;
        self.recovery.replayed_records += replayed;
        self.tracer
            .span(EventKind::RecoveryDone, t0, rec.epoch, replayed);
        Ok(())
    }

    /// Broadcast a label-reset (incremental WCC deletion handling):
    /// every primary vertex whose current state is in `labels` is
    /// re-initialized and activated on the next incremental run.
    pub fn reset_labels(&self, labels: &[u64]) {
        let _ = self.request(msg::encode_reset_labels(labels));
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn proxy(&mut self) -> &mut ClientProxy {
        if self.proxy.is_none() {
            self.proxy = Some(
                ClientProxy::connect(self.transport.clone(), self.cfg.clone(), self.lead.clone())
                    .expect("proxy connect"),
            );
        }
        self.proxy.as_mut().expect("just set")
    }

    /// Authoritative query (primary replica), decoded as `u64`.
    pub fn query_u64(&mut self, v: u64) -> Option<u64> {
        self.proxy().refresh().ok()?;
        self.proxy().query_primary(v).map(|r| r.state)
    }

    /// Authoritative query decoded as `f64` (PageRank).
    pub fn query_f64(&mut self, v: u64) -> Option<f64> {
        self.query_u64(v).map(f64::from_bits)
    }

    /// Fast-path query through a random replica (tolerates staleness,
    /// as client queries in the paper).
    pub fn query_any(&mut self, v: u64) -> Option<QueryResult> {
        self.proxy().query(v)
    }

    /// Bulk-extract the authoritative state of every vertex: one DUMP
    /// round over the agents, each answering for the vertices it is
    /// primary for. Decode per the algorithm that ran (e.g.
    /// `f64::from_bits` for PageRank).
    pub fn dump_states(&self) -> std::collections::HashMap<u64, u64> {
        let mut out = std::collections::HashMap::new();
        for a in &self.view().agents {
            let Ok(rep) = self.request_agent(&a.addr, Frame::signal(packet::DUMP)) else {
                continue;
            };
            let mut r = rep.reader();
            let Some(n) = r.u32() else { continue };
            for _ in 0..n {
                let (Some(v), Some(state)) = (r.u64(), r.u64()) else {
                    break;
                };
                out.insert(v, state);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Metrics and autoscaling
    // ------------------------------------------------------------------

    /// Aggregated agent metrics from the directory. A DRAIN round
    /// first forces every agent to flush its report, so the aggregate
    /// reflects all work finished before this call.
    ///
    /// An unreachable agent is retried once against a re-fetched view
    /// (it may have moved or departed between the view fetch and the
    /// request). If any *current* member still cannot be drained, the
    /// aggregate is marked [`ClusterMetrics::partial`] rather than
    /// silently passing off stale numbers as fresh ones;
    /// [`ClusterMetrics::agents_drained`] counts the reports that did
    /// land.
    pub fn metrics(&self) -> ClusterMetrics {
        let mut failed: Vec<AgentId> = Vec::new();
        let mut drained: u64 = 0;
        for a in &self.view().agents {
            match self.request_agent(&a.addr, Frame::signal(packet::DRAIN)) {
                Ok(_) => drained += 1,
                Err(_) => failed.push(a.id),
            }
        }
        let mut partial = false;
        if !failed.is_empty() {
            let fresh = self.view();
            for id in failed {
                // Evicted or departed since the first round: not a
                // member any more, so its absence is not partiality.
                let Some(info) = fresh.agents.iter().find(|a| a.id == id) else {
                    continue;
                };
                match self.request_agent(&info.addr, Frame::signal(packet::DRAIN)) {
                    Ok(_) => drained += 1,
                    Err(_) => partial = true,
                }
            }
        }
        let mut agg = self
            .request(Frame::signal(packet::GET_METRICS))
            .ok()
            .and_then(|f| ClusterMetrics::decode(&f))
            .unwrap_or_default();
        agg.agents_drained = drained;
        agg.partial = partial;
        // The fault layer is driver-owned; agents never see drops.
        if let Some(fault) = &self.fault {
            agg.messages_dropped = fault.stats().dropped();
        }
        // Recovery is driven from here, so its accounting is too — the
        // directory aggregate cannot know it.
        agg.recoveries = self.recovery.recoveries;
        agg.recovery_nanos = self.recovery.recovery_nanos;
        agg.ckpt_restores = self.recovery.ckpt_restores;
        agg.ckpt_restore_nanos = self.recovery.ckpt_restore_nanos;
        agg.ckpt_fallbacks = self.recovery.ckpt_fallbacks;
        agg.replayed_records = self.recovery.replayed_records;
        agg
    }

    /// Feed a metric observation to an autoscaling policy and apply
    /// its decision (§4.9). Returns the new agent count if scaled.
    pub fn autoscale_once(&mut self, policy: &mut dyn Autoscaler, metric: f64) -> Option<usize> {
        let target = policy.observe(metric, Instant::now())?;
        let current = self.agent_count();
        use std::cmp::Ordering;
        match target.cmp(&current) {
            Ordering::Greater => {
                self.add_agents(target - current);
            }
            Ordering::Less => {
                // One batched LEAVE: a single view change and one
                // migration barrier regardless of how far down we go.
                self.remove_agents(current - target);
            }
            Ordering::Equal => {}
        }
        Some(target)
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Drain every participant's trace buffer into named tracks: the
    /// lead directory, each live agent, the streamer (if one was
    /// created), plus buffers salvaged from agents that already
    /// departed. Draining consumes events — a second call returns only
    /// what happened since. Empty unless [`SystemConfig::tracing`] is
    /// on.
    pub fn collect_traces(&mut self) -> Vec<(String, Vec<elga_trace::TraceEvent>)> {
        let mut tracks = std::mem::take(&mut self.trace_tracks);
        if !self.cfg.tracing {
            return tracks;
        }
        if let Ok(rep) = self.request(Frame::signal(packet::TRACE_DUMP)) {
            if let Some((events, _dropped)) = elga_trace::decode_events(rep.payload()) {
                tracks.push(("directory-0".to_string(), events));
            }
        }
        for a in &self.view().agents {
            if let Ok(rep) = self.request_agent(&a.addr, Frame::signal(packet::TRACE_DUMP)) {
                if let Some((events, _dropped)) = elga_trace::decode_events(rep.payload()) {
                    tracks.push((format!("agent-{}", a.id), events));
                }
            }
        }
        if let Some(s) = &self.streamer {
            let (events, _dropped) = s.tracer().drain();
            if !events.is_empty() {
                tracks.push(("streamer".to_string(), events));
            }
        }
        let (events, _dropped) = self.tracer.drain();
        if !events.is_empty() {
            tracks.push(("driver".to_string(), events));
        }
        tracks
    }

    /// [`Cluster::collect_traces`] rendered as Chrome-trace JSON — load
    /// the string in Perfetto or `chrome://tracing`; each participant
    /// gets its own named track.
    pub fn chrome_trace(&mut self) -> String {
        let tracks = self.collect_traces();
        elga_trace::chrome_trace_json(&tracks)
    }

    // ------------------------------------------------------------------
    // Shutdown
    // ------------------------------------------------------------------

    /// Stop every entity and join their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if !self.alive {
            return;
        }
        self.alive = false;
        let _ = self.request(Frame::signal(packet::SHUTDOWN));
        if let Ok(out) = self.transport.sender(&master_addr()) {
            let _ = out.send(Frame::signal(packet::SHUTDOWN));
        }
        for (_, h) in self.agent_handles.drain() {
            let _ = h.join();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Build the wire `RunInfo` for a spec (run id assigned by the lead).
///
/// Resolves the run's execution flavor once, at the driver: a program
/// that declines async (e.g. exact PageRank with `tolerance == 0`) is
/// downgraded to synchronous here, and the incremental-delta engine is
/// engaged for residual programs whenever previous state can exist —
/// either carried over explicitly (`reuse_state`) or implicitly by the
/// async path committing directly onto primaries.
fn run_info(spec: &ProgramSpec, options: RunOptions) -> RunInfo {
    let program = spec.instantiate();
    let asynchronous =
        matches!(options.mode, crate::program::ExecutionMode::Async) && program.supports_async();
    let delta = program.delta_kind() == crate::program::DeltaKind::Residual
        && (options.reuse_state || asynchronous);
    let (tag, params) = spec.encode();
    RunInfo {
        run_id: 0,
        tag,
        params,
        reuse_state: options.reuse_state,
        asynchronous,
        delta,
        // Filled in by the lead at launch from its tracked mass.
        dangling_base: 0.0,
    }
}

/// Decode the ten-counter COUNTERS frame shared by agent DRAIN
/// replies and the lead's ghost reply.
fn decode_counters_frame(frame: &Frame) -> Option<Counters> {
    let mut r = frame.reader();
    Some(Counters {
        vmsg_sent: r.u64()?,
        vmsg_recv: r.u64()?,
        part_sent: r.u64()?,
        part_recv: r.u64()?,
        state_sent: r.u64()?,
        state_recv: r.u64()?,
        mig_sent: r.u64()?,
        mig_recv: r.u64()?,
        chg_sent: r.u64()?,
        chg_recv: r.u64()?,
    })
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
