//! Agents: the workers that hold the graph and run vertex programs
//! (paper §3.4).
//!
//! "Agents are responsible for holding the graph in memory and carrying
//! out the computation on the graph. ... They operate as a state
//! machine and, during computation, either execute the algorithms on
//! their vertices, send updates to other Agents, or receive updates
//! from Agents. They continuously poll on their communication channel
//! and act on whatever packet they receive."
//!
//! Key behaviors reproduced from the paper:
//!
//! * **Ownership checks and forwarding** — every received edge change
//!   is re-validated against the current view; wrong-destination
//!   packets are "forwarded to the latest, correct Agent".
//! * **Buffering** — vertex messages for future phases are stored
//!   "until the computation can catch up"; edge changes arriving while
//!   a batch algorithm runs are buffered and applied afterwards.
//! * **Migration** — on any view change the agent recomputes "the
//!   correct destination for all current edges" and forwards misplaced
//!   ones; when leaving, it drains everything and only disconnects
//!   after the directory confirms.
//! * **Replication** — high-degree vertices are split: each replica
//!   holds a slice of the vertex's edges, pre-aggregates its incoming
//!   messages, and synchronizes state with the primary between
//!   supersteps.

use crate::config::SystemConfig;
use crate::directory::{agent_addr, bus_addr};
use crate::metrics::AgentMetrics;
use crate::msg::{self, packet, Counters, DirectoryView, MetaRecord, Phase, ReadyReport, RunInfo, Side, StateRecord};
use crate::program::{ProgramSpec, VertexCtx, VertexProgram};
use crate::store::{Shard, VertexStore, SHARDS};
use elga_graph::types::{Action, EdgeChange, VertexId};
use elga_hash::{AgentId, EdgeLocator, FxHashMap, FxHashSet, OwnerCache};
use elga_net::{Addr, Delivery, Frame, NetError, Outbox, Transport, TransportExt};
use elga_sketch::CountMinSketch;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frames batched per message to amortize per-frame overhead.
const BATCH: usize = 4096;

/// Forwarding hop cap (views converge long before this).
const MAX_HOPS: u8 = 64;

/// Edges grouped by destination agent during migration.
type MovedEdges = FxHashMap<AgentId, Vec<(VertexId, VertexId)>>;

/// One migration bundle entry: placement side, the sender's replica
/// snapshot of the vertex (plus whether the state is initialized), and
/// the edges moving with it.
type VertexEdgeBundle = (Side, StateRecord, bool, Vec<(VertexId, VertexId)>);

/// Per-vertex data held by an agent. One entry serves all three roles
/// a vertex can have here: replica (edges + state copy), aggregation
/// target (partials), and primary (authoritative meta).
#[derive(Debug, Clone, Default)]
pub(crate) struct VertexEntry {
    /// Local out-edges (this agent owns their out-placement).
    pub(crate) out: Vec<VertexId>,
    /// Local in-edges (this agent owns their in-placement).
    pub(crate) inn: Vec<VertexId>,
    /// Replica state copy (from STATE broadcasts or local apply).
    pub(crate) state: u64,
    /// Whether `state` is initialized.
    pub(crate) has_state: bool,
    /// Replica copy of the global out-degree.
    pub(crate) rep_out_degree: u64,
    /// Active for the next scatter.
    pub(crate) active: bool,
    /// Scatter-phase partial aggregate.
    pub(crate) partial: u64,
    pub(crate) has_partial: bool,
    /// Combine-phase aggregate (primary side).
    pub(crate) ppartial: u64,
    pub(crate) has_ppartial: bool,
    /// §3.2 waiting set (async): messages collected so far toward the
    /// program's `waits_for` requirement.
    pub(crate) wait_recv: u64,
    /// Primary-only: authoritative global degrees.
    pub(crate) g_out: i64,
    pub(crate) g_in: i64,
    /// Primary-only: this agent holds the vertex's meta record.
    pub(crate) is_meta: bool,
    /// Primary-only: touched by changes since the last run.
    pub(crate) dirty: bool,
}

impl VertexEntry {
    fn is_empty(&self) -> bool {
        self.out.is_empty()
            && self.inn.is_empty()
            && !self.is_meta
            && !self.has_state
            && !self.has_partial
            && !self.has_ppartial
    }
}

/// Per-run execution state.
struct AgentRun {
    info: RunInfo,
    program: Arc<dyn VertexProgram>,
    /// Latest directive from the directory.
    step: u32,
    phase: Phase,
    n_vertices: u64,
    global: f64,
    /// Async event-driven mode entered.
    async_live: bool,
}

/// Reusable per-superstep buffers. The kernels write per-shard batch
/// maps which are merged (in shard order, for determinism) into the
/// `merged` maps before encoding; all inner `Vec`s are cleared but
/// never dropped, so steady-state supersteps allocate nothing.
#[derive(Default)]
struct StepScratch {
    /// Per-shard `(vertex, value)` batches (scatter vmsgs, combine
    /// partials). Indexed like the vertex shards.
    per_shard: Vec<FxHashMap<AgentId, Vec<(VertexId, u64)>>>,
    merged: FxHashMap<AgentId, Vec<(VertexId, u64)>>,
    /// Per-shard state broadcasts (apply).
    per_shard_states: Vec<FxHashMap<AgentId, Vec<StateRecord>>>,
    merged_states: FxHashMap<AgentId, Vec<StateRecord>>,
}

impl StepScratch {
    fn new() -> Self {
        StepScratch {
            per_shard: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
            per_shard_states: (0..SHARDS).map(|_| FxHashMap::default()).collect(),
            ..Default::default()
        }
    }
}

/// Shared read-only context handed to the parallel shard kernels.
#[derive(Clone, Copy)]
struct KernelCtx<'a> {
    program: &'a dyn VertexProgram,
    locator: &'a EdgeLocator,
    sketch: &'a CountMinSketch,
    my_id: AgentId,
    n_vertices: u64,
    step: u32,
    scatter_all: bool,
    reuse: bool,
    global: f64,
}

/// One ElGA agent. Spawned on its own thread by the cluster driver.
pub struct Agent {
    id: AgentId,
    cfg: SystemConfig,
    transport: Arc<dyn Transport>,
    mailbox: elga_net::Mailbox,
    dir_push: Outbox,
    view: DirectoryView,
    locator: EdgeLocator,
    outboxes: FxHashMap<AgentId, Outbox>,
    vertices: VertexStore,
    /// Position of out-edge `(u, v)` in `vertices[u].out` — O(1)
    /// duplicate detection *and* O(1) deletion (swap_remove + index
    /// fix-up instead of an O(deg) scan).
    out_pos: FxHashMap<(VertexId, VertexId), u32>,
    /// Position of in-edge `(u, v)` in `vertices[v].inn`.
    in_pos: FxHashMap<(VertexId, VertexId), u32>,
    /// Resolved superstep worker count.
    workers: usize,
    /// Owner cache for serial paths (change apply, migration, async).
    route_cache: OwnerCache,
    /// One owner cache per worker, used by the parallel kernels.
    worker_caches: Vec<OwnerCache>,
    scratch: StepScratch,
    counters: Counters,
    metrics: AgentMetrics,
    run: Option<AgentRun>,
    /// Changes received while a run was active (§3.4: "While a batch is
    /// running, the graph does not change: any edge changes are
    /// buffered").
    buffered_changes: Vec<Frame>,
    /// Future-phase frames ("If it is for an iteration in the future,
    /// the packet is stored").
    buffered_frames: Vec<Frame>,
    /// Last READY context reported, for re-reporting on late arrivals.
    reported: Option<(u64, u32, Phase)>,
    /// Counters snapshot at the last READY send. Sync re-reports are
    /// debounced to the post-drain idle point and only fire when the
    /// counters moved, so a burst of late frames costs one READY.
    reported_counters: Option<Counters>,
    /// Counter snapshot at the last async idle report.
    last_idle_counters: Option<Counters>,
    departing: bool,
    /// Highest view epoch for which migration ran and was reported.
    migrated_epoch: u64,
    metrics_flushed: Instant,
    /// Last liveness heartbeat pushed to the directory.
    heartbeat_sent: Instant,
    /// Monotone READY sequence, so the lead can discard reports a
    /// retransmitting transport delivered out of order. Never reset —
    /// not even by recovery — or stale pre-reset reports could
    /// outrank fresh ones.
    ready_seq: u64,
}

impl Agent {
    /// Bind the mailbox, subscribe to the bus and join through the
    /// given directory, using the in-process address conventions.
    pub fn join(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        id: AgentId,
        directory: Addr,
    ) -> Result<Agent, NetError> {
        Agent::join_at(transport, cfg, id, agent_addr(id), directory, bus_addr())
    }

    /// Deployment-agnostic join: bind the mailbox at `addr` (for TCP,
    /// a concrete `tcp://host:port`), subscribe to the broadcast bus at
    /// `bus`, and register with `directory`. Returns the ready-to-run
    /// agent.
    pub fn join_at(
        transport: Arc<dyn Transport>,
        cfg: SystemConfig,
        id: AgentId,
        addr: Addr,
        directory: Addr,
        bus: Addr,
    ) -> Result<Agent, NetError> {
        let mailbox = transport.bind(&addr)?;
        let addr = mailbox.addr().clone();
        // Subscribe broadcasts into the mailbox *before* joining so no
        // VIEW/START/ADVANCE can be missed.
        transport.subscribe_forward(
            &bus,
            &[
                packet::VIEW,
                packet::ADVANCE,
                packet::START,
                packet::SHUTDOWN,
                packet::RESET_LABELS,
                packet::RECOVER,
            ],
            &addr,
        )?;
        let join = Frame::builder(packet::JOIN)
            .u64(id)
            .bytes(addr.to_string().as_bytes())
            .finish();
        let (reply, join_retries) =
            transport.request_with_retry(&directory, join, cfg.request_timeout, &cfg.send_policy)?;
        let (view, run_info) =
            msg::decode_join_reply(&reply).ok_or(NetError::Protocol("bad join reply"))?;
        let dir_push = transport.sender(&directory)?;
        let locator = view.locator();
        let workers = cfg.workers_effective();
        let new_cache = || {
            if cfg.owner_cache {
                OwnerCache::new()
            } else {
                OwnerCache::disabled()
            }
        };
        let mut agent = Agent {
            id,
            cfg: cfg.clone(),
            transport,
            mailbox,
            dir_push,
            view,
            locator,
            outboxes: FxHashMap::default(),
            vertices: VertexStore::default(),
            out_pos: FxHashMap::default(),
            in_pos: FxHashMap::default(),
            workers,
            route_cache: new_cache(),
            worker_caches: (0..workers).map(|_| new_cache()).collect(),
            scratch: StepScratch::new(),
            counters: Counters::default(),
            metrics: AgentMetrics {
                agent: id,
                retries_attempted: join_retries as u64,
                ..Default::default()
            },
            run: None,
            buffered_changes: Vec::new(),
            buffered_frames: Vec::new(),
            reported: None,
            reported_counters: None,
            last_idle_counters: None,
            departing: false,
            migrated_epoch: 0,
            metrics_flushed: Instant::now(),
            heartbeat_sent: Instant::now(),
            ready_seq: 0,
        };
        if let Some(info) = run_info {
            agent.begin_run(info);
        }
        Ok(agent)
    }

    /// Spawn the agent's thread.
    pub fn spawn(self) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("elga-agent-{}", self.id))
            .spawn(move || self.run_loop())
            .expect("spawn agent")
    }

    fn run_loop(mut self) {
        loop {
            match self.mailbox.recv_timeout(Duration::from_millis(20)) {
                Ok(d) => {
                    if !self.handle(d) {
                        break;
                    }
                    // Drain opportunistically so idle detection sees a
                    // truly empty mailbox.
                    loop {
                        match self.mailbox.try_recv() {
                            Ok(Some(d)) => {
                                if !self.handle(d) {
                                    return;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return,
                        }
                    }
                    self.on_idle();
                    self.maybe_heartbeat();
                }
                Err(NetError::Timeout) => {
                    self.on_idle();
                    self.flush_metrics(false);
                    self.maybe_heartbeat();
                }
                Err(_) => break,
            }
        }
    }

    /// Push a liveness heartbeat if one is due. Heartbeats are cheap
    /// pushes; the lead directory evicts us after
    /// `heartbeat_interval * heartbeat_misses` of silence.
    fn maybe_heartbeat(&mut self) {
        if self.heartbeat_sent.elapsed() >= self.cfg.heartbeat_interval {
            self.heartbeat_sent = Instant::now();
            let _ = self.dir_push.send(msg::encode_heartbeat(self.id));
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, d: Delivery) -> bool {
        let frame = d.frame;
        match frame.packet_type() {
            packet::VIEW => {
                if let Some(view) = DirectoryView::decode(&frame) {
                    self.on_view(view);
                }
            }
            packet::START => {
                if let Some(info) = msg::decode_start(&frame) {
                    self.begin_run(info);
                }
            }
            packet::ADVANCE => {
                if let Some(adv) = msg::decode_advance(&frame) {
                    self.on_advance(adv);
                }
            }
            packet::VMSG => self.on_vmsg(frame),
            packet::PARTIAL => self.on_partial(frame),
            packet::STATE => self.on_state(frame),
            packet::EDGE_CHANGES => self.on_changes(frame),
            packet::DEG_DELTA => self.on_deg_delta(frame),
            packet::MIG_EDGES => self.on_mig_edges(frame),
            packet::MIG_META => self.on_mig_meta(frame),
            packet::RESET_LABELS => self.on_reset_labels(frame),
            packet::QUERY => {
                if let Some(reply) = d.reply {
                    let v = frame.reader().u64().unwrap_or(0);
                    self.metrics.queries += 1;
                    let entry = self.vertices.get(&v);
                    let (found, state) = match entry {
                        Some(e) if e.has_state => (1u8, e.state),
                        _ => (0u8, 0),
                    };
                    let _ = reply.send(
                        Frame::builder(packet::QUERY_REP)
                            .u8(found)
                            .u64(state)
                            .u64(self.view.batch_id)
                            .finish(),
                    );
                }
            }
            packet::DUMP => {
                if let Some(reply) = d.reply {
                    let mut pairs: Vec<(VertexId, u64)> = Vec::new();
                    for (&v, e) in self.vertices.iter() {
                        if e.is_meta && e.has_state && self.is_primary(v) {
                            pairs.push((v, e.state));
                        }
                    }
                    let mut b = Frame::builder(packet::DUMP).u32(pairs.len() as u32);
                    for (v, state) in pairs {
                        b = b.u64(v).u64(state);
                    }
                    let _ = reply.send(b.finish());
                }
            }
            packet::DRAIN => {
                self.flush_metrics(true);
                if let Some(reply) = d.reply {
                    let rep = Frame::builder(packet::COUNTERS)
                        .u64(self.counters.vmsg_sent)
                        .u64(self.counters.vmsg_recv)
                        .u64(self.counters.part_sent)
                        .u64(self.counters.part_recv)
                        .u64(self.counters.state_sent)
                        .u64(self.counters.state_recv)
                        .u64(self.counters.mig_sent)
                        .u64(self.counters.mig_recv)
                        .u64(self.counters.chg_sent)
                        .u64(self.counters.chg_recv)
                        .u64(self.view.epoch)
                        .finish();
                    let _ = reply.send(rep);
                }
            }
            packet::RECOVER => {
                if let Some(rec) = msg::decode_recover(&frame) {
                    return self.on_recover(rec);
                }
            }
            packet::KILL => {
                // Crash simulation: die without LEAVE, drains, or
                // goodbyes. Peers see a dead mailbox; the lead notices
                // missing heartbeats.
                return false;
            }
            packet::OK
                // Departure confirmed by the directory.
                if self.departing => {
                    return false;
                }
            packet::SHUTDOWN => return false,
            _ => {}
        }
        true
    }

    /// A peer was declared dead. Exact counter reconciliation is
    /// impossible (messages in flight to/from the dead agent are
    /// unaccounted on one side), so recovery is a full reset: drop all
    /// graph state and counters, adopt the post-eviction view, and
    /// settle the recovery migrate-barrier trivially with zeroed
    /// counters. The driver then replays the retained change log and
    /// restarts any aborted run.
    fn on_recover(&mut self, rec: msg::Recover) -> bool {
        if rec.view.addr_of(self.id).is_none() {
            // We were the one evicted (a false positive if we are still
            // alive). Fail-stop: exiting keeps the cluster's view of
            // the world consistent.
            return false;
        }
        let epoch = rec.epoch;
        self.vertices.clear();
        self.out_pos.clear();
        self.in_pos.clear();
        self.outboxes.clear();
        self.counters = Counters::default();
        self.buffered_changes.clear();
        self.buffered_frames.clear();
        self.run = None;
        self.reported = None;
        self.reported_counters = None;
        self.last_idle_counters = None;
        self.metrics.edges = 0;
        self.view = rec.view;
        self.locator = self.view.locator();
        self.migrated_epoch = epoch;
        self.send_ready(0, epoch as u32, Phase::Migrate, 0, 0.0, 0);
        true
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn is_primary(&self, v: VertexId) -> bool {
        self.locator.ring().owner(v) == Some(self.id)
    }

    /// Record out-edge `(u, v)`; false when already present.
    fn insert_out_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.out_pos.contains_key(&(u, v)) {
            return false;
        }
        let e = self.vertices.entry_or_default(u);
        self.out_pos.insert((u, v), e.out.len() as u32);
        e.out.push(v);
        true
    }

    /// Remove out-edge `(u, v)` in O(1): swap_remove at its indexed
    /// position, then re-index the edge that swapped into the hole.
    fn remove_out_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(pos) = self.out_pos.remove(&(u, v)) else {
            return false;
        };
        let pos = pos as usize;
        if let Some(e) = self.vertices.get_mut(&u) {
            e.out.swap_remove(pos);
            if pos < e.out.len() {
                let moved = e.out[pos];
                self.out_pos.insert((u, moved), pos as u32);
            }
        }
        true
    }

    /// Record in-edge `(u, v)` (stored on `v`); false when present.
    fn insert_in_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.in_pos.contains_key(&(u, v)) {
            return false;
        }
        let e = self.vertices.entry_or_default(v);
        self.in_pos.insert((u, v), e.inn.len() as u32);
        e.inn.push(u);
        true
    }

    /// Remove in-edge `(u, v)` in O(1), as [`Agent::remove_out_edge`].
    fn remove_in_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let Some(pos) = self.in_pos.remove(&(u, v)) else {
            return false;
        };
        let pos = pos as usize;
        if let Some(e) = self.vertices.get_mut(&v) {
            e.inn.swap_remove(pos);
            if pos < e.inn.len() {
                let moved = e.inn[pos];
                self.in_pos.insert((moved, v), pos as u32);
            }
        }
        true
    }

    fn outbox(&mut self, agent: AgentId) -> Option<&Outbox> {
        if !self.outboxes.contains_key(&agent) {
            let addr = self
                .view
                .addr_of(agent)
                .cloned()
                .unwrap_or_else(|| agent_addr(agent));
            match self.transport.sender(&addr) {
                Ok(out) => {
                    self.outboxes.insert(agent, out);
                }
                Err(_) => return None,
            }
        }
        self.outboxes.get(&agent)
    }

    fn push_to(&mut self, agent: AgentId, frame: Frame) {
        let Some(out) = self.outbox(agent) else {
            return;
        };
        if out.send(frame.clone()).is_ok() {
            return;
        }
        // The cached outbox is dead (TCP writer broke, or the peer's
        // mailbox went away). Retry with fresh senders under the
        // configured policy; if the peer is really gone, failure
        // detection will evict it and recovery re-owns its edges.
        self.outboxes.remove(&agent);
        let addr = self
            .view
            .addr_of(agent)
            .cloned()
            .unwrap_or_else(|| agent_addr(agent));
        self.metrics.retries_attempted += 1;
        match self.transport.push_with_retry(&addr, frame, &self.cfg.send_policy) {
            Ok(retries) => {
                self.metrics.retries_attempted += retries as u64;
                // Re-cache a working sender for subsequent pushes.
                if let Ok(out) = self.transport.sender(&addr) {
                    self.outboxes.insert(agent, out);
                }
            }
            Err(_) => {
                // Peer gone; senders recover on the next view update.
            }
        }
    }

    fn send_ready(&mut self, run: u64, step: u32, phase: Phase, active: u64, contrib: f64, n_primary: u64) {
        self.reported = Some((run, step, phase));
        self.reported_counters = Some(self.counters);
        self.ready_seq += 1;
        let rep = ReadyReport {
            agent: self.id,
            run,
            step,
            phase,
            counters: self.counters,
            active,
            global_contrib: contrib,
            n_primary,
            seq: self.ready_seq,
        };
        let _ = self.dir_push.send(msg::encode_ready(&rep));
    }

    /// Re-send the last READY with fresh counters after processing a
    /// late message (the directory replaces the old report and
    /// re-evaluates its barrier).
    fn re_report(&mut self) {
        if let Some((run, step, phase)) = self.reported {
            let (active, contrib, n_primary) = if phase == Phase::Apply {
                self.apply_summary()
            } else if phase == Phase::Scatter {
                let (c, n) = self.scatter_summary();
                (0, c, n)
            } else {
                (0, 0.0, 0)
            };
            self.send_ready(run, step, phase, active, contrib, n_primary);
        }
    }

    /// (active, contrib, n_primary) as reported at Apply barriers.
    fn apply_summary(&self) -> (u64, f64, u64) {
        let mut active = 0;
        let mut n_primary = 0;
        for (&v, e) in self.vertices.iter() {
            if e.is_meta && self.is_primary(v) {
                n_primary += 1;
                if e.active {
                    active += 1;
                }
            }
        }
        (active, 0.0, n_primary)
    }

    /// (contrib, n_primary) as reported at Scatter barriers.
    fn scatter_summary(&self) -> (f64, u64) {
        let Some(run) = self.run.as_ref() else {
            return (0.0, 0);
        };
        // Folded in shard order (VertexStore iteration), so the f64 sum
        // is identical for any worker count.
        let mut contrib = 0.0;
        let mut n_primary = 0;
        for (&v, e) in self.vertices.iter() {
            if e.is_meta && self.is_primary(v) {
                n_primary += 1;
                if e.has_state {
                    let ctx = VertexCtx {
                        out_degree: e.g_out.max(0) as u64,
                        in_degree: e.g_in.max(0) as u64,
                        n_vertices: run.n_vertices,
                        step: run.step,
                        global: 0.0,
                    };
                    contrib += run.program.global_contrib(v, e.state, &ctx);
                }
            }
        }
        (contrib, n_primary)
    }

    // ------------------------------------------------------------------
    // Run lifecycle
    // ------------------------------------------------------------------

    fn begin_run(&mut self, info: RunInfo) {
        let Some(spec) = ProgramSpec::decode(info.tag, info.params) else {
            return;
        };
        let program = spec.instantiate();
        if !info.reuse_state {
            for e in self.vertices.values_mut() {
                e.has_state = false;
                e.state = 0;
                e.active = false;
            }
        }
        for e in self.vertices.values_mut() {
            e.has_partial = false;
            e.has_ppartial = false;
            e.wait_recv = 0;
        }
        self.vertices.clear_partial_dirty();
        self.buffered_frames.clear();
        self.run = Some(AgentRun {
            info,
            program,
            step: 0,
            phase: Phase::Scatter,
            n_vertices: self.view.n_vertices,
            global: 0.0,
            async_live: false,
        });
        self.reported = None;
        self.reported_counters = None;
        self.last_idle_counters = None;
    }

    fn on_advance(&mut self, adv: msg::Advance) {
        let Some(run) = self.run.as_mut() else {
            return;
        };
        if adv.run != run.info.run_id {
            return;
        }
        if adv.done {
            self.finish_run();
            return;
        }
        if run.async_live {
            // Probe: drain already happened (mailbox FIFO); answer with
            // current counters.
            self.send_ready(adv.run, adv.step, Phase::Combine, 0, 0.0, 0);
            return;
        }
        run.step = adv.step;
        run.phase = adv.phase;
        run.n_vertices = adv.n_vertices;
        run.global = adv.global;
        if run.info.asynchronous && adv.step == 1 && adv.phase == Phase::Scatter {
            run.async_live = true;
            self.async_initial_scatter();
            // A faster peer's initial scatter can race ahead of this
            // advance; those frames were buffered under the sync rules
            // and would otherwise be stranded (their send was counted,
            // their receive never would be — the run could not
            // terminate). Release them into the async handlers.
            self.replay_buffered();
            return;
        }
        let t0 = Instant::now();
        match adv.phase {
            Phase::Scatter => self.phase_scatter(),
            Phase::Combine => self.phase_combine(),
            Phase::Apply => self.phase_apply(),
            Phase::Migrate => {}
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        self.metrics.last_step_nanos = nanos;
        match adv.phase {
            Phase::Scatter => self.metrics.scatter_nanos += nanos,
            Phase::Combine => self.metrics.combine_nanos += nanos,
            Phase::Apply => self.metrics.apply_nanos += nanos,
            Phase::Migrate => {}
        }
        self.replay_buffered();
    }

    fn finish_run(&mut self) {
        self.run = None;
        self.reported = None;
        self.reported_counters = None;
        // Apply the changes that were buffered during the run. Their
        // receives were counted when they arrived; decode and apply
        // directly so they are not counted twice.
        let buffered: Vec<Frame> = std::mem::take(&mut self.buffered_changes);
        for frame in buffered {
            if let Some((side, hop, changes)) = msg::decode_edge_changes(&frame) {
                self.apply_changes(side, hop, changes);
            }
        }
        self.flush_metrics(true);
    }

    /// Re-dispatch buffered frames that now match the current phase.
    fn replay_buffered(&mut self) {
        let frames: Vec<Frame> = std::mem::take(&mut self.buffered_frames);
        for frame in frames {
            match frame.packet_type() {
                packet::VMSG => self.on_vmsg(frame),
                packet::PARTIAL => self.on_partial(frame),
                packet::STATE => self.on_state(frame),
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Sync phases
    // ------------------------------------------------------------------

    fn phase_scatter(&mut self) {
        let run = self.run.as_ref().expect("scatter without run");
        let run_id = run.info.run_id;
        let step = run.step;
        if step == 0 {
            // Step 0 is preparation: report the primary vertex count so
            // the directory can hand `n` to initialization.
            let (contrib, n_primary) = self.scatter_summary();
            self.send_ready(run_id, 0, Phase::Scatter, 0, contrib, n_primary);
            return;
        }
        self.run_kernel(Phase::Scatter);
        let (contrib, n_primary) = self.scatter_summary();
        self.send_ready(run_id, step, Phase::Scatter, 0, contrib, n_primary);
    }

    fn phase_combine(&mut self) {
        let run = self.run.as_ref().expect("combine without run");
        let run_id = run.info.run_id;
        let step = run.step;
        self.run_kernel(Phase::Combine);
        self.send_ready(run_id, step, Phase::Combine, 0, 0.0, 0);
    }

    fn phase_apply(&mut self) {
        let run = self.run.as_ref().expect("apply without run");
        let run_id = run.info.run_id;
        let step = run.step;
        self.run_kernel(Phase::Apply);
        let (active, contrib, n_primary) = self.apply_summary();
        self.send_ready(run_id, step, Phase::Apply, active, contrib, n_primary);
    }

    /// Run one superstep kernel over all vertex shards on the worker
    /// pool, then merge and send the per-shard batches.
    ///
    /// Determinism: the shard count is fixed (independent of the worker
    /// count), each shard is processed by exactly one worker, and the
    /// per-shard batches are merged in shard index order — so the
    /// per-destination byte streams are identical for any worker count.
    fn run_kernel(&mut self, phase: Phase) {
        let run = self.run.as_ref().expect("kernel without run");
        let program = run.program.clone();
        let run_id = run.info.run_id;
        let step = run.step;
        let ctx = KernelCtx {
            program: &*program,
            locator: &self.locator,
            sketch: &self.view.sketch,
            my_id: self.id,
            n_vertices: run.n_vertices,
            step,
            scatter_all: program.scatter_all(),
            reuse: run.info.reuse_state,
            global: run.global,
        };
        let epoch = self.view.epoch;
        for c in &mut self.worker_caches {
            c.ensure_epoch(epoch);
        }
        // Tiny stores run serially: thread-spawn overhead would dwarf
        // the kernel. Harmless for determinism — output bytes do not
        // depend on the worker count.
        let workers = if self.vertices.len() < 1024 {
            1
        } else {
            self.workers.clamp(1, SHARDS)
        };
        let chunk = SHARDS.div_ceil(workers);
        {
            let shards = self.vertices.shards_mut();
            let scratch = &mut self.scratch.per_shard;
            let scratch_states = &mut self.scratch.per_shard_states;
            let caches = &mut self.worker_caches;
            if workers == 1 {
                // Serial fast path: no thread spawn overhead.
                let cache = &mut caches[0];
                for (i, shard) in shards.iter_mut().enumerate() {
                    kernel_shard(phase, ctx, cache, shard, &mut scratch[i], &mut scratch_states[i]);
                }
            } else {
                std::thread::scope(|scope| {
                    let work = shards
                        .chunks_mut(chunk)
                        .zip(scratch.chunks_mut(chunk))
                        .zip(scratch_states.chunks_mut(chunk))
                        .zip(caches.iter_mut());
                    for (((sh, sc), scs), cache) in work {
                        scope.spawn(move || {
                            for ((shard, out), out_states) in
                                sh.iter_mut().zip(sc.iter_mut()).zip(scs.iter_mut())
                            {
                                kernel_shard(phase, ctx, cache, shard, out, out_states);
                            }
                        });
                    }
                });
            }
        }
        // Merge per-shard batches in shard index order: each
        // destination's messages end up in the same order no matter how
        // many workers produced them.
        match phase {
            Phase::Apply => {
                let mut merged = std::mem::take(&mut self.scratch.merged_states);
                for shard_states in &mut self.scratch.per_shard_states {
                    for (&agent, recs) in shard_states.iter_mut() {
                        if !recs.is_empty() {
                            merged.entry(agent).or_default().append(recs);
                        }
                    }
                }
                for (&agent, recs) in merged.iter_mut() {
                    if recs.is_empty() {
                        continue;
                    }
                    for chunk in recs.chunks(BATCH) {
                        self.counters.state_sent += chunk.len() as u64;
                        let frame = msg::encode_states(run_id, step, chunk);
                        self.push_to(agent, frame);
                    }
                    recs.clear();
                }
                self.scratch.merged_states = merged;
            }
            _ => {
                let mut merged = std::mem::take(&mut self.scratch.merged);
                for shard_batches in &mut self.scratch.per_shard {
                    for (&agent, msgs) in shard_batches.iter_mut() {
                        if !msgs.is_empty() {
                            merged.entry(agent).or_default().append(msgs);
                        }
                    }
                }
                for (&agent, msgs) in merged.iter_mut() {
                    if msgs.is_empty() {
                        continue;
                    }
                    for chunk in msgs.chunks(BATCH) {
                        let frame = if phase == Phase::Scatter {
                            self.counters.vmsg_sent += chunk.len() as u64;
                            msg::encode_vmsgs(run_id, step, chunk)
                        } else {
                            self.counters.part_sent += chunk.len() as u64;
                            msg::encode_partials(run_id, step, chunk)
                        };
                        self.push_to(agent, frame);
                    }
                    msgs.clear();
                }
                self.scratch.merged = merged;
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handlers (sync + async)
    // ------------------------------------------------------------------

    fn current_phase(&self) -> Option<(u64, u32, Phase, bool)> {
        self.run
            .as_ref()
            .map(|r| (r.info.run_id, r.step, r.phase, r.async_live))
    }

    fn on_vmsg(&mut self, frame: Frame) {
        let Some((run_id, step, msgs)) = msg::decode_vmsgs(&frame) else {
            return;
        };
        match self.current_phase() {
            Some((cur_run, _, _, true)) if cur_run == run_id => {
                // Async: apply immediately at the primary.
                self.counters.vmsg_recv += msgs.len() as u64;
                self.metrics.vmsgs += msgs.len() as u64;
                for (v, value) in msgs {
                    self.async_apply(v, value);
                }
                self.re_report_async();
            }
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Scatter =>
            {
                self.counters.vmsg_recv += msgs.len() as u64;
                self.metrics.vmsgs += msgs.len() as u64;
                let program = self.run.as_ref().expect("run").program.clone();
                for (v, value) in msgs {
                    let (e, dirty) = self.vertices.entry_and_dirty(v);
                    if e.has_partial {
                        e.partial = program.combine(e.partial, value);
                    } else {
                        e.partial = value;
                        e.has_partial = true;
                        // First partial since the last combine: record
                        // it so phase_combine only walks receivers.
                        dirty.push(v);
                    }
                }
                // Late-arrival re-report happens from on_idle, once
                // per drain batch, not once per frame.
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                // Future step or wrong phase: store until we catch up.
                self.buffered_frames.push(frame);
            }
            _ => {} // stale run
        }
    }

    fn on_partial(&mut self, frame: Frame) {
        let Some((run_id, step, parts)) = msg::decode_partials(&frame) else {
            return;
        };
        match self.current_phase() {
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Combine =>
            {
                self.counters.part_recv += parts.len() as u64;
                let program = self.run.as_ref().expect("run").program.clone();
                for (v, value) in parts {
                    let e = self.vertices.entry_or_default(v);
                    if e.has_ppartial {
                        e.ppartial = program.combine(e.ppartial, value);
                    } else {
                        e.ppartial = value;
                        e.has_ppartial = true;
                    }
                }
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                self.buffered_frames.push(frame);
            }
            _ => {}
        }
    }

    fn on_state(&mut self, frame: Frame) {
        let Some((run_id, step, recs)) = msg::decode_states(&frame) else {
            return;
        };
        match self.current_phase() {
            Some((cur_run, _, _, true)) if cur_run == run_id => {
                // Async: adopt the state and scatter right away.
                self.counters.state_recv += recs.len() as u64;
                for rec in recs {
                    let e = self.vertices.entry_or_default(rec.vertex);
                    e.state = rec.state;
                    e.has_state = true;
                    e.rep_out_degree = rec.out_degree;
                    e.active = rec.active;
                    if rec.active {
                        self.scatter_one(rec.vertex);
                    }
                }
                self.re_report_async();
            }
            Some((cur_run, cur_step, cur_phase, false))
                if cur_run == run_id && cur_step == step && cur_phase == Phase::Apply =>
            {
                self.counters.state_recv += recs.len() as u64;
                for rec in recs {
                    let e = self.vertices.entry_or_default(rec.vertex);
                    e.state = rec.state;
                    e.has_state = true;
                    e.rep_out_degree = rec.out_degree;
                    e.active = rec.active;
                }
            }
            Some((cur_run, _, _, _)) if cur_run == run_id => {
                self.buffered_frames.push(frame);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Async mode
    // ------------------------------------------------------------------

    /// Initial scatter when entering async mode: all active vertices
    /// fire once, then execution is event-driven.
    fn async_initial_scatter(&mut self) {
        let actives: Vec<VertexId> = self
            .vertices
            .iter()
            .filter(|(_, e)| e.active && e.has_state)
            .map(|(&v, _)| v)
            .collect();
        for v in actives {
            self.scatter_one(v);
        }
        self.re_report_async();
    }

    /// Event-driven single-vertex scatter (async mode): messages route
    /// straight to the target's primary.
    fn scatter_one(&mut self, v: VertexId) {
        let run = self.run.as_ref().expect("scatter without run");
        let program = run.program.clone();
        let scatter_all = program.scatter_all();
        let n_vertices = run.n_vertices;
        let step = run.step;
        let run_id = run.info.run_id;
        self.route_cache.ensure_epoch(self.view.epoch);
        let mut batches: FxHashMap<AgentId, Vec<(VertexId, u64)>> = FxHashMap::default();
        {
            let locator = &self.locator;
            let sketch = &self.view.sketch;
            let cache = &mut self.route_cache;
            let Some(e) = self.vertices.get(&v) else {
                return;
            };
            if e.has_state && (e.active || scatter_all) {
                let ctx = VertexCtx {
                    out_degree: e.rep_out_degree,
                    in_degree: 0,
                    n_vertices,
                    step,
                    global: 0.0,
                };
                if let Some(val) = program.scatter_out(v, e.state, &ctx) {
                    for &w in &e.out {
                        let vv = program.along_edge(v, w, val);
                        if let Some(owner) = cache.primary(locator, w, || sketch.estimate(w)) {
                            batches.entry(owner).or_default().push((w, vv));
                        }
                    }
                }
                if let Some(val) = program.scatter_in(v, e.state, &ctx) {
                    for &u in &e.inn {
                        let vv = program.along_edge(v, u, val);
                        if let Some(owner) = cache.primary(locator, u, || sketch.estimate(u)) {
                            batches.entry(owner).or_default().push((u, vv));
                        }
                    }
                }
            }
        }
        if let Some(e) = self.vertices.get_mut(&v) {
            e.active = false;
        }
        for (agent, msgs) in batches {
            for chunk in msgs.chunks(BATCH) {
                self.counters.vmsg_sent += chunk.len() as u64;
                let frame = msg::encode_vmsgs(run_id, step, chunk);
                self.push_to(agent, frame);
            }
        }
    }

    /// Async apply-at-primary: combine the incoming value, apply, and
    /// broadcast on change.
    fn async_apply(&mut self, v: VertexId, value: u64) {
        let run = self.run.as_ref().expect("async apply without run");
        let program = run.program.clone();
        let n_vertices = run.n_vertices;
        let run_id = run.info.run_id;
        if !self.is_primary(v) {
            // Stale routing (view changed mid-run is not supported in
            // async mode); forward to the true primary.
            if let Some(primary) = self.locator.ring().owner(v) {
                self.counters.vmsg_sent += 1;
                let frame = msg::encode_vmsgs(run_id, 1, &[(v, value)]);
                self.push_to(primary, frame);
            }
            return;
        }
        let e = self.vertices.entry_or_default(v);
        let ctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices,
            step: 1,
            global: 0.0,
        };
        if !e.has_state {
            e.state = program.init(v, &ctx);
            e.has_state = true;
        }
        // §3.2 waiting set: collect messages until the program's
        // requirement is met, then process once with the combined
        // aggregate.
        let needed = program.waits_for(v, &ctx);
        let value = if needed > 0 {
            if e.has_ppartial {
                e.ppartial = program.combine(e.ppartial, value);
            } else {
                e.ppartial = value;
                e.has_ppartial = true;
            }
            e.wait_recv += 1;
            if e.wait_recv < needed {
                return; // still waiting on specific messages
            }
            let agg = e.ppartial;
            e.has_ppartial = false;
            e.ppartial = 0;
            e.wait_recv = 0;
            agg
        } else {
            value
        };
        let (new, changed) = program.apply(v, e.state, Some(value), &ctx);
        if changed {
            e.state = new;
            e.active = true;
            let rec = StateRecord {
                vertex: v,
                state: new,
                out_degree: e.g_out.max(0) as u64,
                active: true,
            };
            self.route_cache.ensure_epoch(self.view.epoch);
            let replicas: Vec<AgentId> = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .replicas(&self.locator, v, || sketch.estimate(v))
                    .to_vec()
            };
            for replica in replicas {
                self.counters.state_sent += 1;
                let frame = msg::encode_states(run_id, 1, &[rec]);
                self.push_to(replica, frame);
            }
        }
    }

    /// Push an idle report when the async counters moved.
    fn re_report_async(&mut self) {
        // Reports are sent from on_idle; nothing to do here (counters
        // will differ from the last idle snapshot).
    }

    fn on_idle(&mut self) {
        let Some(run) = self.run.as_ref() else {
            return;
        };
        if !run.async_live {
            // Sync mode: late counted frames (retransmits, delayed
            // deliveries) moved the counters since the last READY, so
            // re-send it once now that the mailbox drained. Doing this
            // here instead of per-frame keeps the barrier live without
            // flooding the directory under chaos.
            if self.reported.is_some() && self.reported_counters != Some(self.counters) {
                self.re_report();
            }
            return;
        }
        if self.last_idle_counters == Some(self.counters) {
            return;
        }
        self.last_idle_counters = Some(self.counters);
        let run_id = run.info.run_id;
        self.ready_seq += 1;
        let rep = ReadyReport {
            agent: self.id,
            run: run_id,
            step: u32::MAX,
            phase: Phase::Scatter,
            counters: self.counters,
            active: 0,
            global_contrib: 0.0,
            n_primary: 0,
            seq: self.ready_seq,
        };
        let _ = self.dir_push.send(msg::encode_ready(&rep));
    }

    // ------------------------------------------------------------------
    // Graph changes
    // ------------------------------------------------------------------

    fn on_changes(&mut self, frame: Frame) {
        let Some((side, hop, changes)) = msg::decode_edge_changes(&frame) else {
            return;
        };
        // Streamer-originated records (hop 0) are unmatched on the
        // send side (Streamers do not participate in barriers); only
        // agent-to-agent forwards are double counted. The receive is
        // counted even when the apply is deferred below: the sender's
        // chg_sent is already in the barrier sums, and deferring the
        // matching count would hold settled() false for the whole run
        // — no barrier (or async termination probe) could ever fire.
        if hop > 0 {
            self.counters.chg_recv += changes.len() as u64;
        }
        if self.run.is_some() {
            self.buffered_changes.push(frame);
            return;
        }
        self.apply_changes(side, hop, changes);
    }

    fn apply_changes(&mut self, side: Side, hop: u8, changes: Vec<EdgeChange>) {
        let mut forwards: FxHashMap<AgentId, Vec<EdgeChange>> = FxHashMap::default();
        let mut deltas: FxHashMap<VertexId, (i64, i64)> = FxHashMap::default();
        self.route_cache.ensure_epoch(self.view.epoch);
        for change in changes {
            let (u, v) = (change.edge.src, change.edge.dst);
            let (key, other) = match side {
                Side::Out => (u, v),
                Side::In => (v, u),
            };
            let owner = {
                let sketch = &self.view.sketch;
                self.route_cache
                    .owner_of_edge(&self.locator, key, other, || sketch.estimate(key))
            };
            if owner != Some(self.id) {
                if let Some(owner) = owner {
                    if hop < MAX_HOPS {
                        forwards.entry(owner).or_default().push(change);
                    }
                }
                continue;
            }
            let applied = match (side, change.action) {
                (Side::Out, Action::Insert) => {
                    self.insert_out_edge(u, v) && {
                        deltas.entry(u).or_default().0 += 1;
                        true
                    }
                }
                (Side::Out, Action::Delete) => {
                    self.remove_out_edge(u, v) && {
                        deltas.entry(u).or_default().0 -= 1;
                        true
                    }
                }
                (Side::In, Action::Insert) => {
                    self.insert_in_edge(u, v) && {
                        deltas.entry(v).or_default().1 += 1;
                        true
                    }
                }
                (Side::In, Action::Delete) => {
                    self.remove_in_edge(u, v) && {
                        deltas.entry(v).or_default().1 -= 1;
                        true
                    }
                }
            };
            if applied {
                self.metrics.changes += 1;
            }
        }
        for (agent, fwd) in forwards {
            for chunk in fwd.chunks(BATCH) {
                self.counters.chg_sent += chunk.len() as u64;
                let frame = msg::encode_edge_changes(side, hop + 1, chunk);
                self.push_to(agent, frame);
            }
        }
        // Report degree deltas to each vertex's primary.
        let mut delta_batches: FxHashMap<AgentId, Vec<(VertexId, i64, i64)>> =
            FxHashMap::default();
        for (v, (dout, din)) in deltas {
            if let Some(primary) = self.locator.ring().owner(v) {
                delta_batches
                    .entry(primary)
                    .or_default()
                    .push((v, dout, din));
            }
        }
        for (agent, ds) in delta_batches {
            for chunk in ds.chunks(BATCH) {
                self.counters.chg_sent += chunk.len() as u64;
                let frame = msg::encode_deg_deltas(chunk);
                self.push_to(agent, frame);
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        self.re_report();
    }

    fn on_deg_delta(&mut self, frame: Frame) {
        let Some(deltas) = msg::decode_deg_deltas(&frame) else {
            return;
        };
        self.counters.chg_recv += deltas.len() as u64;
        for (v, dout, din) in deltas {
            let e = self.vertices.entry_or_default(v);
            e.g_out += dout;
            e.g_in += din;
            e.dirty = true;
            e.is_meta = e.g_out > 0 || e.g_in > 0;
            if !e.is_meta {
                // Vertex vanished from the graph.
                e.has_state = false;
                e.active = false;
                e.dirty = false;
                if e.is_empty() {
                    self.vertices.remove(&v);
                }
            }
        }
        self.re_report();
    }

    fn on_reset_labels(&mut self, frame: Frame) {
        let Some(labels) = msg::decode_reset_labels(&frame) else {
            return;
        };
        let set: FxHashSet<u64> = labels.into_iter().collect();
        for (_, e) in self.vertices.iter_mut() {
            if e.is_meta && e.has_state && set.contains(&e.state) {
                e.has_state = false;
                e.state = 0;
                e.dirty = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Elasticity: view changes and migration
    // ------------------------------------------------------------------

    fn on_view(&mut self, view: DirectoryView) {
        if view.epoch < self.view.epoch || view.epoch <= self.migrated_epoch {
            return;
        }
        let epoch = view.epoch;
        // A sketch-only update (same membership, same ring parameters)
        // cannot move primaries or k=1 placements: only vertices whose
        // replication factor grew need re-placement. This keeps the
        // per-batch cost proportional to affected vertices, not edges
        // (§3.4.3's "graph changes enough to impact load balancing").
        let membership_same = self.view.agents == view.agents
            && self.view.hash == view.hash
            && self.view.virtual_agents == view.virtual_agents
            && self.view.replication_threshold == view.replication_threshold
            && self.view.max_replicas == view.max_replicas;
        let filter = if membership_same && !self.departing {
            let mut changed: FxHashSet<VertexId> = FxHashSet::default();
            for (&v, _) in self.vertices.iter() {
                let k_old = self.locator.replication_factor(self.view.sketch.estimate(v));
                let k_new = self.locator.replication_factor(view.sketch.estimate(v));
                if k_old != k_new {
                    changed.insert(v);
                }
            }
            Some(changed)
        } else {
            None
        };
        self.view = view;
        self.locator = self.view.locator();
        if filter.is_none() {
            self.outboxes.clear();
        }
        if !self.departing && self.view.addr_of(self.id).is_none() {
            self.departing = true;
        }
        self.migrated_epoch = epoch;
        self.migrate(epoch, filter);
    }

    /// Re-evaluate the placement of local edges and primary meta
    /// records; forward whatever no longer belongs here (§3.4.3). With
    /// `filter = Some(vs)`, only the placements of the given vertices
    /// are re-evaluated (sketch-only view changes) and primary meta
    /// never moves (the ring is unchanged).
    fn migrate(&mut self, epoch: u64, filter: Option<FxHashSet<VertexId>>) {
        #[derive(Default)]
        struct Bundle {
            metas: Vec<MetaRecord>,
            vertex_edges: Vec<VertexEdgeBundle>,
        }
        let mut bundles: FxHashMap<AgentId, Bundle> = FxHashMap::default();

        let verts: Vec<VertexId> = match &filter {
            Some(set) => set.iter().copied().collect(),
            None => self.vertices.keys().collect(),
        };
        let sketch_only = filter.is_some();
        self.route_cache.ensure_epoch(self.view.epoch);
        // Batch-estimate every vertex up front: one row-seed setup for
        // the whole sweep instead of per-vertex.
        let ests = self.view.sketch.estimate_many(&verts);
        for (v, est) in verts.into_iter().zip(ests) {
            if !self.vertices.contains_key(&v) {
                continue;
            }
            // Place v once per retain sweep: both edge directions of v
            // hash through the same (k, replica-set), so the cache does
            // the ring walk a single time and the per-edge work is one
            // second-hash lookup.
            let (mut moved_out, mut moved_in): (MovedEdges, MovedEdges) =
                (MovedEdges::default(), MovedEdges::default());
            let rebuild = {
                let locator = &self.locator;
                let placement = self.route_cache.placement(locator, v, || est);
                let my_id = self.id;
                let e = self.vertices.get_mut(&v).expect("exists");
                let before = (e.out.len(), e.inn.len());
                e.out
                    .retain(|&w| match locator.owner_from_placement(placement, w) {
                        Some(owner) if owner != my_id => {
                            moved_out.entry(owner).or_default().push((v, w));
                            false
                        }
                        _ => true,
                    });
                e.inn
                    .retain(|&u| match locator.owner_from_placement(placement, u) {
                        Some(owner) if owner != my_id => {
                            moved_in.entry(owner).or_default().push((u, v));
                            false
                        }
                        _ => true,
                    });
                (before.0 != e.out.len(), before.1 != e.inn.len())
            };
            // Retain compacts the adjacency vectors, so the surviving
            // edges' position indices must be rebuilt.
            if rebuild.0 || rebuild.1 {
                let e = self.vertices.get(&v).expect("exists");
                if rebuild.0 {
                    for (i, &w) in e.out.iter().enumerate() {
                        self.out_pos.insert((v, w), i as u32);
                    }
                }
                if rebuild.1 {
                    for (i, &u) in e.inn.iter().enumerate() {
                        self.in_pos.insert((u, v), i as u32);
                    }
                }
            }
            let snapshot = {
                let e = self.vertices.get(&v).expect("exists");
                (
                    StateRecord {
                        vertex: v,
                        state: e.state,
                        out_degree: e.rep_out_degree,
                        active: e.active,
                    },
                    e.has_state,
                )
            };
            for (agent, edges) in moved_out {
                for &(a, b) in &edges {
                    self.out_pos.remove(&(a, b));
                }
                bundles.entry(agent).or_default().vertex_edges.push((
                    Side::Out,
                    snapshot.0,
                    snapshot.1,
                    edges,
                ));
            }
            for (agent, edges) in moved_in {
                for &(a, b) in &edges {
                    self.in_pos.remove(&(a, b));
                }
                bundles.entry(agent).or_default().vertex_edges.push((
                    Side::In,
                    snapshot.0,
                    snapshot.1,
                    edges,
                ));
            }
            // Primary meta handoff (never needed on sketch-only
            // changes: the ring did not move).
            if sketch_only {
                if self.vertices.get(&v).is_some_and(|e| e.is_empty()) {
                    self.vertices.remove(&v);
                }
                continue;
            }
            let is_primary_now = self.is_primary(v);
            let e = self.vertices.get_mut(&v).expect("exists");
            if e.is_meta && !is_primary_now {
                let meta = MetaRecord {
                    vertex: v,
                    state: e.state,
                    out_degree: e.g_out.max(0) as u64,
                    active: e.active,
                    dirty: e.dirty,
                    has_state: e.has_state,
                };
                // g_in travels via a degree delta piggybacked in the
                // meta record's move: encode as a second meta with the
                // in-degree is ugly; instead extend: reuse out_degree
                // for out and send g_in through a deg delta.
                if let Some(new_primary) = self.locator.ring().owner(v) {
                    let b = bundles.entry(new_primary).or_default();
                    b.metas.push(meta);
                    // Move the in-degree alongside.
                    let g_in = e.g_in;
                    if g_in != 0 {
                        b.vertex_edges.push((
                            Side::Out,
                            StateRecord {
                                vertex: v,
                                state: g_in as u64,
                                out_degree: 0,
                                active: false,
                            },
                            false,
                            Vec::new(),
                        ));
                    }
                }
                e.is_meta = false;
                e.g_out = 0;
                e.g_in = 0;
                e.dirty = false;
            }
            if self.vertices.get(&v).is_some_and(|e| e.is_empty()) {
                self.vertices.remove(&v);
            }
        }
        // Ship the bundles.
        for (agent, bundle) in bundles {
            if !bundle.metas.is_empty() {
                for chunk in bundle.metas.chunks(BATCH) {
                    self.counters.mig_sent += chunk.len() as u64;
                    self.push_to(agent, msg::encode_mig_meta(chunk));
                }
            }
            for (side, snap, has_state, edges) in bundle.vertex_edges {
                self.counters.mig_sent += edges.len() as u64 + 1;
                let frame = encode_mig_edges(side, &snap, has_state, &edges);
                self.push_to(agent, frame);
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        self.send_ready(0, epoch as u32, Phase::Migrate, 0, 0.0, 0);
    }

    fn on_mig_edges(&mut self, frame: Frame) {
        let Some((side, snap, has_state, g_in_delta, edges)) = decode_mig_edges(&frame) else {
            return;
        };
        self.counters.mig_recv += edges.len() as u64 + 1;
        let v = snap.vertex;
        let e = self.vertices.entry_or_default(v);
        if g_in_delta != 0 {
            // In-degree handoff piggybacking a meta move.
            e.g_in += g_in_delta;
            e.is_meta = e.g_out > 0 || e.g_in > 0;
        }
        if has_state && !e.has_state {
            e.state = snap.state;
            e.has_state = true;
            e.active = e.active || snap.active;
        }
        if has_state {
            // The snapshot's out-degree is the vertex's global
            // out-degree; adopt it even when the state itself arrived
            // first through a MIG_META (scatter shares divide by it).
            e.rep_out_degree = e.rep_out_degree.max(snap.out_degree);
        }
        match side {
            Side::Out => {
                for (a, b) in edges {
                    self.insert_out_edge(a, b);
                }
            }
            Side::In => {
                for (a, b) in edges {
                    self.insert_in_edge(a, b);
                }
            }
        }
        self.metrics.edges = self.out_pos.len() as u64;
        self.re_report();
    }

    fn on_mig_meta(&mut self, frame: Frame) {
        let Some(metas) = msg::decode_mig_meta(&frame) else {
            return;
        };
        self.counters.mig_recv += metas.len() as u64;
        for m in metas {
            let e = self.vertices.entry_or_default(m.vertex);
            e.g_out += m.out_degree as i64;
            e.is_meta = true;
            e.dirty = e.dirty || m.dirty;
            e.active = e.active || m.active;
            if m.has_state {
                e.state = m.state;
                e.has_state = true;
                e.rep_out_degree = e.rep_out_degree.max(m.out_degree);
            }
        }
        self.re_report();
    }

    // ------------------------------------------------------------------
    // Metrics
    // ------------------------------------------------------------------

    fn flush_metrics(&mut self, force: bool) {
        if force || self.metrics_flushed.elapsed() > Duration::from_millis(100) {
            self.metrics_flushed = Instant::now();
            let (mut hits, mut misses) = self.route_cache.stats();
            for c in &self.worker_caches {
                let (h, m) = c.stats();
                hits += h;
                misses += m;
            }
            self.metrics.owner_cache_hits = hits;
            self.metrics.owner_cache_misses = misses;
            let _ = self.dir_push.send(self.metrics.encode());
        }
    }
}

/// Dispatch one shard through the kernel for `phase`. Runs on a worker
/// thread; touches only its own shard, scratch maps, and owner cache.
fn kernel_shard(
    phase: Phase,
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
    out_states: &mut FxHashMap<AgentId, Vec<StateRecord>>,
) {
    match phase {
        Phase::Scatter => scatter_shard(ctx, cache, shard, out),
        Phase::Combine => combine_shard(ctx, cache, shard, out),
        Phase::Apply => apply_shard(ctx, cache, shard, out_states),
        Phase::Migrate => {}
    }
}

/// Scatter messages for one shard's eligible vertices, routing each to
/// the target's aggregation replica via the owner cache.
fn scatter_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
) {
    let program = ctx.program;
    for (&v, e) in shard.map.iter_mut() {
        if !(e.has_state && (e.active || ctx.scatter_all)) {
            // Scatter clears active flags unconditionally (they are
            // re-armed by STATE broadcasts at the next apply).
            e.active = false;
            continue;
        }
        let vctx = VertexCtx {
            out_degree: e.rep_out_degree,
            in_degree: 0,
            n_vertices: ctx.n_vertices,
            step: ctx.step,
            global: 0.0,
        };
        if let Some(val) = program.scatter_out(v, e.state, &vctx) {
            for &w in &e.out {
                let vv = program.along_edge(v, w, val);
                if let Some(owner) =
                    cache.owner_of_edge(ctx.locator, w, v, || ctx.sketch.estimate(w))
                {
                    out.entry(owner).or_default().push((w, vv));
                }
            }
        }
        if let Some(val) = program.scatter_in(v, e.state, &vctx) {
            for &u in &e.inn {
                let vv = program.along_edge(v, u, val);
                if let Some(owner) =
                    cache.owner_of_edge(ctx.locator, u, v, || ctx.sketch.estimate(u))
                {
                    out.entry(owner).or_default().push((u, vv));
                }
            }
        }
        e.active = false;
    }
}

/// Forward one shard's scatter partials to their primaries. Touches
/// only the shard's dirty list — vertices that actually received
/// messages — instead of scanning the whole map; sorts it so the sent
/// order is deterministic regardless of arrival order.
fn combine_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<(VertexId, u64)>>,
) {
    let mut dirty = std::mem::take(&mut shard.partial_dirty);
    dirty.sort_unstable();
    for v in dirty.drain(..) {
        let Some(e) = shard.map.get_mut(&v) else {
            continue;
        };
        if !e.has_partial {
            continue;
        }
        if let Some(primary) = cache.primary(ctx.locator, v, || ctx.sketch.estimate(v)) {
            out.entry(primary).or_default().push((v, e.partial));
        }
        e.has_partial = false;
        e.partial = 0;
    }
    // Hand the (drained) buffer back so its capacity is reused.
    shard.partial_dirty = dirty;
}

/// Apply one shard's primaries and queue state broadcasts to their
/// replica sets.
fn apply_shard(
    ctx: KernelCtx<'_>,
    cache: &mut OwnerCache,
    shard: &mut Shard,
    out: &mut FxHashMap<AgentId, Vec<StateRecord>>,
) {
    let program = ctx.program;
    for (&v, e) in shard.map.iter_mut() {
        if !(e.is_meta || e.has_ppartial) {
            continue;
        }
        if cache.primary(ctx.locator, v, || ctx.sketch.estimate(v)) != Some(ctx.my_id) {
            continue;
        }
        let vctx = VertexCtx {
            out_degree: e.g_out.max(0) as u64,
            in_degree: e.g_in.max(0) as u64,
            n_vertices: ctx.n_vertices,
            step: ctx.step,
            global: ctx.global,
        };
        let mut broadcast = false;
        if ctx.step == 0 {
            // Initialization (fresh) / activation (incremental).
            if !e.has_state {
                e.state = program.init(v, &vctx);
                e.has_state = true;
                e.active = if ctx.reuse {
                    true // newly appeared vertex in an incremental run
                } else {
                    program.initially_active_ctx(v, &vctx)
                };
                broadcast = true;
            } else if ctx.reuse {
                e.active = e.dirty;
                broadcast = e.dirty;
            }
            e.dirty = false;
        } else {
            let has_msgs = e.has_ppartial;
            if has_msgs || program.applies_without_messages() {
                let agg = has_msgs.then_some(e.ppartial);
                let old = e.state;
                let (new, changed) = program.apply(v, e.state, agg, &vctx);
                e.state = new;
                e.has_state = true;
                e.active = changed;
                broadcast = changed || new != old || program.scatter_all();
            } else {
                e.active = false;
            }
        }
        e.has_ppartial = false;
        e.ppartial = 0;
        if broadcast {
            let rec = StateRecord {
                vertex: v,
                state: e.state,
                out_degree: e.g_out.max(0) as u64,
                active: e.active,
            };
            for &replica in cache.replicas(ctx.locator, v, || ctx.sketch.estimate(v)) {
                out.entry(replica).or_default().push(rec);
            }
        }
    }
}

/// MIG_EDGES wire format: side, vertex snapshot (with optional state),
/// a piggybacked in-degree delta for meta moves, and the edges.
fn encode_mig_edges(
    side: Side,
    snap: &StateRecord,
    has_state: bool,
    edges: &[(VertexId, VertexId)],
) -> Frame {
    let mut b = Frame::builder(packet::MIG_EDGES)
        .u8(match side {
            Side::Out => 0,
            Side::In => 1,
        })
        .u64(snap.vertex)
        .u64(snap.state)
        .u64(snap.out_degree)
        .u8(snap.active as u8)
        .u8(has_state as u8)
        .u64(if edges.is_empty() && !has_state {
            // The "g_in handoff" encoding: state field carries the
            // delta; flag it via this marker.
            snap.state
        } else {
            0
        })
        .u32(edges.len() as u32);
    for &(x, y) in edges {
        b = b.u64(x).u64(y);
    }
    b.finish()
}

type DecodedMigEdges = (Side, StateRecord, bool, i64, Vec<(VertexId, VertexId)>);

fn decode_mig_edges(frame: &Frame) -> Option<DecodedMigEdges> {
    let mut r = frame.reader();
    let side = match r.u8()? {
        0 => Side::Out,
        1 => Side::In,
        _ => return None,
    };
    let vertex = r.u64()?;
    let state = r.u64()?;
    let out_degree = r.u64()?;
    let active = r.u8()? != 0;
    let has_state = r.u8()? != 0;
    let g_in_delta = r.u64()? as i64;
    let n = r.u32()? as usize;
    let mut edges = Vec::with_capacity(n.min(r.remaining() / 16));
    for _ in 0..n {
        edges.push((r.u64()?, r.u64()?));
    }
    Some((
        side,
        StateRecord {
            vertex,
            state,
            out_degree,
            active,
        },
        has_state,
        g_in_delta,
        edges,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mig_edges_roundtrip() {
        let snap = StateRecord {
            vertex: 5,
            state: 42,
            out_degree: 3,
            active: true,
        };
        let edges = vec![(5u64, 6u64), (5, 7)];
        let f = encode_mig_edges(Side::Out, &snap, true, &edges);
        let (side, s2, has_state, g_in, e2) = decode_mig_edges(&f).unwrap();
        assert_eq!(side, Side::Out);
        assert_eq!(s2, snap);
        assert!(has_state);
        assert_eq!(g_in, 0);
        assert_eq!(e2, edges);
    }

    #[test]
    fn mig_edges_g_in_handoff() {
        let snap = StateRecord {
            vertex: 9,
            state: 7, // the in-degree delta
            out_degree: 0,
            active: false,
        };
        let f = encode_mig_edges(Side::Out, &snap, false, &[]);
        let (_, _, has_state, g_in, edges) = decode_mig_edges(&f).unwrap();
        assert!(!has_state);
        assert_eq!(g_in, 7);
        assert!(edges.is_empty());
    }

    #[test]
    fn vertex_entry_emptiness() {
        let mut e = VertexEntry::default();
        assert!(e.is_empty());
        e.out.push(3);
        assert!(!e.is_empty());
        e.out.clear();
        e.is_meta = true;
        assert!(!e.is_empty());
    }
}
