//! System-wide configuration.

use elga_hash::{HashKind, LocatorConfig};
use std::time::Duration;

/// Tunables shared by every Participant. The defaults follow the
/// paper's recommendations (§3.3.1, §3.4.2, §4.5) scaled to the
/// in-process deployment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Ring hash function; the paper selects Wang's 64-bit hash
    /// (Figure 5).
    pub hash: HashKind,
    /// Virtual agents per Agent; the paper selects 100 (Figure 6).
    pub virtual_agents: u32,
    /// Count-min sketch width (paper: `2^18` for 100 B edges; scaled
    /// default here suits millions of edges).
    pub sketch_width: usize,
    /// Count-min sketch depth (paper: 8).
    pub sketch_depth: usize,
    /// Estimated degree per additional vertex replica (paper: millions
    /// at full scale; thousands here).
    pub replication_threshold: u64,
    /// Hard cap on replicas per vertex.
    pub max_replicas: u32,
    /// REQ/REP timeout for control-plane calls.
    pub request_timeout: Duration,
    /// Number of Directory entities (paper: scalable directory tier).
    pub directories: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            hash: HashKind::Wang,
            virtual_agents: 100,
            sketch_width: 1 << 12,
            sketch_depth: 8,
            replication_threshold: 4096,
            max_replicas: 16,
            request_timeout: Duration::from_secs(30),
            directories: 1,
        }
    }
}

impl SystemConfig {
    /// The locator settings implied by this configuration.
    pub fn locator_config(&self) -> LocatorConfig {
        LocatorConfig {
            replication_threshold: self.replication_threshold,
            max_replicas: self.max_replicas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_choices() {
        let c = SystemConfig::default();
        assert_eq!(c.hash, HashKind::Wang);
        assert_eq!(c.virtual_agents, 100);
        assert_eq!(c.sketch_depth, 8);
        assert!(c.directories >= 1);
    }

    #[test]
    fn locator_config_mirrors_fields() {
        let c = SystemConfig {
            replication_threshold: 99,
            max_replicas: 3,
            ..SystemConfig::default()
        };
        let lc = c.locator_config();
        assert_eq!(lc.replication_threshold, 99);
        assert_eq!(lc.max_replicas, 3);
    }
}
