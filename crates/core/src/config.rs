//! System-wide configuration.

use elga_hash::{HashKind, LocatorConfig};
use elga_net::{DiskFault, SendPolicy};
use std::path::PathBuf;
use std::time::Duration;

/// Tunables shared by every Participant. The defaults follow the
/// paper's recommendations (§3.3.1, §3.4.2, §4.5) scaled to the
/// in-process deployment.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Ring hash function; the paper selects Wang's 64-bit hash
    /// (Figure 5).
    pub hash: HashKind,
    /// Virtual agents per Agent; the paper selects 100 (Figure 6).
    pub virtual_agents: u32,
    /// Count-min sketch width (paper: `2^18` for 100 B edges; scaled
    /// default here suits millions of edges).
    pub sketch_width: usize,
    /// Count-min sketch depth (paper: 8).
    pub sketch_depth: usize,
    /// Estimated degree per additional vertex replica (paper: millions
    /// at full scale; thousands here).
    pub replication_threshold: u64,
    /// Hard cap on replicas per vertex.
    pub max_replicas: u32,
    /// REQ/REP timeout for control-plane calls.
    pub request_timeout: Duration,
    /// Number of Directory entities (paper: scalable directory tier).
    pub directories: usize,
    /// Retry budget applied to control-plane REQ/REP and data-plane
    /// PUSH calls when a transient failure occurs.
    pub send_policy: SendPolicy,
    /// How often each agent pushes a liveness heartbeat to its
    /// directory.
    pub heartbeat_interval: Duration,
    /// Consecutive missed heartbeat intervals before the lead declares
    /// an agent dead.
    pub heartbeat_misses: u32,
    /// Whether the lead evicts unresponsive agents and broadcasts
    /// RECOVER. Off, a crashed agent wedges the barrier (the
    /// pre-chaos behavior).
    pub failure_detection: bool,
    /// Deadline for `Cluster::quiesce`; exceeded, it returns
    /// `NetError::Timeout` instead of blocking forever.
    pub quiesce_deadline: Duration,
    /// Deadline for `Cluster::wait_run`, including any mid-run
    /// recovery and restart.
    pub run_deadline: Duration,
    /// Whether the streamer retains every ingested batch so edges
    /// owned by a dead agent can be replayed during recovery.
    pub retain_change_log: bool,
    /// Worker threads each agent uses for superstep kernels (scatter,
    /// combine, apply). `0` means auto-detect from the host's
    /// parallelism. Results are bit-identical for any worker count:
    /// kernels partition the fixed vertex shards and merge their output
    /// in shard order.
    pub workers: usize,
    /// Whether agents and streamers memoise owner resolution per view
    /// epoch. On by default; off exists so benchmarks can measure the
    /// uncached baseline through the identical code path.
    pub owner_cache: bool,
    /// Whether agents and streamers coalesce same-destination records
    /// into large frames (with credit-based backpressure) before they
    /// hit the transport. On by default; off keeps the eager
    /// one-frame-per-batch path so benchmarks can measure the ablation.
    /// Results are bit-identical either way: coalescing changes frame
    /// boundaries, never per-destination record order.
    pub coalescing: bool,
    /// Whether participants record trace events (superstep phases,
    /// view changes, migrations, recoveries, coalescer flushes) into
    /// per-participant ring buffers, collectable as Chrome-trace JSON.
    /// Off by default; the disabled path is one relaxed atomic load
    /// (or an unset `Option`), so benchmarks are unaffected.
    pub tracing: bool,
    /// Directory for durable checkpoints. `None` (the default)
    /// disables checkpointing entirely; recovery then replays the
    /// whole retained change log, as before.
    pub checkpoint_dir: Option<PathBuf>,
    /// Take a checkpoint automatically after this many ingested
    /// batches (0 disables the automatic trigger; explicit
    /// `Cluster::checkpoint` calls still work).
    pub checkpoint_interval_batches: u64,
    /// Checkpoint generations retained on disk. Older generations are
    /// pruned after each successful commit; keeping ≥2 means a
    /// corrupt newest generation still has a fallback.
    pub checkpoint_keep: usize,
    /// Soft cap on retained change-log records before the streamer
    /// emits a `ChangeLogWarn` trace event (0 disables the warning).
    /// Advisory only — the log is never dropped below a checkpoint
    /// watermark.
    pub change_log_cap: u64,
    /// Disk-fault injection applied to checkpoint writes (chaos
    /// testing only). `None` outside chaos runs.
    pub disk_fault: Option<DiskFault>,
    /// Seed for the disk-fault injector's deterministic RNG.
    pub disk_fault_seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            hash: HashKind::Wang,
            virtual_agents: 100,
            sketch_width: 1 << 12,
            sketch_depth: 8,
            replication_threshold: 4096,
            max_replicas: 16,
            request_timeout: Duration::from_secs(30),
            directories: 1,
            send_policy: SendPolicy::default(),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_misses: 50,
            failure_detection: true,
            quiesce_deadline: Duration::from_secs(60),
            run_deadline: Duration::from_secs(300),
            retain_change_log: true,
            workers: 1,
            owner_cache: true,
            coalescing: true,
            tracing: false,
            checkpoint_dir: None,
            checkpoint_interval_batches: 0,
            checkpoint_keep: 2,
            change_log_cap: 0,
            disk_fault: None,
            disk_fault_seed: 0,
        }
    }
}

impl SystemConfig {
    /// The locator settings implied by this configuration.
    pub fn locator_config(&self) -> LocatorConfig {
        LocatorConfig {
            replication_threshold: self.replication_threshold,
            max_replicas: self.max_replicas,
        }
    }

    /// Resolved superstep worker count: the configured value, or (at 0)
    /// the host parallelism capped at 4 — agents share the machine with
    /// directories, streamers, and each other in the in-process
    /// deployment, so auto-detection stays modest. Never exceeds the
    /// shard count (32); extra workers would idle.
    pub fn workers_effective(&self) -> usize {
        let n = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            self.workers
        };
        n.clamp(1, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_choices() {
        let c = SystemConfig::default();
        assert_eq!(c.hash, HashKind::Wang);
        assert_eq!(c.virtual_agents, 100);
        assert_eq!(c.sketch_depth, 8);
        assert!(c.directories >= 1);
    }

    #[test]
    fn failure_detection_defaults_are_sane() {
        let c = SystemConfig::default();
        assert!(c.failure_detection);
        assert!(c.retain_change_log);
        // Detection latency must stay well under the quiesce deadline,
        // or a dead agent stalls every barrier past its budget.
        let detect = c.heartbeat_interval * c.heartbeat_misses;
        assert!(detect < c.quiesce_deadline);
        assert!(c.quiesce_deadline <= c.run_deadline);
        assert!(c.send_policy.retries > 0);
    }

    #[test]
    fn checkpointing_defaults_off_with_a_fallback_window() {
        let c = SystemConfig::default();
        assert!(c.checkpoint_dir.is_none(), "checkpointing is opt-in");
        assert_eq!(c.checkpoint_interval_batches, 0);
        assert!(
            c.checkpoint_keep >= 2,
            "must retain a fallback generation for corrupt-newest recovery"
        );
        assert_eq!(c.change_log_cap, 0, "log warning is opt-in");
        assert!(c.disk_fault.is_none(), "no fault injection outside chaos");
    }

    #[test]
    fn workers_effective_resolves_and_clamps() {
        let mut c = SystemConfig::default();
        assert!(c.owner_cache);
        assert!(c.coalescing);
        assert!(!c.tracing, "tracing must be opt-in");
        assert_eq!(c.workers_effective(), 1);
        c.workers = 4;
        assert_eq!(c.workers_effective(), 4);
        c.workers = 1000;
        assert_eq!(c.workers_effective(), 32);
        c.workers = 0;
        let auto = c.workers_effective();
        assert!((1..=4).contains(&auto));
    }

    #[test]
    fn locator_config_mirrors_fields() {
        let c = SystemConfig {
            replication_threshold: 99,
            max_replicas: 3,
            ..SystemConfig::default()
        };
        let lc = c.locator_config();
        assert_eq!(lc.replication_threshold, 99);
        assert_eq!(lc.max_replicas, 3);
    }
}
