//! End-to-end tests of the full ElGA system: master + directories +
//! agents on threads, exchanging only messages. Every algorithm result
//! is validated against the single-threaded references in
//! `elga_graph::reference`, as in the paper's §4.3 methodology.

use elga_core::algorithms::{Bfs, Degree, PageRank, Sssp, Wcc};
use elga_core::cluster::Cluster;
use elga_core::config::SystemConfig;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_graph::csr::Csr;
use elga_graph::reference;
use elga_graph::types::EdgeChange;

fn small_graph() -> Vec<(u64, u64)> {
    // Two weakly-connected components with a hub.
    vec![
        (0, 1),
        (1, 2),
        (2, 0),
        (2, 3),
        (3, 4),
        (4, 2),
        (0, 3),
        // second component
        (10, 11),
        (11, 12),
    ]
}

#[test]
fn degree_program_reports_out_degrees() {
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(small_graph());
    cluster.run(Degree::new()).unwrap();
    assert_eq!(cluster.query_u64(0), Some(2));
    assert_eq!(cluster.query_u64(2), Some(2));
    assert_eq!(cluster.query_u64(4), Some(1));
    assert_eq!(cluster.query_u64(12), Some(0));
    assert_eq!(cluster.query_u64(999), None, "unknown vertex");
    cluster.shutdown();
}

#[test]
fn pagerank_matches_reference_to_1e8() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    let stats = cluster.run(PageRank::new(0.85).with_max_iters(30)).unwrap();
    assert_eq!(stats.steps, 30);

    // Reference over densely relabeled ids.
    let mut ids: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    let dense: std::collections::HashMap<u64, u64> = ids
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u64))
        .collect();
    let dense_edges: Vec<(u64, u64)> = edges.iter().map(|&(u, v)| (dense[&u], dense[&v])).collect();
    let csr = Csr::from_edges(Some(ids.len()), &dense_edges);
    let expect = reference::pagerank(&csr, 0.85, 30);

    for &v in &ids {
        let got = cluster.query_f64(v).expect("rank");
        let want = expect[dense[&v] as usize];
        assert!(
            (got - want).abs() < reference::PAGERANK_TOLERANCE,
            "vertex {v}: got {got}, want {want}"
        );
    }
    cluster.shutdown();
}

#[test]
fn wcc_matches_union_find() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).unwrap();
    let expect = reference::wcc(edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "vertex {v}");
    }
    cluster.shutdown();
}

#[test]
fn bfs_and_sssp_match_references() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(edges.iter().copied());
    let csr = Csr::from_edges(None, &edges);

    cluster.run(Bfs::new(0)).unwrap();
    let expect = reference::bfs(&csr, 0);
    for (&v, &d) in &expect {
        assert_eq!(cluster.query_u64(v).and_then(Bfs::decode), Some(d));
    }
    // Unreached component.
    assert_eq!(cluster.query_u64(10).and_then(Bfs::decode), None);

    cluster.run(Sssp::new(0)).unwrap();
    let expect = reference::sssp(&csr, 0);
    for (&v, &d) in &expect {
        assert_eq!(cluster.query_u64(v).and_then(Sssp::decode), Some(d));
    }
    cluster.shutdown();
}

#[test]
fn replication_splits_hubs_and_stays_correct() {
    // Tiny replication threshold: the hub is split across agents.
    let mut hub_edges: Vec<(u64, u64)> = (1..=40).map(|i| (0, i)).collect();
    hub_edges.extend((1..=40).map(|i| (i, (i % 40) + 1)));
    let cfg = SystemConfig {
        replication_threshold: 8,
        ..SystemConfig::default()
    };
    let mut cluster = Cluster::builder().agents(4).config(cfg).build();
    cluster.ingest_edges(hub_edges.iter().copied());

    // The view's sketch must see the hub as high degree.
    let view = cluster.view();
    assert!(view.degree_estimate(0) >= 40, "hub degree underestimated");
    let loc = view.locator();
    assert!(
        loc.replication_factor(view.degree_estimate(0)) > 1,
        "hub should be replicated"
    );

    cluster.run(Wcc::new()).unwrap();
    let expect = reference::wcc(hub_edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "vertex {v}");
    }

    cluster.run(PageRank::new(0.85).with_max_iters(10)).unwrap();
    let total: f64 = (0..=40).map(|v| cluster.query_f64(v).unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-6, "rank mass {total}");
    cluster.shutdown();
}

#[test]
fn incremental_wcc_reuses_state() {
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges([(1, 2), (2, 3), (10, 11)]);
    cluster.run(Wcc::new()).unwrap();
    assert_eq!(cluster.query_u64(11), Some(10));

    // Insert a bridging edge; only touched vertices activate.
    cluster.ingest([EdgeChange::insert(3, 10)]);
    let stats = cluster
        .run_with(
            Wcc::new(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .unwrap();
    assert_eq!(cluster.query_u64(11), Some(1), "components merged");
    assert_eq!(cluster.query_u64(10), Some(1));
    assert_eq!(cluster.query_u64(1), Some(1));
    assert!(stats.steps >= 1);
    cluster.shutdown();
}

#[test]
fn incremental_wcc_handles_deletions_via_label_reset() {
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges([(1, 2), (2, 3), (3, 4)]);
    cluster.run(Wcc::new()).unwrap();
    assert_eq!(cluster.query_u64(4), Some(1));

    // Cut the chain: delete (2,3). Labels of the affected component
    // reset, then an incremental run recomputes.
    let old_label = cluster.query_u64(2).unwrap();
    cluster.ingest([EdgeChange::delete(2, 3)]);
    cluster.reset_labels(&[old_label]);
    cluster
        .run_with(
            Wcc::new(),
            RunOptions {
                reuse_state: true,
                mode: ExecutionMode::Sync,
            },
        )
        .unwrap();
    assert_eq!(cluster.query_u64(1), Some(1));
    assert_eq!(cluster.query_u64(2), Some(1));
    assert_eq!(cluster.query_u64(3), Some(3), "split component");
    assert_eq!(cluster.query_u64(4), Some(3));
    cluster.shutdown();
}

#[test]
fn async_wcc_matches_reference() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster
        .run_with(
            Wcc::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .unwrap();
    let expect = reference::wcc(edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "vertex {v}");
    }
    cluster.shutdown();
}

#[test]
fn elastic_scale_up_and_down_preserves_graph_and_results() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(2).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).unwrap();
    let expect = reference::wcc(edges.iter().copied());

    // Scale up.
    let new_ids = cluster.add_agents(3);
    assert_eq!(new_ids.len(), 3);
    cluster.quiesce().expect("quiesce");
    assert_eq!(cluster.agent_count(), 5);
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "after scale-up {v}");
    }
    cluster.run(Wcc::new()).unwrap();
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "rerun {v}");
    }

    // Scale down below the original size.
    for _ in 0..3 {
        cluster.remove_last_agent().unwrap();
    }
    cluster.quiesce().expect("quiesce");
    assert_eq!(cluster.agent_count(), 2);
    cluster.run(Wcc::new()).unwrap();
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "after scale-down {v}");
    }
    cluster.shutdown();
}

#[test]
fn queries_work_through_random_replicas() {
    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(small_graph());
    cluster.run(Wcc::new()).unwrap();
    for _ in 0..20 {
        let r = cluster.query_any(2).expect("replica answers");
        assert_eq!(r.state, 0);
    }
    cluster.shutdown();
}

#[test]
fn deletions_then_reinsertions_roundtrip() {
    let edges = small_graph();
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(edges.iter().copied());
    let before = cluster.metrics().edges;
    cluster.ingest([EdgeChange::delete(0, 1), EdgeChange::delete(2, 3)]);
    assert_eq!(cluster.metrics().edges, before - 2);
    cluster.ingest([EdgeChange::insert(0, 1), EdgeChange::insert(2, 3)]);
    assert_eq!(cluster.metrics().edges, before);
    // Graph is intact: WCC unchanged.
    cluster.run(Wcc::new()).unwrap();
    let expect = reference::wcc(edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label));
    }
    cluster.shutdown();
}

#[test]
fn mid_run_scaling_preserves_pagerank_exactly() {
    // Regression: a vertex whose meta and edges migrate together must
    // keep its global out-degree, or its rank mass silently vanishes.
    let mut edges: Vec<(u64, u64)> = (0..400u64)
        .map(|i| {
            (
                elga_hash::wang64(i) % 120,
                elga_hash::wang64(i * 31 + 5) % 120,
            )
        })
        .filter(|&(u, v)| u != v)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let csr = Csr::from_edges(Some(120), &edges);
    let expect = reference::pagerank(&csr, 0.85, 8);

    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(edges.iter().copied());
    let handle = cluster
        .start_run(PageRank::new(0.85).with_max_iters(8), RunOptions::default())
        .unwrap();
    // Join mid-run: applied at a superstep boundary with migration.
    cluster.add_agents(3);
    cluster.wait_run(handle).unwrap();

    let mut mass = 0.0;
    for v in 0..120u64 {
        if csr.out_degree(v) + csr.in_degree(v) == 0 {
            continue;
        }
        let got = cluster.query_f64(v).expect("rank");
        mass += got;
        assert!(
            (got - expect[v as usize]).abs() < reference::PAGERANK_TOLERANCE,
            "vertex {v}: got {got}, want {}",
            expect[v as usize]
        );
    }
    assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    cluster.shutdown();
}

#[test]
fn multi_directory_cluster_works() {
    // Two Directories: agents are assigned round-robin by the master;
    // the non-lead relays its agents' reports to the lead (paper
    // Figure 2 step 4: "Directories re-broadcast ready messages among
    // themselves").
    let mut cluster = Cluster::builder().agents(4).directories(2).build();
    let edges = small_graph();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).unwrap();
    let expect = reference::wcc(edges.iter().copied());
    for (&v, &label) in &expect {
        assert_eq!(cluster.query_u64(v), Some(label), "vertex {v}");
    }
    // PageRank across the relayed barrier path too.
    let csr = {
        let (ids, dense) = {
            let mut ids: Vec<u64> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
            ids.sort_unstable();
            ids.dedup();
            let index: std::collections::HashMap<u64, u64> = ids
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, i as u64))
                .collect();
            let dense: Vec<(u64, u64)> =
                edges.iter().map(|&(u, v)| (index[&u], index[&v])).collect();
            (ids, dense)
        };
        let n = ids.len();
        (ids, Csr::from_edges(Some(n), &dense))
    };
    cluster.run(PageRank::new(0.85).with_max_iters(10)).unwrap();
    let expect = reference::pagerank(&csr.1, 0.85, 10);
    for (i, &v) in csr.0.iter().enumerate() {
        let got = cluster.query_f64(v).unwrap();
        assert!((got - expect[i]).abs() < reference::PAGERANK_TOLERANCE);
    }
    cluster.shutdown();
}

#[test]
fn queries_run_concurrently_with_computation() {
    // Goal 4: maintenance supports concurrent queries. Hammer the
    // query path from another thread while a run is in flight.
    let mut cluster = Cluster::builder().agents(3).build();
    let edges: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 100, (i * 7 + 1) % 100)).collect();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Wcc::new()).unwrap();

    let transport = cluster.transport();
    let cfg = cluster.config().clone();
    let lead = cluster.lead_directory();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let querier = std::thread::spawn(move || {
        let mut proxy =
            elga_core::client::ClientProxy::connect(transport, cfg, lead).expect("proxy");
        let mut served = 0u64;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            if proxy.query(served % 100).is_some() {
                served += 1;
            }
        }
        served
    });
    // Several runs while queries hammer the agents.
    for _ in 0..3 {
        cluster.run(PageRank::new(0.85).with_max_iters(5)).unwrap();
        cluster.run(Wcc::new()).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let served = querier.join().unwrap();
    assert!(served > 0, "queries must be served during computation");
    cluster.shutdown();
}

#[test]
fn ingest_during_run_is_buffered_and_applied_after() {
    // §3.4: "While a batch is running, the graph does not change: any
    // edge changes are buffered."
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges((0..200u64).map(|i| (i, i + 1)));
    let handle = cluster
        .start_run(PageRank::new(0.85).with_max_iters(8), RunOptions::default())
        .unwrap();
    // Push changes mid-run without waiting for quiescence.
    cluster.ingest_async(&[EdgeChange::insert(500, 501), EdgeChange::delete(0, 1)]);
    cluster.wait_run(handle).unwrap();
    cluster.quiesce().expect("quiesce");
    // The buffered changes took effect after the run finished.
    let m = cluster.metrics().edges;
    assert_eq!(m, 200); // 200 original + 1 insert - 1 delete
    cluster.run(Degree::new()).unwrap();
    assert_eq!(cluster.query_u64(500), Some(1));
    // Vertex 0 only had the deleted edge: it is now isolated and the
    // store drops it entirely (Goal 2: memory tracks the current graph).
    assert_eq!(cluster.query_u64(0), None);
    cluster.shutdown();
}

#[test]
fn dag_levels_via_waiting_sets_match_reference() {
    // §3.2 waiting sets: each vertex is processed only after all of
    // its in-neighbors reported (async mode). Random DAG: orient every
    // edge from the smaller to the larger id.
    use elga_core::algorithms::DagLevel;
    let mut edges: Vec<(u64, u64)> = (0..600u64)
        .map(|i| {
            let a = elga_hash::wang64(i) % 150;
            let b = elga_hash::wang64(i * 17 + 3) % 150;
            (a.min(b), a.max(b))
        })
        .filter(|&(u, v)| u != v)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let csr = Csr::from_edges(Some(150), &edges);
    let expect = reference::dag_levels(&csr).expect("acyclic by construction");

    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    let vmsgs_before = cluster.metrics().vmsgs;
    cluster
        .run_with(
            DagLevel::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .unwrap();
    for (&v, &level) in &expect {
        let got = cluster.query_u64(v).and_then(DagLevel::decode);
        assert_eq!(got, Some(level), "vertex {v}");
    }
    // The quantitative waiting-set property: every vertex is processed
    // exactly once, so each edge carries exactly one message.
    let vmsgs = cluster.metrics().vmsgs - vmsgs_before;
    assert_eq!(
        vmsgs as usize,
        edges.len(),
        "waiting sets must deliver one message per edge"
    );
    cluster.shutdown();
}

#[test]
fn dag_levels_terminate_cleanly_on_cycles() {
    // A cycle can never satisfy its waiting sets; the run must still
    // terminate (counters settle) with the cyclic part unleveled.
    use elga_core::algorithms::DagLevel;
    let edges = [(0u64, 1u64), (1, 2), (2, 0), (5, 6), (0, 5)];
    let mut cluster = Cluster::builder().agents(3).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster
        .run_with(
            DagLevel::new(),
            RunOptions {
                reuse_state: false,
                mode: ExecutionMode::Async,
            },
        )
        .unwrap();
    for v in [0u64, 1, 2, 5, 6] {
        let got = cluster.query_u64(v).and_then(DagLevel::decode);
        assert_eq!(got, None, "vertex {v} is on or downstream of the cycle");
    }
    cluster.shutdown();
}

#[test]
fn personalized_pagerank_matches_reference_and_dump_extracts_all() {
    use elga_core::algorithms::Ppr;
    let mut edges: Vec<(u64, u64)> = (0..400u64)
        .map(|i| {
            (
                elga_hash::wang64(i) % 90,
                elga_hash::wang64(i * 11 + 1) % 90,
            )
        })
        .filter(|&(u, v)| u != v)
        .collect();
    edges.sort_unstable();
    edges.dedup();
    let csr = Csr::from_edges(Some(90), &edges);
    let expect = reference::personalized_pagerank(&csr, 7, 0.85, 12);

    let mut cluster = Cluster::builder().agents(4).build();
    cluster.ingest_edges(edges.iter().copied());
    cluster.run(Ppr::new(7, 0.85).with_max_iters(12)).unwrap();

    // Bulk extraction: one DUMP round instead of per-vertex queries.
    let dump = cluster.dump_states();
    let mut mass = 0.0;
    for v in 0..90u64 {
        if csr.out_degree(v) + csr.in_degree(v) == 0 {
            continue;
        }
        let got = f64::from_bits(*dump.get(&v).expect("dumped"));
        mass += got;
        assert!(
            (got - expect[v as usize]).abs() < reference::PAGERANK_TOLERANCE,
            "vertex {v}: {got} vs {}",
            expect[v as usize]
        );
    }
    assert!((mass - 1.0).abs() < 1e-9, "ppr mass {mass}");
    cluster.shutdown();
}
