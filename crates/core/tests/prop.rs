//! Property tests for the core wire protocol and autoscaler.

use elga_core::autoscale::{Autoscaler, EmaAutoscaler};
use elga_core::metrics::{AgentMetrics, ClusterMetrics};
use elga_core::msg::{self, Counters, Phase, ReadyReport, StateRecord};
use elga_net::Frame;
use proptest::prelude::*;
use std::time::{Duration, Instant};

proptest! {
    /// No decoder may panic on arbitrary bytes — a malformed or
    /// truncated frame must surface as `None` ("ensure that the
    /// endpoint remains valid", §3.4).
    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 1..256)) {
        let frame = Frame::from_bytes(bytes.into());
        let _ = msg::DirectoryView::decode(&frame);
        let _ = msg::decode_edge_changes(&frame);
        let _ = msg::decode_vmsgs(&frame);
        let _ = msg::decode_partials(&frame);
        let _ = msg::decode_states(&frame);
        let _ = msg::decode_ready(&frame);
        let _ = msg::decode_advance(&frame);
        let _ = msg::decode_mig_meta(&frame);
        let _ = msg::decode_deg_deltas(&frame);
        let _ = msg::decode_join_reply(&frame);
        let _ = msg::decode_start(&frame);
        let _ = msg::decode_run_status(&frame);
        let _ = msg::decode_reset_labels(&frame);
        let _ = msg::decode_sketch_delta(&frame);
        let _ = AgentMetrics::decode(&frame);
        let _ = ClusterMetrics::decode(&frame);
    }

    /// A frame of one packet type must be rejected by every other
    /// type's decoder — the 1-byte type tag is load-bearing, so a
    /// misrouted frame surfaces as `None`, never as garbage records.
    #[test]
    fn decoders_reject_wrong_packet_type(
        run in any::<u64>(),
        step in any::<u32>(),
        v in any::<u64>(),
        val in any::<u64>(),
    ) {
        use elga_graph::types::EdgeChange;
        let vm = msg::encode_vmsgs(run, step, &[(v, val)]);
        let pt = msg::encode_partials(run, step, &[(v, val)]);
        let ec = msg::encode_edge_changes(msg::Side::Out, 0, &[EdgeChange::insert(v, val)]);
        let dd = msg::encode_deg_deltas(&[(v, 1, -1)]);
        for frame in [&pt, &ec, &dd] {
            prop_assert!(msg::decode_vmsgs(frame).is_none());
        }
        for frame in [&vm, &ec, &dd] {
            prop_assert!(msg::decode_partials(frame).is_none());
            prop_assert!(msg::decode_states(frame).is_none());
        }
        for frame in [&vm, &pt, &dd] {
            prop_assert!(msg::decode_edge_changes(frame).is_none());
        }
        for frame in [&vm, &pt, &ec] {
            prop_assert!(msg::decode_deg_deltas(frame).is_none());
            prop_assert!(msg::decode_ready(frame).is_none());
            prop_assert!(msg::decode_advance(frame).is_none());
        }
    }

    /// Every strict prefix of a valid record-bearing frame must decode
    /// to `None`: the record count promises bytes the prefix lacks, so
    /// truncation can never yield a shorter-but-plausible batch.
    #[test]
    fn decoders_reject_truncated_frames(
        run in any::<u64>(),
        step in any::<u32>(),
        msgs in prop::collection::vec((any::<u64>(), any::<u64>()), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        use elga_graph::types::EdgeChange;
        let cut = |frame: &Frame| {
            // Keep at least the type byte; drop at least one byte.
            let n = frame.len();
            let keep = 1 + ((n - 1) as f64 * cut_frac) as usize;
            Frame::from_bytes(frame.as_bytes()[..keep.min(n - 1)].to_vec().into())
        };
        let vm = msg::encode_vmsgs(run, step, &msgs);
        prop_assert!(msg::decode_vmsgs(&cut(&vm)).is_none());
        let pt = msg::encode_partials(run, step, &msgs);
        prop_assert!(msg::decode_partials(&cut(&pt)).is_none());
        let changes: Vec<EdgeChange> =
            msgs.iter().map(|&(u, v)| EdgeChange::insert(u, v)).collect();
        let ec = msg::encode_edge_changes(msg::Side::In, 1, &changes);
        prop_assert!(msg::decode_edge_changes(&cut(&ec)).is_none());
        let deltas: Vec<(u64, i64, i64)> =
            msgs.iter().map(|&(v, d)| (v, d as i64, 1)).collect();
        let dd = msg::encode_deg_deltas(&deltas);
        prop_assert!(msg::decode_deg_deltas(&cut(&dd)).is_none());
    }

    /// A record region that is not an exact multiple of the stride is
    /// malformed: appending 1..stride-1 trailing bytes to a valid frame
    /// must flip every borrowed decoder to `None` (trailing bytes are
    /// rejected, never silently ignored).
    #[test]
    fn decoders_reject_misaligned_trailing_bytes(
        run in any::<u64>(),
        step in any::<u32>(),
        msgs in prop::collection::vec((any::<u64>(), any::<u64>()), 1..16),
        pad in prop::collection::vec(any::<u8>(), 1..15),
    ) {
        use elga_graph::types::EdgeChange;
        let extend = |frame: &Frame, n: usize| {
            let mut bytes = frame.as_bytes().to_vec();
            bytes.extend_from_slice(&pad[..n]);
            Frame::from_bytes(bytes.into())
        };
        // Strides: vmsg/partial 16, edge-change 17, deg-delta 24.
        let vm = msg::encode_vmsgs(run, step, &msgs);
        prop_assert!(msg::decode_vmsgs(&extend(&vm, pad.len())).is_none());
        let pt = msg::encode_partials(run, step, &msgs);
        prop_assert!(msg::decode_partials(&extend(&pt, pad.len())).is_none());
        let changes: Vec<EdgeChange> =
            msgs.iter().map(|&(u, v)| EdgeChange::insert(u, v)).collect();
        let ec = msg::encode_edge_changes(msg::Side::Out, 0, &changes);
        prop_assert!(msg::decode_edge_changes(&extend(&ec, pad.len())).is_none());
        let deltas: Vec<(u64, i64, i64)> =
            msgs.iter().map(|&(v, d)| (v, d as i64, -1)).collect();
        let dd = msg::encode_deg_deltas(&deltas);
        prop_assert!(msg::decode_deg_deltas(&extend(&dd, pad.len())).is_none());
    }

    /// Borrowed views round-trip: iterating a decoded view yields the
    /// exact records that were encoded, in order.
    #[test]
    fn borrowed_views_roundtrip(
        run in any::<u64>(),
        step in any::<u32>(),
        msgs in prop::collection::vec((any::<u64>(), any::<u64>()), 0..64,),
        hop in any::<u8>(),
    ) {
        use elga_graph::types::EdgeChange;
        let vm = msg::encode_vmsgs(run, step, &msgs);
        let view = msg::decode_vmsgs(&vm).unwrap();
        prop_assert_eq!((view.run, view.step), (run, step));
        prop_assert_eq!(view.records.len(), msgs.len());
        prop_assert_eq!(view.records.to_vec(), msgs.clone());
        let changes: Vec<EdgeChange> = msgs
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| {
                if i % 2 == 0 { EdgeChange::insert(u, v) } else { EdgeChange::delete(u, v) }
            })
            .collect();
        let ec = msg::encode_edge_changes(msg::Side::In, hop, &changes);
        let view = msg::decode_edge_changes(&ec).unwrap();
        prop_assert_eq!((view.side, view.hop), (msg::Side::In, hop));
        prop_assert_eq!(view.records.to_vec(), changes);
        let deltas: Vec<(u64, i64, i64)> = msgs
            .iter()
            .map(|&(v, d)| (v, d as i64, (d as i64).wrapping_neg()))
            .collect();
        let dd = msg::encode_deg_deltas(&deltas);
        prop_assert_eq!(msg::decode_deg_deltas(&dd).unwrap().to_vec(), deltas);
    }

    /// READY reports round-trip exactly for arbitrary field values.
    #[test]
    fn ready_roundtrip(
        agent in any::<u64>(),
        run in any::<u64>(),
        step in any::<u32>(),
        phase_byte in 0u8..4,
        counters in prop::collection::vec(any::<u64>(), 10),
        active in any::<u64>(),
        contrib in any::<f64>(),
        n_primary in any::<u64>(),
        seq in any::<u64>(),
        epoch in any::<u64>(),
    ) {
        prop_assume!(!contrib.is_nan());
        let rep = ReadyReport {
            agent,
            run,
            step,
            phase: Phase::from_u8(phase_byte).unwrap(),
            counters: Counters {
                vmsg_sent: counters[0],
                vmsg_recv: counters[1],
                part_sent: counters[2],
                part_recv: counters[3],
                state_sent: counters[4],
                state_recv: counters[5],
                mig_sent: counters[6],
                mig_recv: counters[7],
                chg_sent: counters[8],
                chg_recv: counters[9],
            },
            active,
            global_contrib: contrib,
            n_primary,
            seq,
            epoch,
        };
        prop_assert_eq!(msg::decode_ready(&msg::encode_ready(&rep)).unwrap(), rep);
    }

    /// State batches round-trip for arbitrary values.
    #[test]
    fn states_roundtrip(
        run in any::<u64>(),
        step in any::<u32>(),
        recs in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
            0..64,
        ),
    ) {
        let records: Vec<StateRecord> = recs
            .iter()
            .map(|&(vertex, state, out_degree, active)| StateRecord {
                vertex,
                state,
                out_degree,
                aux: state ^ out_degree,
                active,
            })
            .collect();
        let frame = msg::encode_states(run, step, &records);
        let view = msg::decode_states(&frame).unwrap();
        prop_assert_eq!((view.run, view.step), (run, step));
        let back: Vec<StateRecord> = view.records.into_iter().collect();
        prop_assert_eq!(back, records);
    }

    /// Counters settle exactly when each pair matches, and `add` is
    /// commutative.
    #[test]
    fn counters_algebra(a in prop::collection::vec(0u64..1000, 10), b in prop::collection::vec(0u64..1000, 10)) {
        let mk = |v: &[u64]| Counters {
            vmsg_sent: v[0], vmsg_recv: v[1],
            part_sent: v[2], part_recv: v[3],
            state_sent: v[4], state_recv: v[5],
            mig_sent: v[6], mig_recv: v[7],
            chg_sent: v[8], chg_recv: v[9],
        };
        let ca = mk(&a);
        let cb = mk(&b);
        prop_assert_eq!(ca.add(&cb), cb.add(&ca));
        let expected = a[0] == a[1] && a[2] == a[3] && a[4] == a[5] && a[6] == a[7] && a[8] == a[9];
        prop_assert_eq!(ca.settled(), expected);
    }

    /// The EMA autoscaler's target is always within bounds and the EMA
    /// always lies between the running min and max of observations.
    #[test]
    fn autoscaler_stays_bounded(
        observations in prop::collection::vec(0.0f64..1e6, 1..50),
        min_a in 1usize..4,
        extra in 0usize..20,
    ) {
        let max_a = min_a + extra;
        let mut p = EmaAutoscaler::new(Duration::from_millis(100), 123.0, min_a, max_a)
            .with_cooldown(Duration::ZERO);
        let t0 = Instant::now();
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for (i, &obs) in observations.iter().enumerate() {
            lo = lo.min(obs);
            hi = hi.max(obs);
            if let Some(target) = p.observe(obs, t0 + Duration::from_millis(i as u64 * 10)) {
                prop_assert!(target >= min_a && target <= max_a);
            }
            let ema = p.ema().unwrap();
            prop_assert!(ema >= lo - 1e-9 && ema <= hi + 1e-9, "ema {} not in [{}, {}]", ema, lo, hi);
        }
    }
}
