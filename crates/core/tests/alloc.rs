//! Pins the zero-allocation guarantee of the borrowed wire decoders:
//! decoding a frame into a view and iterating every record must not
//! touch the heap. A counting global allocator makes any regression —
//! an accidental `Vec` in a decoder, a `to_vec()` on the hot path —
//! fail loudly instead of silently costing an allocation per record.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! so no sibling test thread can allocate while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use elga_core::msg::{self, StateRecord};
use elga_graph::types::EdgeChange;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Run `f` with the allocation counter armed; return how many heap
/// allocations (alloc + realloc) happened while it ran. The counter is
/// process-global, so a concurrent harness thread can inflate a single
/// reading — callers take the minimum over several runs.
fn allocations_in(f: &mut impl FnMut()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Minimum armed-allocation count over `runs` invocations of `f` —
/// filters out unrelated allocations from other process threads.
fn min_allocations(runs: usize, mut f: impl FnMut()) -> u64 {
    (0..runs).map(|_| allocations_in(&mut f)).min().unwrap()
}

#[test]
fn decode_and_iterate_allocates_nothing() {
    const N: usize = 1024;
    let vmsgs: Vec<(u64, u64)> = (0..N as u64).map(|i| (i, i.wrapping_mul(31))).collect();
    let states: Vec<StateRecord> = (0..N as u64)
        .map(|i| StateRecord {
            vertex: i,
            state: i ^ 0xfeed,
            out_degree: i % 17,
            aux: 0,
            active: i % 3 == 0,
        })
        .collect();
    let changes: Vec<EdgeChange> = (0..N as u64)
        .map(|i| {
            if i % 2 == 0 {
                EdgeChange::insert(i, i + 1)
            } else {
                EdgeChange::delete(i, i + 1)
            }
        })
        .collect();
    let deltas: Vec<(u64, i64, i64)> = (0..N as u64).map(|i| (i, i as i64, -(i as i64))).collect();

    // Encode outside the armed window — encoding allocates by design.
    let vm = msg::encode_vmsgs(7, 3, &vmsgs);
    let pt = msg::encode_partials(7, 3, &vmsgs);
    let st = msg::encode_states(7, 3, &states);
    let ec = msg::encode_edge_changes(msg::Side::Out, 1, &changes);
    let dd = msg::encode_deg_deltas(&deltas);

    // Warm up once so any lazy one-time setup isn't billed to decode.
    let mut sum = 0u64;
    for (v, x) in msg::decode_vmsgs(&vm).unwrap().records {
        sum ^= v ^ x;
    }
    black_box(sum);

    let allocs = min_allocations(8, || {
        let mut acc = 0u64;
        let view = msg::decode_vmsgs(&vm).unwrap();
        for (v, x) in view.records {
            acc = acc.wrapping_add(v ^ x);
        }
        let view = msg::decode_partials(&pt).unwrap();
        for (v, x) in view.records {
            acc = acc.wrapping_add(v.wrapping_mul(x));
        }
        let view = msg::decode_states(&st).unwrap();
        for rec in view.records {
            acc = acc.wrapping_add(rec.vertex ^ rec.state ^ rec.out_degree);
            acc = acc.wrapping_add(rec.active as u64);
        }
        let view = msg::decode_edge_changes(&ec).unwrap();
        for c in view.records {
            acc = acc.wrapping_add(c.edge.src ^ c.edge.dst);
        }
        let view = msg::decode_deg_deltas(&dd).unwrap();
        for (v, dout, din) in view {
            acc = acc
                .wrapping_add(v)
                .wrapping_add(dout as u64)
                .wrapping_add(din as u64);
        }
        black_box(acc);
    });
    assert_eq!(
        allocs, 0,
        "decoding and iterating {N} records of each type must not allocate"
    );
}
