//! Hot-path decode microbenchmark: borrowed zero-copy views vs the
//! materializing `Vec` decoders they replaced.
//!
//! Every scatter/combine/ingest receive used to decode its frame into
//! freshly allocated `Vec`s of records before consuming them. The
//! borrowed views (`msg::Records`) parse records in place off the
//! frame's pooled receive buffer instead. This bench reconstructs the
//! old `Vec` baseline locally and measures both paths over many
//! distinct frames (so the working set exceeds cache and the copy cost
//! is real), reporting records/second.
//!
//! Writes `BENCH_decode.json` at the workspace root (override with
//! `ELGA_BENCH_DECODE_OUT`).

use elga_bench::{banner, mean_ci, trials};
use elga_core::msg::{self, packet, StateRecord};
use elga_graph::types::{Action, EdgeChange};
use elga_net::Frame;
use std::hint::black_box;
use std::time::Instant;

/// Distinct frames per pass — spreads the working set (~16 MiB per
/// record type) far past cache so the baseline's allocate-copy-read
/// round trip pays for memory.
const FRAMES: usize = 256;
/// Records per frame (~64 KiB of 16-byte records, the coalescer's
/// flush size).
const RECS: usize = 4096;

// ---------------------------------------------------------------------
// The pre-view baseline, reconstructed: decode the whole frame into
// owned Vecs (exactly what `decode_vmsgs` & friends returned before
// they became borrowing), then consume.
// ---------------------------------------------------------------------

#[allow(clippy::type_complexity)]
fn vec_decode_vmsgs(frame: &Frame) -> Option<(u64, u32, Vec<(u64, u64)>)> {
    if frame.packet_type() != packet::VMSG {
        return None;
    }
    let mut r = frame.reader();
    let run = r.u64()?;
    let step = r.u32()?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((r.u64()?, r.u64()?));
    }
    Some((run, step, out))
}

fn vec_decode_states(frame: &Frame) -> Option<(u64, u32, Vec<StateRecord>)> {
    if frame.packet_type() != packet::STATE {
        return None;
    }
    let mut r = frame.reader();
    let run = r.u64()?;
    let step = r.u32()?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(StateRecord {
            vertex: r.u64()?,
            state: r.u64()?,
            out_degree: r.u64()?,
            aux: r.u64()?,
            active: r.u8()? != 0,
        });
    }
    Some((run, step, out))
}

fn vec_decode_edge_changes(frame: &Frame) -> Option<(u8, u8, Vec<EdgeChange>)> {
    if frame.packet_type() != packet::EDGE_CHANGES {
        return None;
    }
    let mut r = frame.reader();
    let side = r.u8()?;
    let hop = r.u8()?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let action = match r.u8()? {
            0 => Action::Insert,
            1 => Action::Delete,
            _ => return None,
        };
        let (src, dst) = (r.u64()?, r.u64()?);
        out.push(match action {
            Action::Insert => EdgeChange::insert(src, dst),
            Action::Delete => EdgeChange::delete(src, dst),
        });
    }
    Some((side, hop, out))
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

struct Pair {
    name: &'static str,
    view_rps: f64,
    vec_rps: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.view_rps / self.vec_rps
    }
}

/// Time `consume` over every frame, `trials()` times; records/second.
fn measure(frames: &[Frame], mut consume: impl FnMut(&Frame) -> u64) -> f64 {
    let total = (frames.len() * RECS) as f64;
    let mut samples = Vec::new();
    for _ in 0..trials().max(3) {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for f in frames {
            acc = acc.wrapping_add(consume(f));
        }
        black_box(acc);
        samples.push(total / t0.elapsed().as_secs_f64());
    }
    mean_ci(&samples).0
}

fn bench_vmsgs() -> Pair {
    let frames: Vec<Frame> = (0..FRAMES as u64)
        .map(|i| {
            let recs: Vec<(u64, u64)> = (0..RECS as u64)
                .map(|j| (i * RECS as u64 + j, j.wrapping_mul(0x9e3779b9)))
                .collect();
            msg::encode_vmsgs(7, 3, &recs)
        })
        .collect();
    let view_rps = measure(&frames, |f| {
        let view = msg::decode_vmsgs(f).expect("vmsg view");
        let mut acc = 0u64;
        for (v, x) in view.records {
            acc = acc.wrapping_add(v ^ x);
        }
        acc
    });
    let vec_rps = measure(&frames, |f| {
        let (_, _, recs) = vec_decode_vmsgs(f).expect("vmsg vec");
        let mut acc = 0u64;
        for (v, x) in recs {
            acc = acc.wrapping_add(v ^ x);
        }
        acc
    });
    Pair {
        name: "vmsg",
        view_rps,
        vec_rps,
    }
}

fn bench_states() -> Pair {
    let frames: Vec<Frame> = (0..FRAMES as u64)
        .map(|i| {
            let recs: Vec<StateRecord> = (0..RECS as u64)
                .map(|j| StateRecord {
                    vertex: i * RECS as u64 + j,
                    state: j ^ 0xfeed,
                    out_degree: j % 31,
                    aux: 0,
                    active: j % 3 == 0,
                })
                .collect();
            msg::encode_states(7, 3, &recs)
        })
        .collect();
    let view_rps = measure(&frames, |f| {
        let view = msg::decode_states(f).expect("state view");
        let mut acc = 0u64;
        for rec in view.records {
            acc = acc
                .wrapping_add(rec.vertex ^ rec.state ^ rec.out_degree)
                .wrapping_add(rec.active as u64);
        }
        acc
    });
    let vec_rps = measure(&frames, |f| {
        let (_, _, recs) = vec_decode_states(f).expect("state vec");
        let mut acc = 0u64;
        for rec in recs {
            acc = acc
                .wrapping_add(rec.vertex ^ rec.state ^ rec.out_degree)
                .wrapping_add(rec.active as u64);
        }
        acc
    });
    Pair {
        name: "state",
        view_rps,
        vec_rps,
    }
}

fn bench_edge_changes() -> Pair {
    let frames: Vec<Frame> = (0..FRAMES as u64)
        .map(|i| {
            let recs: Vec<EdgeChange> = (0..RECS as u64)
                .map(|j| {
                    let (u, v) = (i * RECS as u64 + j, j.wrapping_mul(31));
                    if j % 2 == 0 {
                        EdgeChange::insert(u, v)
                    } else {
                        EdgeChange::delete(u, v)
                    }
                })
                .collect();
            msg::encode_edge_changes(msg::Side::Out, 1, &recs)
        })
        .collect();
    let view_rps = measure(&frames, |f| {
        let view = msg::decode_edge_changes(f).expect("changes view");
        let mut acc = 0u64;
        for c in view.records {
            acc = acc.wrapping_add(c.edge.src ^ c.edge.dst);
        }
        acc
    });
    let vec_rps = measure(&frames, |f| {
        let (_, _, recs) = vec_decode_edge_changes(f).expect("changes vec");
        let mut acc = 0u64;
        for c in recs {
            acc = acc.wrapping_add(c.edge.src ^ c.edge.dst);
        }
        acc
    });
    Pair {
        name: "edge_change",
        view_rps,
        vec_rps,
    }
}

fn main() {
    banner(
        "decode microbench",
        "borrowed zero-copy views vs materializing Vec decoders",
    );
    println!("({FRAMES} frames x {RECS} records per type, decode + fold every record)");
    println!(
        "{:>12} {:>16} {:>16} {:>9}",
        "record", "view rec/s", "vec rec/s", "speedup"
    );
    let pairs = [bench_vmsgs(), bench_states(), bench_edge_changes()];
    for p in &pairs {
        println!(
            "{:>12} {:>16.0} {:>16.0} {:>8.2}x",
            p.name,
            p.view_rps,
            p.vec_rps,
            p.speedup()
        );
    }
    write_json(&pairs);
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(pairs: &[Pair]) {
    let path = std::env::var("ELGA_BENCH_DECODE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"decode_micro\",\n");
    body.push_str(&format!(
        "  \"frames\": {FRAMES},\n  \"records_per_frame\": {RECS},\n  \"rows\": [\n"
    ));
    for (i, p) in pairs.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"record\": \"{}\", \"view_rec_per_sec\": {:.0}, \"vec_rec_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}{}\n",
            p.name,
            p.view_rps,
            p.vec_rps,
            p.speedup(),
            if i + 1 == pairs.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
