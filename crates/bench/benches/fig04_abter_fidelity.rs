//! Figure 4 — "Per-iteration runtime of PageRank on LiveJournal with
//! three A-BTER generated LiveJournal-like graphs. The relative
//! runtimes, i.e., ratio between ElGA's and Blogel's runtimes remain
//! consistent."
//!
//! We measure ElGA and the Blogel-like baseline on a LiveJournal-like
//! seed graph, a same-size BTER replica (×1), and a ×10 replica, and
//! print the per-iteration times plus the ElGA/Blogel ratio. The claim
//! under reproduction: the ratio stays roughly flat as scale grows —
//! synthetic replicas are valid stand-ins for measuring systems.

use elga_baselines::BlogelEngine;
use elga_bench::{banner, baseline_threads, cluster, densify, fmt_ms, generate, timed_trials};
use elga_core::algorithms::PageRank;
use elga_gen::bter::BterModel;
use elga_gen::catalog::find;
use elga_graph::csr::Csr;

const ITERS: u32 = 5;

fn measure(name: &str, edges: &[(u64, u64)]) -> (f64, f64) {
    // ElGA per-iteration.
    let (elga_mean, elga_ci) = timed_trials(|| {
        let mut c = cluster(4);
        c.ingest_edges(edges.iter().copied());
        let stats = c
            .run(PageRank::new(0.85).with_max_iters(ITERS))
            .expect("run");
        let mean = stats.mean_iteration();
        c.shutdown();
        mean
    });
    // Blogel per-iteration.
    let (n, dense) = densify(edges);
    let (blogel_mean, blogel_ci) = timed_trials(|| {
        let engine = BlogelEngine::new(Csr::from_edges(Some(n), &dense), baseline_threads());
        let t0 = std::time::Instant::now();
        let _ = engine.pagerank(0.85, ITERS as usize);
        t0.elapsed() / ITERS
    });
    println!(
        "{:<22} m={:>8}  ElGA {}  Blogel {}  ratio {:5.2}x",
        name,
        edges.len(),
        fmt_ms(elga_mean, elga_ci),
        fmt_ms(blogel_mean, blogel_ci),
        elga_mean / blogel_mean,
    );
    (elga_mean, blogel_mean)
}

fn main() {
    banner(
        "Figure 4",
        "PageRank per-iteration: LiveJournal seed vs A-BTER-style replicas (x1, x10)",
    );
    let lj = find("LiveJournal").expect("catalog");
    let (_, seed) = generate(&lj, 7);
    let (e0, b0) = measure("LiveJournal (seed)", &seed);

    let model = BterModel::from_seed(&seed, 16);
    let x1 = model.generate(1.0, 11);
    let (e1, b1) = measure("BTER replica x1", &x1.edges);
    let x10 = model.generate(10.0, 13);
    let (e10, b10) = measure("BTER replica x10", &x10.edges);

    let err = x1.degree_error(&model, 1.0);
    println!(
        "\nreplica x1 degree-distribution error vs model: {:.1}%",
        err * 100.0
    );
    println!(
        "ElGA/Blogel ratio consistency: seed {:.2}x, x1 {:.2}x, x10 {:.2}x",
        e0 / b0,
        e1 / b1,
        e10 / b10
    );
}
