//! Intra-agent parallelism and owner-cache ablations.
//!
//! Two measurements back the PR's perf claims:
//!
//! 1. **Superstep kernels** — wall time of a scatter-heavy PageRank
//!    run on one agent at `workers = 1` vs `workers = 4`. The kernels
//!    split the fixed vertex shards across a scoped pool and merge
//!    per-shard output in shard order, so the speedup is free of any
//!    result change (see `tests/determinism.rs`).
//! 2. **Streamer ingest routing** — `Streamer::send_batch` throughput
//!    with the per-epoch owner cache on vs off (`owner_cache = false`
//!    routes through the pre-cache per-edge path). Each batch repeats
//!    source vertices heavily, which is exactly what the cache memoises
//!    (one sketch estimate + ring walk per distinct source per epoch).

use elga_bench::{banner, mean_ci, trials};
use elga_core::algorithms::PageRank;
use elga_core::cluster::Cluster;
use elga_core::config::SystemConfig;
use elga_core::streamer::Streamer;
use elga_graph::types::EdgeChange;
use elga_hash::{EdgeLocator, HashKind, LocatorConfig, OwnerCache, Ring};
use elga_sketch::CountMinSketch;
use std::time::Instant;

/// Ring with multiplicative chords plus hub fan-outs: enough edges per
/// vertex that scatter dominates the superstep.
fn scatter_heavy_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        edges.push((i, (i * 7 + 3) % n));
        edges.push((i, (i * 13 + 5) % n));
        edges.push((i, (i * 31 + 11) % n));
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn pagerank_secs(workers: usize, edges: &[(u64, u64)]) -> f64 {
    let mut c = Cluster::builder().agents(1).workers(workers).build();
    c.ingest_edges(edges.iter().copied());
    let t0 = Instant::now();
    c.run(PageRank::new(0.85).with_max_iters(10)).expect("run");
    let secs = t0.elapsed().as_secs_f64();
    c.shutdown();
    secs
}

fn ingest_secs(owner_cache: bool, changes: &[EdgeChange]) -> f64 {
    let cfg = SystemConfig {
        owner_cache,
        ..SystemConfig::default()
    };
    let c = Cluster::builder().agents(2).config(cfg.clone()).build();
    let mut s = Streamer::connect(c.transport(), cfg, c.lead_directory()).expect("streamer");
    let t0 = Instant::now();
    for chunk in changes.chunks(8192) {
        s.send_batch(chunk).expect("send");
    }
    let secs = t0.elapsed().as_secs_f64();
    c.quiesce().expect("quiesce");
    c.shutdown();
    secs
}

fn main() {
    banner(
        "parallel kernels",
        "superstep workers and owner-cache ablations",
    );

    let edges = scatter_heavy_graph(40_000);
    println!("scatter-heavy graph: {} edges, 1 agent", edges.len());
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    for _ in 0..trials() {
        serial.push(pagerank_secs(1, &edges));
        parallel.push(pagerank_secs(4, &edges));
    }
    let (s1, _) = mean_ci(&serial);
    let (s4, _) = mean_ci(&parallel);
    println!(
        "  PageRank x10  workers=1: {s1:.3}s  workers=4: {s4:.3}s  speedup: {:.2}x",
        s1 / s4
    );

    let changes: Vec<EdgeChange> = edges
        .iter()
        .map(|&(u, v)| EdgeChange::insert(u, v))
        .collect();
    let mut cached = Vec::new();
    let mut uncached = Vec::new();
    for _ in 0..trials() {
        uncached.push(ingest_secs(false, &changes));
        cached.push(ingest_secs(true, &changes));
    }
    let (off, _) = mean_ci(&uncached);
    let (on, _) = mean_ci(&cached);
    println!(
        "  ingest {} changes  cache off: {off:.3}s  cache on: {on:.3}s  speedup: {:.2}x",
        changes.len(),
        off / on
    );

    resolution_microbench();
}

/// Owner resolution in isolation: the exact pair stream and epoch
/// cadence `Streamer::route` sees (both placements per change, cache
/// invalidated every batch because each sketch push bumps the view
/// epoch), on a hub-heavy graph with replication engaged. End-to-end
/// ingest divides this win by everything else sharing the wall clock
/// (sketch deltas, agent-side application — all of it on this core);
/// the resolution itself is the number the cache moves.
fn resolution_microbench() {
    let ring = Ring::from_agents(HashKind::Wang, 100, 0..4u64);
    let loc = EdgeLocator::new(
        ring,
        LocatorConfig {
            replication_threshold: 256,
            max_replicas: 16,
        },
    );
    let mut sketch = CountMinSketch::new(1 << 12, 8);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for h in 0..200u64 {
        for j in 0..600u64 {
            edges.push((h, 200 + (h * 600 + j) % 100_000));
        }
    }
    for i in 0..50_000u64 {
        edges.push((200 + i, 200 + (i + 1) % 100_000));
    }
    for &(u, _) in &edges {
        sketch.add(u, 1);
    }
    let pairs_of = |chunk: &[(u64, u64)]| -> Vec<(u64, u64)> {
        let mut p = Vec::with_capacity(chunk.len() * 2);
        for &(u, v) in chunk {
            p.push((u, v));
            p.push((v, u));
        }
        p
    };
    let mut direct = Vec::new();
    let mut memo = Vec::new();
    for _ in 0..trials() {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for chunk in edges.chunks(8192) {
            for (u, v) in pairs_of(chunk) {
                if let Some(o) = loc.owner_of_edge(u, v, sketch.estimate(u)) {
                    acc ^= o;
                }
            }
        }
        direct.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(acc);

        let mut cache = OwnerCache::new();
        let mut owners = Vec::new();
        let t0 = Instant::now();
        let mut acc2 = 0u64;
        for (i, chunk) in edges.chunks(8192).enumerate() {
            cache.ensure_epoch(i as u64 + 1);
            owners.clear();
            cache.resolve_many(&loc, &pairs_of(chunk), |u| sketch.estimate(u), &mut owners);
            for o in owners.iter().flatten() {
                acc2 ^= o;
            }
        }
        memo.push(t0.elapsed().as_secs_f64());
        assert_eq!(acc, acc2, "cached and direct resolution disagree");
    }
    let (d, _) = mean_ci(&direct);
    let (m, _) = mean_ci(&memo);
    let per_edge = |s: f64| s / (2.0 * edges.len() as f64) * 1e9;
    println!(
        "  owner resolution ({} pairs, replicated hubs, epoch/batch)  direct: {:.1}ns/pair  \
         cached: {:.1}ns/pair  speedup: {:.2}x",
        2 * edges.len(),
        per_edge(d),
        per_edge(m),
        d / m
    );
}
