//! Table 2 — "The graphs used in our experiments."
//!
//! Regenerates the dataset inventory synthetically (see DESIGN.md
//! substitutions) and prints published vs. generated sizes. The
//! generated edge-list size assumes 16 bytes per edge (two 64-bit
//! vertex ids, §4: "all systems ... use 64-bit integers for vertex
//! IDs").

use elga_bench::{frac, generate};
use elga_gen::catalog::catalog;

fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

fn main() {
    elga_bench::banner("Table 2", "datasets (published vs regenerated)");
    println!(
        "{:<16} {:>6} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "graph", "ABTER", "n (pub)", "m (pub)", "EL (pub)", "n (gen)", "m (gen)", "EL (gen)"
    );
    for d in catalog() {
        let (n, edges) = generate(d, 1);
        println!(
            "{:<16} {:>6} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            d.name,
            if d.abter_scale == 1 {
                "-".to_string()
            } else {
                format!("x{}", d.abter_scale)
            },
            format_count(d.n_full as f64),
            format_count(d.m_full as f64),
            human_bytes(d.m_full as f64 * 16.0),
            format_count(n as f64),
            format_count(edges.len() as f64),
            human_bytes(edges.len() as f64 * 16.0),
        );
    }
    println!("\nGenerated at frac = {:.2e} of published sizes.", frac());
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}B", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}
