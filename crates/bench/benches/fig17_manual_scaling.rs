//! Figure 17 — "PageRank running on Gowalla, manually scaled to 64
//! nodes during computation and then back to 16."
//!
//! A PageRank run starts on a small cluster; after the first iteration
//! an operator scales the cluster up 4× (ElGA applies the change at a
//! superstep boundary and continues), and after the run completes the
//! cluster scales back down. The per-iteration times should drop after
//! the scale-up.

use elga_bench::{banner, generate};
use elga_core::algorithms::PageRank;
use elga_core::cluster::Cluster;
use elga_core::msg::packet;
use elga_core::program::RunOptions;
use elga_gen::catalog::find;
use elga_net::Frame;
use std::time::Instant;

const SMALL: usize = 4; // the paper's 16 nodes
const LARGE: usize = 16; // the paper's 64 nodes
const ITERS: u32 = 5;

fn main() {
    banner(
        "Figure 17",
        "manual elastic scaling mid-PageRank (4 -> 16 agents after iteration 1, then back)",
    );
    let ds = find("Gowalla").expect("catalog");
    let (_, edges) = generate(&ds, 91);

    let mut c = Cluster::builder().agents(SMALL).build();
    c.ingest_edges(edges.iter().copied());

    let t0 = Instant::now();
    let handle = c
        .start_run(
            PageRank::new(0.85).with_max_iters(ITERS),
            RunOptions::default(),
        )
        .expect("start");
    // Operator: wait for iteration 1 to complete, then scale up.
    loop {
        let rep = c
            .transport()
            .request(
                &c.lead_directory(),
                Frame::signal(packet::RUN_STATUS),
                std::time::Duration::from_secs(5),
            )
            .expect("status");
        let status = elga_core::msg::decode_run_status(&rep).expect("status");
        if status.steps >= 1 || status.done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let scale_at = t0.elapsed();
    c.add_agents(LARGE - SMALL);
    let stats = c.wait_run(handle).expect("run");
    println!(
        "scaled {SMALL} -> {LARGE} agents at t={:.1} ms (applied at the next superstep boundary)",
        scale_at.as_secs_f64() * 1e3
    );
    for (i, d) in stats.step_durations.iter().enumerate() {
        let phase = if i <= 1 {
            "before/at scale"
        } else {
            "after scale-up"
        };
        println!(
            "  iteration {:>2}: {:>9.2} ms   ({phase})",
            i,
            d.as_secs_f64() * 1e3
        );
    }
    // Scale back down, as the paper's operator does after completion.
    let t1 = Instant::now();
    while c.agent_count() > SMALL {
        c.remove_last_agent();
    }
    c.quiesce().expect("quiesce");
    println!(
        "scaled back {LARGE} -> {SMALL} agents in {:.1} ms (cost savings resume)",
        t1.elapsed().as_secs_f64() * 1e3
    );
    c.shutdown();
}
