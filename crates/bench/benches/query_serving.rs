//! Continuous-query serving under live ingest + compute: ≥1000
//! concurrent logical clients issue batched snapshot reads (a fraction
//! of them holding standing subscriptions) while the cluster keeps
//! absorbing edge batches and running incremental PageRank.
//!
//! What the experiment shows:
//! * serving throughput (batch round trips and vertex answers per
//!   second) and client-observed latency while the compute plane is
//!   busy — query traffic rides the same coalescing comms plane but is
//!   uncounted in the barrier sums, so runs terminate undisturbed;
//! * snapshot flips: every answer is tagged with the completed run it
//!   belongs to, and clients watch the tag advance run over run;
//! * push delivery: subscribers receive per-run value deltas without
//!   polling.
//!
//! Clients are multiplexed over a small worker pool (the interesting
//! concurrency is the 1000 independent client states hitting the
//! agents, not 1000 OS threads). Writes `BENCH_queries.json` (override
//! with `ELGA_BENCH_QUERIES_OUT`); scale with `ELGA_SCALE` /
//! `ELGA_TRIALS` (CI uses a small config).

use elga_bench::{banner, cluster, mean_ci, scale, trials};
use elga_core::algorithms::PageRank;
use elga_core::client::ClientProxy;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_graph::types::EdgeChange;
use elga_query::QueryClient;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Ring with sparse chords (the incremental suite's shape): connected
/// and high-diameter, so per-batch delta runs stay frontier-sized and
/// the serving plane races many short runs instead of one long one.
fn base_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 97 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn pagerank(n: u64) -> PageRank {
    PageRank::new(0.85)
        .with_max_iters(100)
        .with_tolerance(1e-4 / n as f64)
}

/// Deterministic per-client vertex picker (no RNG dependency).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

struct WorkerOut {
    batches: u64,
    answers: u64,
    latencies_s: Vec<f64>,
    pushes: u64,
    runs_seen: std::collections::HashSet<u64>,
}

fn main() {
    banner(
        "query_serving",
        "≥1000 concurrent clients: batched reads + subscriptions vs live ingest/compute",
    );
    let n = (2_000.0 * scale()).max(500.0) as u64;
    let n_clients = 1_000usize.max((1_000.0 * scale()) as usize);
    let n_subscribers = n_clients / 8;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(2, 8);
    let serve_secs = (1.5 * trials() as f64).clamp(1.0, 20.0);
    let batch_size = 16usize;

    let mut c = cluster(4);
    let edges = base_graph(n);
    c.ingest_edges(edges.iter().copied());
    c.run(pagerank(n)).expect("initial pagerank");

    // 1000+ logical clients, each its own connection state; the first
    // `n_subscribers` also register a standing subscription.
    let transport = c.transport();
    let cfg = c.config().clone();
    let dir = c.lead_directory();
    let mut clients: Vec<(QueryClient, Option<u64>, Lcg)> = Vec::with_capacity(n_clients);
    for i in 0..n_clients {
        let mut qc = QueryClient::connect(transport.clone(), cfg.clone(), dir.clone())
            .expect("client connects");
        let sub = if i < n_subscribers {
            let watched: Vec<u64> = (0..8u64).map(|k| (i as u64 * 37 + k * 11) % n).collect();
            Some(qc.subscribe(&watched).expect("subscribe"))
        } else {
            None
        };
        clients.push((qc, sub, Lcg(0x9E3779B97F4A7C15 ^ i as u64)));
    }
    // A plain proxy alongside, for the single-vertex path's sanity.
    let proxy =
        ClientProxy::connect(transport.clone(), cfg.clone(), dir.clone()).expect("proxy connects");
    assert!(proxy.query_primary(1).is_some());

    // Shard the clients across the worker pool.
    let mut shards: Vec<Vec<(QueryClient, Option<u64>, Lcg)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, cl) in clients.into_iter().enumerate() {
        shards[i % workers].push(cl);
    }

    let stop = AtomicBool::new(false);
    let runs_completed = AtomicU64::new(0);
    let batches_ingested = AtomicU64::new(0);
    let t0 = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|mut shard| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut out = WorkerOut {
                        batches: 0,
                        answers: 0,
                        latencies_s: Vec::new(),
                        pushes: 0,
                        runs_seen: std::collections::HashSet::new(),
                    };
                    while !stop.load(Ordering::Relaxed) {
                        for (qc, sub, lcg) in shard.iter_mut() {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let asked: Vec<u64> = (0..batch_size).map(|_| lcg.next(n)).collect();
                            let t = Instant::now();
                            let answers = qc.query_batch(&asked);
                            out.latencies_s.push(t.elapsed().as_secs_f64());
                            out.batches += 1;
                            for a in answers.into_iter().flatten() {
                                out.answers += 1;
                                out.runs_seen.insert(a.run);
                            }
                            if sub.is_some() {
                                out.pushes += qc.poll_updates(Duration::ZERO).len() as u64;
                            }
                        }
                    }
                    // Final drain so late pushes still count.
                    for (qc, sub, _) in shard.iter_mut() {
                        if sub.is_some() {
                            out.pushes += qc.poll_updates(Duration::ZERO).len() as u64;
                        }
                    }
                    out
                })
            })
            .collect();

        // The live plane: keep ingesting fixed-size batches and running
        // incremental PageRank until the serving window closes.
        let mut k = 1u64;
        while t0.elapsed().as_secs_f64() < serve_secs {
            let batch: Vec<EdgeChange> = (0..64)
                .filter_map(|_| {
                    let u = (k * 48_271) % n;
                    let v = (k * 69_621 + 13) % n;
                    k += 1;
                    (u != v).then(|| EdgeChange::insert(u, v))
                })
                .collect();
            c.ingest(batch.iter().copied());
            batches_ingested.fetch_add(1, Ordering::Relaxed);
            c.run_with(
                pagerank(n),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental run");
            runs_completed.fetch_add(1, Ordering::Relaxed);
        }
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let total_batches: u64 = outs.iter().map(|o| o.batches).sum();
    let total_answers: u64 = outs.iter().map(|o| o.answers).sum();
    let total_pushes: u64 = outs.iter().map(|o| o.pushes).sum();
    let mut runs_seen = std::collections::HashSet::new();
    for o in &outs {
        runs_seen.extend(o.runs_seen.iter().copied());
    }
    let mut lat: Vec<f64> = outs.into_iter().flat_map(|o| o.latencies_s).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat[(((lat.len() - 1) as f64) * p) as usize] * 1e3;
    let (mean_s, ci_s) = mean_ci(&lat);

    let m = c.metrics();
    c.shutdown();

    println!(
        "{n_clients} clients ({n_subscribers} subscribed) on {workers} workers, {:.1}s window",
        elapsed
    );
    println!(
        "  {total_batches} batch round trips, {total_answers} answers \
         ({:.0} batches/s, {:.0} answers/s)",
        total_batches as f64 / elapsed,
        total_answers as f64 / elapsed
    );
    println!(
        "  latency {:.3} ± {:.3} ms (p50 {:.3}, p99 {:.3})",
        mean_s * 1e3,
        ci_s * 1e3,
        pct(0.50),
        pct(0.99)
    );
    println!(
        "  live plane: {} runs over {} ingested batches; {} snapshot tags observed; \
         {} pushes delivered (agents sent {})",
        runs_completed.load(Ordering::Relaxed),
        batches_ingested.load(Ordering::Relaxed),
        runs_seen.len(),
        total_pushes,
        m.sub_pushes
    );

    let path = std::env::var("ELGA_BENCH_QUERIES_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_queries.json").to_string()
    });
    let body = format!(
        "{{\n  \"figure\": \"query_serving\",\n  \"clients\": {n_clients},\n  \
         \"subscribers\": {n_subscribers},\n  \"workers\": {workers},\n  \
         \"vertices\": {n},\n  \"edges\": {},\n  \"window_s\": {elapsed:.2},\n  \
         \"batch_size\": {batch_size},\n  \"batch_round_trips\": {total_batches},\n  \
         \"answers\": {total_answers},\n  \"batches_per_s\": {:.1},\n  \
         \"answers_per_s\": {:.1},\n  \"latency_ms_mean\": {:.4},\n  \
         \"latency_ms_ci95\": {:.4},\n  \"latency_ms_p50\": {:.4},\n  \
         \"latency_ms_p99\": {:.4},\n  \"runs_completed\": {},\n  \
         \"batches_ingested\": {},\n  \"snapshot_tags_observed\": {},\n  \
         \"sub_pushes_delivered\": {total_pushes},\n  \"sub_pushes_sent\": {},\n  \
         \"agent_query_batches\": {},\n  \"agent_queries\": {},\n  \
         \"note\": \"snapshot-consistent serving under live ingest+compute; query \
         traffic is barrier-uncounted so runs terminate undisturbed\"\n}}\n",
        edges.len(),
        total_batches as f64 / elapsed,
        total_answers as f64 / elapsed,
        mean_s * 1e3,
        ci_s * 1e3,
        pct(0.50),
        pct(0.99),
        runs_completed.load(Ordering::Relaxed),
        batches_ingested.load(Ordering::Relaxed),
        runs_seen.len(),
        m.sub_pushes,
        m.query_batches,
        m.queries,
    );
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
