//! Figure 14 — "The insertion rate of edges from Skitter. ... The
//! performance is above 2 million edges per second per Agent and
//! scales well." (Absolute rates differ on the in-process substrate;
//! the shape under reproduction is near-linear scaling with agents.)
//!
//! As in the paper, half of the participants are Streamers: we run
//! `agents/2` streamer threads, each pushing a shard of the stream.
//!
//! Besides the console table, the run writes two JSON artifacts at the
//! workspace root (override the directory with `ELGA_BENCH_OUT` /
//! `ELGA_BENCH_COMMS_OUT`):
//!
//! * `BENCH_fig14.json` — per agent count, the mean insertion rate and
//!   the streamers' owner-cache hit rate.
//! * `BENCH_comms.json` — the comms-plane ablation: the same ingest
//!   workload with record coalescing on vs off, with the streamers'
//!   frame/record/byte counters, so CI tracks what the coalescer buys.

use elga_bench::{banner, coalesce_record_throughput, generate, mean_ci, trials};
use elga_core::cluster::Cluster;
use elga_core::streamer::Streamer;
use elga_gen::catalog::find;
use elga_graph::types::EdgeChange;
use elga_net::{Addr, CoalesceStats, InProcTransport, Transport};
use std::sync::Arc;
use std::time::Instant;

struct Row {
    agents: usize,
    streamers: usize,
    rate: f64,
    hit_rate: f64,
}

struct AblationRow {
    coalescing: bool,
    rate: f64,
    stats: CoalesceStats,
}

/// One ingest run: `streamers` threads shard the stream and push it
/// into a fresh `agents`-agent cluster. Returns the elapsed seconds
/// and the streamers' summed cache and coalescer counters.
fn ingest_trial(
    agents: usize,
    streamers: usize,
    coalescing: bool,
    edges: &[(u64, u64)],
) -> (f64, (u64, u64), CoalesceStats) {
    let c = Cluster::builder()
        .agents(agents)
        .coalescing(coalescing)
        .build();
    let shards: Vec<Vec<EdgeChange>> = (0..streamers)
        .map(|s| {
            edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % streamers == s)
                .map(|(_, &(u, v))| EdgeChange::insert(u, v))
                .collect()
        })
        .collect();
    let transport = c.transport();
    let cfg = c.config().clone();
    let lead = c.lead_directory();
    let t0 = Instant::now();
    let stats: Vec<((u64, u64), CoalesceStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let transport = transport.clone();
                let cfg = cfg.clone();
                let lead = lead.clone();
                scope.spawn(move || {
                    let mut s = Streamer::connect(transport, cfg, lead).expect("streamer");
                    for chunk in shard.chunks(8192) {
                        s.send_batch(chunk).expect("send");
                    }
                    (s.cache_stats(), s.coalesce_stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("streamer"))
            .collect()
    });
    c.quiesce().expect("quiesce");
    let secs = t0.elapsed().as_secs_f64();
    c.shutdown();
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut coalesce = CoalesceStats::default();
    for ((h, m), cs) in stats {
        hits += h;
        misses += m;
        coalesce.absorb(&cs);
    }
    (secs, (hits, misses), coalesce)
}

fn main() {
    banner(
        "Figure 14",
        "edge insertion rate vs agent count (streamers = agents/2)",
    );
    let ds = find("Skitter").expect("catalog");
    let (_, edges) = generate(&ds, 61);
    println!(
        "{:>7} {:>10} {:>16} {:>18} {:>10}",
        "agents", "streamers", "edges/s", "edges/s/agent", "cache-hit"
    );
    let mut rows: Vec<Row> = Vec::new();
    for agents in [2usize, 4, 8] {
        let streamers = (agents / 2).max(1);
        let mut rates = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for _ in 0..trials() {
            let (secs, (h, m), _) = ingest_trial(agents, streamers, true, &edges);
            rates.push(edges.len() as f64 / secs);
            hits += h;
            misses += m;
        }
        let (rate, _) = mean_ci(&rates);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        println!(
            "{:>7} {:>10} {:>16.0} {:>18.0} {:>9.1}%",
            agents,
            streamers,
            rate,
            rate / agents as f64,
            hit_rate * 100.0
        );
        rows.push(Row {
            agents,
            streamers,
            rate,
            hit_rate,
        });
    }
    if let Some(r) = rows.first() {
        println!("(dashed ideal line: {:.0} × agents/2)", r.rate);
    }
    write_json(&rows, edges.len());

    // Comms ablation: identical workload, coalescing on vs off. The
    // frame counters show the mechanism (fewer, larger frames); the
    // rate shows what it buys end to end.
    println!("\ncoalescing ablation (4 agents, 2 streamers):");
    println!(
        "{:>10} {:>16} {:>10} {:>12} {:>14}",
        "coalesce", "edges/s", "frames", "records", "bytes"
    );
    let mut ablation: Vec<AblationRow> = Vec::new();
    for coalescing in [true, false] {
        let mut rates = Vec::new();
        let mut stats = CoalesceStats::default();
        for _ in 0..trials() {
            let (secs, _, cs) = ingest_trial(4, 2, coalescing, &edges);
            rates.push(edges.len() as f64 / secs);
            stats.absorb(&cs);
        }
        let (rate, _) = mean_ci(&rates);
        println!(
            "{:>10} {:>16.0} {:>10} {:>12} {:>14}",
            if coalescing { "on" } else { "off" },
            rate,
            stats.frames,
            stats.records,
            stats.bytes
        );
        ablation.push(AblationRow {
            coalescing,
            rate,
            stats,
        });
    }
    if let [on, off] = &ablation[..] {
        println!(
            "(coalescing on: {:.2}x ingest rate, {:.1}x fewer frames)",
            on.rate / off.rate,
            off.stats.frames as f64 / on.stats.frames.max(1) as f64
        );
    }

    // Record-path microbenchmark: fine-grained senders (one append per
    // record, the async-run shape) rather than pre-batched chunks.
    // This isolates the framing cost the coalescer removes.
    let t: Arc<dyn Transport> = Arc::new(InProcTransport::new());
    let rec_on = coalesce_record_throughput(t, Addr::inproc("comms-on"), 200_000, true);
    let t: Arc<dyn Transport> = Arc::new(InProcTransport::new());
    let rec_off = coalesce_record_throughput(t, Addr::inproc("comms-off"), 200_000, false);
    println!(
        "record path (per-record appends): on {:.0} rec/s, off {:.0} rec/s ({:.1}x)",
        rec_on,
        rec_off,
        rec_on / rec_off
    );
    write_comms_json(&ablation, edges.len(), rec_on, rec_off);
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(rows: &[Row], edges: usize) {
    let path = std::env::var("ELGA_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig14.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"fig14_insertion_rate\",\n");
    body.push_str(&format!("  \"edges_per_trial\": {edges},\n"));
    body.push_str(&format!("  \"trials\": {},\n  \"rows\": [\n", trials()));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"agents\": {}, \"streamers\": {}, \"edges_per_sec\": {:.0}, \
             \"owner_cache_hit_rate\": {:.4}}}{}\n",
            r.agents,
            r.streamers,
            r.rate,
            r.hit_rate,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The coalescing-ablation artifact CI uploads next to the fig14 one.
fn write_comms_json(rows: &[AblationRow], edges: usize, rec_on: f64, rec_off: f64) {
    let path = std::env::var("ELGA_BENCH_COMMS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_comms.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"comms_coalescing_ablation\",\n");
    body.push_str("  \"workload\": \"fig14 ingest, 4 agents, 2 streamers\",\n");
    body.push_str(&format!("  \"edges_per_trial\": {edges},\n"));
    body.push_str(&format!("  \"trials\": {},\n  \"rows\": [\n", trials()));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"coalescing\": {}, \"edges_per_sec\": {:.0}, \"frames\": {}, \
             \"records\": {}, \"bytes\": {}, \"size_flushes\": {}, \"count_flushes\": {}, \
             \"explicit_flushes\": {}, \"switch_flushes\": {}, \"backpressure_waits\": {}}}{}\n",
            r.coalescing,
            r.rate,
            r.stats.frames,
            r.stats.records,
            r.stats.bytes,
            r.stats.size_flushes,
            r.stats.count_flushes,
            r.stats.explicit_flushes,
            r.stats.switch_flushes,
            r.stats.backpressure_waits,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    let speedup = match rows {
        [on, off] if off.rate > 0.0 => on.rate / off.rate,
        _ => 0.0,
    };
    body.push_str(&format!("  \"ingest_speedup\": {speedup:.3},\n"));
    body.push_str(&format!(
        "  \"record_path\": {{\"on_rec_per_sec\": {rec_on:.0}, \"off_rec_per_sec\": {rec_off:.0}, \
         \"speedup\": {:.1}}}\n}}\n",
        if rec_off > 0.0 { rec_on / rec_off } else { 0.0 }
    ));
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
