//! Figure 14 — "The insertion rate of edges from Skitter. ... The
//! performance is above 2 million edges per second per Agent and
//! scales well." (Absolute rates differ on the in-process substrate;
//! the shape under reproduction is near-linear scaling with agents.)
//!
//! As in the paper, half of the participants are Streamers: we run
//! `agents/2` streamer threads, each pushing a shard of the stream.

use elga_bench::{banner, generate, mean_ci, trials};
use elga_core::cluster::Cluster;
use elga_core::streamer::Streamer;
use elga_gen::catalog::find;
use elga_graph::types::EdgeChange;
use std::time::Instant;

fn main() {
    banner(
        "Figure 14",
        "edge insertion rate vs agent count (streamers = agents/2)",
    );
    let ds = find("Skitter").expect("catalog");
    let (_, edges) = generate(&ds, 61);
    println!(
        "{:>7} {:>10} {:>16} {:>18}",
        "agents", "streamers", "edges/s", "edges/s/agent"
    );
    let mut base_rate = None;
    for agents in [2usize, 4, 8] {
        let streamers = (agents / 2).max(1);
        let mut rates = Vec::new();
        for trial in 0..trials() {
            let c = Cluster::builder().agents(agents).build();
            let shards: Vec<Vec<EdgeChange>> = (0..streamers)
                .map(|s| {
                    edges
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % streamers == s)
                        .map(|(_, &(u, v))| EdgeChange::insert(u, v))
                        .collect()
                })
                .collect();
            let transport = c.transport();
            let cfg = c.config().clone();
            let lead = c.lead_directory();
            let t0 = Instant::now();
            std::thread::scope(|scope| {
                for shard in &shards {
                    let transport = transport.clone();
                    let cfg = cfg.clone();
                    let lead = lead.clone();
                    scope.spawn(move || {
                        let mut s =
                            Streamer::connect(transport, cfg, lead).expect("streamer");
                        for chunk in shard.chunks(8192) {
                            s.send_batch(chunk).expect("send");
                        }
                    });
                }
            });
            c.quiesce().expect("quiesce");
            let secs = t0.elapsed().as_secs_f64();
            rates.push(edges.len() as f64 / secs);
            c.shutdown();
            let _ = trial;
        }
        let (rate, _) = mean_ci(&rates);
        println!(
            "{:>7} {:>10} {:>16.0} {:>18.0}",
            agents,
            streamers,
            rate,
            rate / agents as f64
        );
        base_rate.get_or_insert(rate);
    }
    if let Some(b) = base_rate {
        println!("(dashed ideal line: {:.0} × agents/2)", b);
    }
}
