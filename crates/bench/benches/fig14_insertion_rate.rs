//! Figure 14 — "The insertion rate of edges from Skitter. ... The
//! performance is above 2 million edges per second per Agent and
//! scales well." (Absolute rates differ on the in-process substrate;
//! the shape under reproduction is near-linear scaling with agents.)
//!
//! As in the paper, half of the participants are Streamers: we run
//! `agents/2` streamer threads, each pushing a shard of the stream.
//!
//! Besides the console table, the run writes `BENCH_fig14.json` at the
//! workspace root (override with `ELGA_BENCH_OUT`): per agent count,
//! the mean insertion rate and the streamers' owner-cache hit rate —
//! the two numbers CI tracks for the ingest hot path.

use elga_bench::{banner, generate, mean_ci, trials};
use elga_core::cluster::Cluster;
use elga_core::streamer::Streamer;
use elga_gen::catalog::find;
use elga_graph::types::EdgeChange;
use std::time::Instant;

struct Row {
    agents: usize,
    streamers: usize,
    rate: f64,
    hit_rate: f64,
}

fn main() {
    banner(
        "Figure 14",
        "edge insertion rate vs agent count (streamers = agents/2)",
    );
    let ds = find("Skitter").expect("catalog");
    let (_, edges) = generate(&ds, 61);
    println!(
        "{:>7} {:>10} {:>16} {:>18} {:>10}",
        "agents", "streamers", "edges/s", "edges/s/agent", "cache-hit"
    );
    let mut rows: Vec<Row> = Vec::new();
    for agents in [2usize, 4, 8] {
        let streamers = (agents / 2).max(1);
        let mut rates = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for trial in 0..trials() {
            let c = Cluster::builder().agents(agents).build();
            let shards: Vec<Vec<EdgeChange>> = (0..streamers)
                .map(|s| {
                    edges
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % streamers == s)
                        .map(|(_, &(u, v))| EdgeChange::insert(u, v))
                        .collect()
                })
                .collect();
            let transport = c.transport();
            let cfg = c.config().clone();
            let lead = c.lead_directory();
            let t0 = Instant::now();
            let stats: Vec<(u64, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        let transport = transport.clone();
                        let cfg = cfg.clone();
                        let lead = lead.clone();
                        scope.spawn(move || {
                            let mut s =
                                Streamer::connect(transport, cfg, lead).expect("streamer");
                            for chunk in shard.chunks(8192) {
                                s.send_batch(chunk).expect("send");
                            }
                            s.cache_stats()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("streamer")).collect()
            });
            c.quiesce().expect("quiesce");
            let secs = t0.elapsed().as_secs_f64();
            rates.push(edges.len() as f64 / secs);
            for (h, m) in stats {
                hits += h;
                misses += m;
            }
            c.shutdown();
            let _ = trial;
        }
        let (rate, _) = mean_ci(&rates);
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        println!(
            "{:>7} {:>10} {:>16.0} {:>18.0} {:>9.1}%",
            agents,
            streamers,
            rate,
            rate / agents as f64,
            hit_rate * 100.0
        );
        rows.push(Row {
            agents,
            streamers,
            rate,
            hit_rate,
        });
    }
    if let Some(r) = rows.first() {
        println!("(dashed ideal line: {:.0} × agents/2)", r.rate);
    }
    write_json(&rows, edges.len());
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(rows: &[Row], edges: usize) {
    let path = std::env::var("ELGA_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fig14.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"fig14_insertion_rate\",\n");
    body.push_str(&format!("  \"edges_per_trial\": {edges},\n"));
    body.push_str(&format!("  \"trials\": {},\n  \"rows\": [\n", trials()));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"agents\": {}, \"streamers\": {}, \"edges_per_sec\": {:.0}, \
             \"owner_cache_hit_rate\": {:.4}}}{}\n",
            r.agents,
            r.streamers,
            r.rate,
            r.hit_rate,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
