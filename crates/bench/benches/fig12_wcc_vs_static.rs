//! Figure 12 — "The weakly connected components runtime for ElGA,
//! Blogel, and GraphX."
//!
//! Inputs are symmetrized first, matching the paper's fix for the
//! Blogel WCC bug ("We did this by symmetrizing the input graph").
//! Total time to convergence is reported (WCC runs to completion, not
//! per-iteration).

use elga_baselines::{snapshot::rdd_wcc, BlogelEngine};
use elga_bench::{banner, baseline_threads, cluster, densify, fmt_ms, generate, timed_trials};
use elga_core::algorithms::Wcc;
use elga_gen::catalog::find;
use elga_graph::csr::Csr;

fn main() {
    banner(
        "Figure 12",
        "WCC total runtime: ElGA vs Blogel-like vs GraphX-like (symmetrized inputs)",
    );
    let datasets = [
        "Twitter-2010",
        "Friendster",
        "Datagen-9.4-fb",
        "LiveJournal",
        "Gowalla",
    ];
    println!(
        "{:<16} {:>9}  {:>22}  {:>22}  {:>22}",
        "graph", "m(sym)", "ElGA", "Blogel-like", "GraphX-like"
    );
    for name in datasets {
        let ds = find(name).expect("catalog");
        let (_, edges) = generate(&ds, 43);
        // Symmetrize.
        let mut sym: Vec<(u64, u64)> = edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        sym.sort_unstable();
        sym.dedup();
        let m = sym.len();

        let (elga, elga_ci) = timed_trials(|| {
            let mut c = cluster(8);
            c.ingest_edges(sym.iter().copied());
            let stats = c.run(Wcc::new()).expect("run");
            let total = stats.total;
            c.shutdown();
            total
        });

        let (n, dense) = densify(&sym);
        let csr = Csr::from_edges(Some(n), &dense);
        let (blogel, blogel_ci) = timed_trials(|| {
            let engine = BlogelEngine::new(csr.clone(), baseline_threads());
            let t0 = std::time::Instant::now();
            let _ = engine.wcc();
            t0.elapsed()
        });
        let (graphx, graphx_ci) = timed_trials(|| {
            let t0 = std::time::Instant::now();
            let _ = rdd_wcc(&csr);
            t0.elapsed()
        });
        println!(
            "{:<16} {:>9}  {:>22}  {:>22}  {:>22}",
            name,
            m,
            fmt_ms(elga, elga_ci),
            fmt_ms(blogel, blogel_ci),
            fmt_ms(graphx, graphx_ci)
        );
    }
}
