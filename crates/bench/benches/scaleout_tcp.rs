//! Multi-core scale-out: process-per-agent deployment over real TCP
//! sockets, the closest single-machine analog of the paper's
//! `pdsh`-started cluster (one ElGA executable per node).
//!
//! The in-process fig14 run time-shares every agent thread inside one
//! process; this bench re-executes itself as separate OS processes for
//! the DirectoryMaster, the lead Directory, and each Agent, so the OS
//! can schedule agents onto real cores and every frame crosses the
//! zero-copy TCP receive path (pooled batch buffers + borrowed record
//! views + vectored gather writes).
//!
//! Writes `BENCH_scaleout.json` at the workspace root (override with
//! `ELGA_BENCH_SCALEOUT_OUT`). The host core count is recorded in the
//! artifact: on a single-core container the agents=8 row cannot beat
//! agents=4 on wall clock (the processes time-share one CPU and pay
//! extra scheduling + forwarding cost); the artifact is only evidence
//! of multi-core scaling when `cores > 1`.

use elga_bench::{generate, mean_ci, trials};
use elga_core::agent::Agent;
use elga_core::config::SystemConfig;
use elga_core::directory::{self, DirectoryRole};
use elga_core::metrics::ClusterMetrics;
use elga_core::msg::{self, packet, Counters, DirectoryView};
use elga_core::streamer::Streamer;
use elga_gen::catalog::find;
use elga_graph::types::EdgeChange;
use elga_net::{Addr, Frame, NetError, TcpTransport, Transport};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn reserve_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("local addr")
        .port()
}

fn tcp(port: u16) -> Addr {
    Addr::parse(&format!("tcp://127.0.0.1:{port}")).expect("addr")
}

fn main() {
    match arg("--role").as_deref() {
        None => coordinator(),
        Some("master") => role_master(),
        Some("directory") => role_directory(),
        Some("agent") => role_agent(),
        Some(other) => {
            eprintln!("unknown role {other}; roles: master, directory, agent");
            std::process::exit(2);
        }
    }
}

fn role_master() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let port: u16 = arg("--port").expect("--port").parse().expect("port");
    directory::spawn_master(transport, tcp(port))
        .join()
        .expect("master");
}

fn role_directory() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let port: u16 = arg("--port").expect("--port").parse().expect("port");
    let bus: u16 = arg("--bus").expect("--bus").parse().expect("bus");
    let master: u16 = arg("--master").expect("--master").parse().expect("master");
    directory::spawn_directory_at(
        transport,
        SystemConfig::default(),
        0,
        tcp(master),
        tcp(port),
        DirectoryRole::Lead { bus: tcp(bus) },
    )
    .join()
    .expect("directory");
}

fn role_agent() {
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let id: u64 = arg("--id").expect("--id").parse().expect("id");
    let dir: u16 = arg("--dir").expect("--dir").parse().expect("dir");
    let bus: u16 = arg("--bus").expect("--bus").parse().expect("bus");
    let agent = Agent::join_at(
        transport,
        SystemConfig::default(),
        id,
        Addr::parse("tcp://127.0.0.1:0").expect("addr"),
        tcp(dir),
        tcp(bus),
    )
    .expect("agent join");
    agent.spawn().join().expect("agent");
}

fn spawn_role(args: &[String]) -> Child {
    // Detach the child from the coordinator's stdio: an orphaned role
    // process must not pin the parent's stdout pipe open, and stderr is
    // kept only for panic backtraces.
    Command::new(std::env::current_exe().expect("exe"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn role process")
}

/// One process-per-agent deployment: master + lead directory + `agents`
/// agent processes, all over loopback TCP.
struct Deployment {
    transport: Arc<dyn Transport>,
    cfg: SystemConfig,
    dir_addr: Addr,
    master_addr: Addr,
    children: Vec<Child>,
}

impl Deployment {
    fn start(agents: usize) -> Deployment {
        let master = reserve_port();
        let dir = reserve_port();
        let bus = reserve_port();
        let mut children = vec![spawn_role(&[
            "--role".into(),
            "master".into(),
            "--port".into(),
            master.to_string(),
        ])];
        std::thread::sleep(Duration::from_millis(100));
        children.push(spawn_role(&[
            "--role".into(),
            "directory".into(),
            "--port".into(),
            dir.to_string(),
            "--bus".into(),
            bus.to_string(),
            "--master".into(),
            master.to_string(),
        ]));
        std::thread::sleep(Duration::from_millis(100));
        for id in 1..=agents as u64 {
            children.push(spawn_role(&[
                "--role".into(),
                "agent".into(),
                "--id".into(),
                id.to_string(),
                "--dir".into(),
                dir.to_string(),
                "--bus".into(),
                bus.to_string(),
            ]));
        }
        let mut d = Deployment {
            transport: Arc::new(TcpTransport::new()),
            cfg: SystemConfig::default(),
            dir_addr: tcp(dir),
            master_addr: tcp(master),
            children,
        };
        d.wait_for_agents(agents);
        d
    }

    fn request(&self, addr: &Addr, frame: Frame) -> Result<Frame, NetError> {
        self.transport
            .request(addr, frame, self.cfg.request_timeout)
    }

    fn view(&self) -> Option<DirectoryView> {
        let rep = self
            .request(&self.dir_addr, Frame::signal(packet::GET_VIEW))
            .ok()?;
        DirectoryView::decode(&rep)
    }

    /// Poll the directory until all `agents` have registered.
    fn wait_for_agents(&mut self, agents: usize) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if self.view().is_some_and(|v| v.agents.len() == agents) {
                return;
            }
            if Instant::now() >= deadline {
                let view = self.view();
                let statuses: Vec<String> = self
                    .children
                    .iter_mut()
                    .map(|c| match c.try_wait() {
                        Ok(Some(st)) => format!("exited {st}"),
                        Ok(None) => "running".into(),
                        Err(e) => format!("? {e}"),
                    })
                    .collect();
                panic!(
                    "agents did not all register within 30s; view: {:?}; \
                     children [master, directory, agents..]: {statuses:?}",
                    view.map(|v| v.agents.iter().map(|a| a.id).collect::<Vec<_>>())
                );
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Client-side replica of `Cluster::quiesce`: DRAIN rounds over all
    /// agent processes until the summed counters are settled and
    /// stable and the directory reports no outstanding migration.
    fn quiesce(&self) -> Result<(), NetError> {
        let counters = |f: &Frame| -> Option<Counters> {
            let mut r = f.reader();
            Some(Counters {
                vmsg_sent: r.u64()?,
                vmsg_recv: r.u64()?,
                part_sent: r.u64()?,
                part_recv: r.u64()?,
                state_sent: r.u64()?,
                state_recv: r.u64()?,
                mig_sent: r.u64()?,
                mig_recv: r.u64()?,
                chg_sent: r.u64()?,
                chg_recv: r.u64()?,
            })
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut last: Option<Counters> = None;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            let migrating = self
                .request(&self.dir_addr, Frame::signal(packet::RUN_STATUS))
                .ok()
                .and_then(|f| msg::decode_run_status(&f))
                .is_some_and(|s| s.migrating);
            if migrating {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            let Some(view) = self.view() else {
                continue;
            };
            let mut sum = self
                .request(&self.dir_addr, Frame::signal(packet::COUNTERS))
                .ok()
                .and_then(|f| counters(&f))
                .unwrap_or_default();
            let mut ok = true;
            for a in &view.agents {
                match self.request(&a.addr, Frame::signal(packet::DRAIN)) {
                    Ok(rep) => match counters(&rep) {
                        Some(c) => sum = sum.add(&c),
                        None => ok = false,
                    },
                    Err(_) => ok = false,
                }
            }
            if ok && sum.settled() && last == Some(sum) {
                return Ok(());
            }
            last = ok.then_some(sum);
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Aggregated metrics across the agent processes (the directory
    /// DRAINs every agent for its live snapshot).
    fn metrics(&self) -> Option<ClusterMetrics> {
        let rep = self
            .request(&self.dir_addr, Frame::signal(packet::GET_METRICS))
            .ok()?;
        ClusterMetrics::decode(&rep)
    }

    fn shutdown(mut self) {
        let _ = self.request(&self.dir_addr, Frame::signal(packet::SHUTDOWN));
        if let Ok(out) = self.transport.sender(&self.master_addr) {
            let _ = out.send(Frame::signal(packet::SHUTDOWN));
        }
        for child in &mut self.children {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(50))
                    }
                    _ => {
                        let _ = child.kill();
                        break;
                    }
                }
            }
        }
        self.children.clear();
    }
}

impl Drop for Deployment {
    /// Reap the role processes even when a trial panics (e.g. a
    /// registration or quiesce timeout) so a failed run never leaves
    /// orphans competing for the CPU with the next deployment.
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Row {
    agents: usize,
    streamers: usize,
    rate: f64,
    rx_pool_hit_rate: f64,
    decode_nanos: u64,
}

/// One measured trial against a fresh deployment: `streamers` threads
/// shard the stream into `agents` agent processes, then quiesce.
fn ingest_trial(agents: usize, streamers: usize, edges: &[(u64, u64)]) -> (f64, ClusterMetrics) {
    let d = Deployment::start(agents);
    let shards: Vec<Vec<EdgeChange>> = (0..streamers)
        .map(|s| {
            edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % streamers == s)
                .map(|(_, &(u, v))| EdgeChange::insert(u, v))
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for shard in &shards {
            let transport = d.transport.clone();
            let cfg = d.cfg.clone();
            let dir = d.dir_addr.clone();
            scope.spawn(move || {
                let mut s = Streamer::connect(transport, cfg, dir).expect("streamer");
                for chunk in shard.chunks(8192) {
                    s.send_batch(chunk).expect("send");
                }
            });
        }
    });
    d.quiesce().expect("quiesce");
    let secs = t0.elapsed().as_secs_f64();
    let metrics = d.metrics().unwrap_or_default();
    d.shutdown();
    (secs, metrics)
}

fn coordinator() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n=== scale-out — process-per-agent ingest over loopback TCP ===");
    println!(
        "    ({cores} core(s), {} trials; ELGA_TRIALS to adjust)",
        trials()
    );
    if cores == 1 {
        println!("    NOTE: single-core host — agent processes time-share one CPU; expect flat or falling rates.");
    }
    let ds = find("Skitter").expect("catalog");
    let (_, edges) = generate(&ds, 61);
    println!(
        "{:>7} {:>10} {:>10} {:>16} {:>12} {:>14}",
        "agents", "streamers", "processes", "edges/s", "rx-pool-hit", "decode-ms"
    );
    let mut rows: Vec<Row> = Vec::new();
    for agents in [2usize, 4, 8] {
        let streamers = (agents / 2).max(1);
        let mut rates = Vec::new();
        let mut m_last = ClusterMetrics::default();
        for _ in 0..trials() {
            let (secs, m) = ingest_trial(agents, streamers, &edges);
            rates.push(edges.len() as f64 / secs);
            m_last = m;
        }
        let (rate, _) = mean_ci(&rates);
        let hit_rate = m_last.comms.rx_pool_hit_rate();
        println!(
            "{:>7} {:>10} {:>10} {:>16.0} {:>11.1}% {:>14.2}",
            agents,
            streamers,
            agents + 2,
            rate,
            hit_rate * 100.0,
            m_last.decode_nanos as f64 / 1e6
        );
        rows.push(Row {
            agents,
            streamers,
            rate,
            rx_pool_hit_rate: hit_rate,
            decode_nanos: m_last.decode_nanos,
        });
    }
    let rate_of = |n: usize| rows.iter().find(|r| r.agents == n).map_or(0.0, |r| r.rate);
    if rate_of(4) > 0.0 {
        println!(
            "(agents=8 vs agents=4: {:.2}x on {cores} core(s))",
            rate_of(8) / rate_of(4)
        );
    }
    write_json(&rows, edges.len(), cores);
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(rows: &[Row], edges: usize, cores: usize) {
    let path = std::env::var("ELGA_BENCH_SCALEOUT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaleout.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"scaleout_tcp\",\n");
    body.push_str("  \"deployment\": \"process-per-agent over loopback TCP\",\n");
    body.push_str(&format!("  \"cores\": {cores},\n"));
    body.push_str(&format!("  \"edges_per_trial\": {edges},\n"));
    body.push_str(&format!("  \"trials\": {},\n  \"rows\": [\n", trials()));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"agents\": {}, \"streamers\": {}, \"processes\": {}, \
             \"edges_per_sec\": {:.0}, \"rx_pool_hit_rate\": {:.4}, \"decode_nanos\": {}}}{}\n",
            r.agents,
            r.streamers,
            r.agents + 2,
            r.rate,
            r.rx_pool_hit_rate,
            r.decode_nanos,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    let rate_of = |n: usize| rows.iter().find(|r| r.agents == n).map_or(0.0, |r| r.rate);
    let speedup = if rate_of(4) > 0.0 {
        rate_of(8) / rate_of(4)
    } else {
        0.0
    };
    body.push_str(&format!("  \"speedup_8_over_4\": {speedup:.3},\n"));
    body.push_str(&format!(
        "  \"note\": \"wall-clock scaling is only meaningful when cores > 1; on a \
         single-core host the {} agent processes time-share one CPU\"\n}}\n",
        rows.last().map_or(8, |r| r.agents)
    ));
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
