//! Figure 11 — "ElGA's per-iteration PageRank runtime compared against
//! Blogel and GraphX, using 64 nodes. ... we outperform the baselines
//! even when ignoring partitioning time and other static costs of
//! those systems."
//!
//! The shape under reproduction: the dynamic system is competitive
//! with (the paper: faster than) the static CSR engine, and the
//! snapshot (GraphX-like, RDD-materializing) engine is the slowest.
//! GraphX partitioning/rebuild time is *excluded* here, as in the
//! paper.

use elga_baselines::{snapshot::rdd_pagerank, BlogelEngine};
use elga_bench::{banner, baseline_threads, cluster, densify, fmt_ms, generate, timed_trials};
use elga_core::algorithms::PageRank;
use elga_gen::catalog::find;
use elga_graph::csr::Csr;

const ITERS: u32 = 4;

fn main() {
    banner(
        "Figure 11",
        "per-iteration PageRank: ElGA vs Blogel-like vs GraphX-like",
    );
    let datasets = [
        "Twitter-2010",
        "Friendster",
        "UK-2007-05",
        "Datagen-9.3-zf",
        "LiveJournal",
        "Graph500-30",
        "Pokec-1000",
    ];
    println!(
        "{:<16} {:>9}  {:>22}  {:>22}  {:>22}",
        "graph", "m", "ElGA", "Blogel-like", "GraphX-like"
    );
    for name in datasets {
        let ds = find(name).expect("catalog");
        let (_, edges) = generate(&ds, 41);
        let m = edges.len();

        let (elga, elga_ci) = timed_trials(|| {
            let mut c = cluster(8);
            c.ingest_edges(edges.iter().copied());
            let stats = c
                .run(PageRank::new(0.85).with_max_iters(ITERS))
                .expect("run");
            let per_iter = stats.mean_iteration();
            c.shutdown();
            per_iter
        });

        let (n, dense) = densify(&edges);
        let csr = Csr::from_edges(Some(n), &dense);
        let (blogel, blogel_ci) = timed_trials(|| {
            let engine = BlogelEngine::new(csr.clone(), baseline_threads());
            let t0 = std::time::Instant::now();
            let _ = engine.pagerank(0.85, ITERS as usize);
            t0.elapsed() / ITERS
        });
        let (graphx, graphx_ci) = timed_trials(|| {
            let t0 = std::time::Instant::now();
            let _ = rdd_pagerank(&csr, 0.85, ITERS as usize);
            t0.elapsed() / ITERS
        });
        println!(
            "{:<16} {:>9}  {:>22}  {:>22}  {:>22}",
            name,
            m,
            fmt_ms(elga, elga_ci),
            fmt_ms(blogel, blogel_ci),
            fmt_ms(graphx, graphx_ci)
        );
    }
    println!("(GraphX-like excludes partitioning/rebuild costs, as the paper does)");
}
