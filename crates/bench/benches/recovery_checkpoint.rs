//! Recovery-duration bench: how long does it take to get correct
//! state back after an agent crash, with and without durable
//! checkpointing?
//!
//! A churn stream (inserts plus deletions) is ingested in stages; the
//! checkpointed configuration cuts a checkpoint after every stage but
//! the last, so recovery replays only one stage's suffix no matter how
//! long the stream grows. The log-only configuration must replay the
//! whole retained stream, so its replay cost grows linearly with
//! stages.
//!
//! Writes `BENCH_recovery.json` at the workspace root (override with
//! `ELGA_BENCH_RECOVERY_OUT`). The checkpointed runs write their
//! stores under `ELGA_BENCH_CKPT_DIR` (default: the system temp dir);
//! the final generation of the largest run is left in place as a
//! sample artifact for CI to upload.

use elga_bench::{banner, mean_ci, trials};
use elga_core::algorithms::Wcc;
use elga_core::cluster::Cluster;
use elga_core::config::SystemConfig;
use elga_core::program::RunOptions;
use elga_graph::types::EdgeChange;
use std::path::PathBuf;
use std::time::Duration;

struct Row {
    checkpointed: bool,
    stages: usize,
    records: u64,
    replayed: u64,
    recovery_ms: f64,
    restore_ms: f64,
}

/// One churn stage: a band of ring edges with chords, then deletion of
/// a third of the previous band — enough deletions that replay is not
/// insert-only.
fn stage_changes(stage: usize, band: u64) -> Vec<EdgeChange> {
    let lo = stage as u64 * band;
    let mut changes = Vec::new();
    for i in lo..lo + band {
        changes.push(EdgeChange::insert(i, (i + 1) % (lo + band)));
        if i % 3 == 0 {
            changes.push(EdgeChange::insert(i, (i * 7 + 3) % (lo + band)));
        }
    }
    if stage > 0 {
        let prev = lo - band;
        for i in (prev..lo).step_by(3) {
            changes.push(EdgeChange::delete(i, (i + 1) % lo));
        }
    }
    changes.retain(|c| c.edge.src != c.edge.dst);
    changes
}

fn recovery_config() -> SystemConfig {
    SystemConfig {
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 12,
        quiesce_deadline: Duration::from_secs(60),
        run_deadline: Duration::from_secs(120),
        ..SystemConfig::default()
    }
}

fn ckpt_root() -> PathBuf {
    std::env::var("ELGA_BENCH_CKPT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("elga-bench-ckpt"))
}

/// Ingest `stages` churn stages, crash an agent mid-run, and return
/// `(ingested records, replayed records, recovery secs, restore secs)`.
fn crash_trial(stages: usize, band: u64, checkpointed: bool, trial: usize) -> (u64, u64, f64, f64) {
    let mut b = Cluster::builder().agents(4).config(recovery_config());
    let dir = ckpt_root().join(format!("s{stages}-t{trial}"));
    if checkpointed {
        let _ = std::fs::remove_dir_all(&dir);
        b = b.checkpoints(&dir);
    }
    let mut c = b.build();
    let mut records = 0u64;
    for s in 0..stages {
        let changes = stage_changes(s, band);
        records += changes.len() as u64;
        c.ingest(changes);
        // No checkpoint after the final stage: the crash then replays
        // exactly one stage's suffix, the steady-state recovery cost.
        if checkpointed && s + 1 < stages {
            assert!(c.checkpoint().expect("checkpoint").committed);
        }
    }
    let handle = c
        .start_run(Wcc::new(), RunOptions::default())
        .expect("start run");
    let victim = c.agent_ids()[1];
    c.kill_agent(victim);
    c.wait_run(handle).expect("run survives the crash");
    let rec = c.recovery_stats();
    assert_eq!(rec.recoveries, 1);
    c.shutdown();
    // Keep only the largest checkpointed store as the sample artifact.
    if checkpointed && stages != 8 {
        let _ = std::fs::remove_dir_all(&dir);
    }
    (
        records,
        rec.replayed_records,
        rec.recovery_nanos as f64 / 1e9,
        rec.ckpt_restore_nanos as f64 / 1e9,
    )
}

fn main() {
    banner(
        "Recovery",
        "crash recovery duration: checkpoint + suffix replay vs full log replay",
    );
    let band = 400u64;
    println!(
        "{:>12} {:>7} {:>9} {:>9} {:>12} {:>12}",
        "mode", "stages", "records", "replayed", "recovery-ms", "restore-ms"
    );
    let mut rows = Vec::new();
    for &checkpointed in &[false, true] {
        for &stages in &[2usize, 4, 8] {
            let mut recovery = Vec::new();
            let mut restore = Vec::new();
            let (mut records, mut replayed) = (0, 0);
            for t in 0..trials() {
                let (rec, rep, secs, rsecs) = crash_trial(stages, band, checkpointed, t);
                records = rec;
                replayed = rep;
                recovery.push(secs * 1e3);
                restore.push(rsecs * 1e3);
            }
            let (recovery_ms, _) = mean_ci(&recovery);
            let (restore_ms, _) = mean_ci(&restore);
            println!(
                "{:>12} {:>7} {:>9} {:>9} {:>12.1} {:>12.1}",
                if checkpointed {
                    "checkpoint"
                } else {
                    "log-only"
                },
                stages,
                records,
                replayed,
                recovery_ms,
                restore_ms
            );
            rows.push(Row {
                checkpointed,
                stages,
                records,
                replayed,
                recovery_ms,
                restore_ms,
            });
        }
    }
    // The headline ratio: how replay work scales from the shortest to
    // the longest stream in each mode.
    for &checkpointed in &[false, true] {
        let m: Vec<&Row> = rows
            .iter()
            .filter(|r| r.checkpointed == checkpointed)
            .collect();
        if let (Some(first), Some(last)) = (m.first(), m.last()) {
            println!(
                "{}: replayed {} -> {} records ({}x) over {}x more stream",
                if checkpointed {
                    "checkpoint"
                } else {
                    "log-only"
                },
                first.replayed,
                last.replayed,
                last.replayed / first.replayed.max(1),
                last.stages / first.stages.max(1),
            );
        }
    }
    write_json(&rows, band);
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(rows: &[Row], band: u64) {
    let path = std::env::var("ELGA_BENCH_RECOVERY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"recovery_checkpoint\",\n");
    body.push_str("  \"workload\": \"staged churn (inserts + deletions), agent crash mid-WCC\",\n");
    body.push_str(&format!("  \"band_per_stage\": {band},\n"));
    body.push_str(&format!("  \"trials\": {},\n  \"rows\": [\n", trials()));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"checkpointed\": {}, \"stages\": {}, \"records\": {}, \
             \"replayed_records\": {}, \"recovery_ms\": {:.2}, \"restore_ms\": {:.2}}}{}\n",
            r.checkpointed,
            r.stages,
            r.records,
            r.replayed,
            r.recovery_ms,
            r.restore_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
