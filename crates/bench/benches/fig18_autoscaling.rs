//! Figure 18 — "Fully elastic autoscaling in ElGA. ElGA converges
//! quickly to match the autoscaling target."
//!
//! A step function of client query rates drives the reactive EMA
//! autoscaler (§3.4.3 / §4.9: 30 s EMA of query rates, 60 s hold;
//! scaled here to a seconds-long experiment). The series printed is
//! (time, offered rate, autoscaler target, actual agents) — the
//! "mostly overlapping lines" of the figure correspond to target and
//! agents tracking each other.

use elga_bench::{banner, generate};
use elga_core::algorithms::Wcc;
use elga_core::autoscale::{Autoscaler, EmaAutoscaler};
use elga_core::cluster::Cluster;
use elga_gen::catalog::find;
use std::time::{Duration, Instant};

fn main() {
    banner(
        "Figure 18",
        "reactive autoscaling under a step-function client query load (Skitter-like)",
    );
    let ds = find("Skitter").expect("catalog");
    let (n, edges) = generate(&ds, 95);
    let mut c = Cluster::builder().agents(2).build();
    c.ingest_edges(edges.iter().copied());
    c.run(Wcc::new()).expect("wcc");

    // Steps of offered load (queries per tick), emulating the paper's
    // step function of client request rates.
    let phases: &[(usize, f64)] = &[(6, 400.0), (6, 3200.0), (6, 1200.0), (6, 200.0)];
    let mut policy = EmaAutoscaler::new(Duration::from_millis(300), 400.0, 1, 12)
        .with_cooldown(Duration::from_millis(600));

    println!(
        "{:>6} {:>12} {:>8} {:>8}   (target vs agents should overlap)",
        "tick", "query rate", "target", "agents"
    );
    let mut tick = 0usize;
    for &(len, rate) in phases {
        for _ in 0..len {
            // Offer `rate` queries this tick (sequentially; the rate is
            // the autoscaler's input signal).
            let t0 = Instant::now();
            for q in 0..(rate as usize / 10).max(1) {
                let v = edges[q % edges.len()].0 % n.max(1);
                let _ = c.query_any(v);
            }
            let _served = t0.elapsed();
            c.autoscale_once(&mut policy, rate);
            let target = policy.current_target().unwrap_or(0);
            println!(
                "{:>6} {:>12.0} {:>8} {:>8}",
                tick,
                rate,
                target,
                c.agent_count()
            );
            tick += 1;
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    c.shutdown();
}
