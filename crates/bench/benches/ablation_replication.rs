//! Ablation — sketch-driven vertex replication on vs off (DESIGN.md's
//! design-choice list; the mechanism behind Goal 1's "skewed degree
//! distributions" support, §3.4.1).
//!
//! A hub-heavy graph is partitioned with (a) replication disabled
//! (threshold ∞) and (b) a small threshold that splits hubs. We report
//! the per-agent *edge* load balance and the PageRank per-iteration
//! time under both.

use elga_bench::{banner, cluster_with, fmt_ms, timed_trials};
use elga_core::algorithms::PageRank;
use elga_core::config::SystemConfig;
use elga_gen::powerlaw::power_law;
use elga_graph::stats::load_balance;
use elga_hash::{EdgeLocator, HashKind, LocatorConfig, Ring};
use elga_sketch::DegreeEstimator;

fn main() {
    banner(
        "Ablation",
        "vertex replication (high-degree splitting) on vs off, hub-heavy graph",
    );
    // Severely skewed: a star core plus power-law periphery.
    let n = 4000u64;
    let mut edges = power_law(n, 20_000, 1.8, 3);
    edges.extend((1..1500u64).map(|i| (0, i % n)));

    let mut est = DegreeEstimator::new(1 << 12, 8);
    for &(u, v) in &edges {
        est.record_edge(u, v);
    }

    println!("(a) per-agent edge counts over 16 agents");
    for (label, threshold) in [
        ("replication off", u64::MAX),
        ("replication on (t=256)", 256),
    ] {
        let loc = EdgeLocator::new(
            Ring::from_agents(HashKind::Wang, 100, 0..16),
            LocatorConfig {
                replication_threshold: threshold,
                max_replicas: 16,
            },
        );
        let mut counts = vec![0u64; 16];
        for &(u, v) in &edges {
            if let Some(owner) = loc.owner_of_edge(u, v, est.degree(u)) {
                counts[owner as usize] += 1;
            }
        }
        let lb = load_balance(&counts);
        println!(
            "  {:<24} max {:>7}  mean {:>9.1}  imbalance {:>6.3}x",
            label, lb.max, lb.mean, lb.imbalance
        );
    }

    println!("\n(b) PageRank per-iteration on the live system");
    for (label, threshold) in [
        ("replication off", u64::MAX),
        ("replication on (t=256)", 256u64),
    ] {
        let (mean, ci) = timed_trials(|| {
            let cfg = SystemConfig {
                replication_threshold: threshold,
                ..SystemConfig::default()
            };
            let mut c = cluster_with(8, cfg);
            c.ingest_edges(edges.iter().copied());
            let stats = c.run(PageRank::new(0.85).with_max_iters(4)).expect("run");
            let per_iter = stats.mean_iteration();
            c.shutdown();
            per_iter
        });
        println!("  {:<24} {}", label, fmt_ms(mean, ci));
    }
}
