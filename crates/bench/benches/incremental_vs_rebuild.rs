//! Incremental (delta) execution vs rebuild-per-batch, against the
//! STINGER baseline — the experiment behind the incremental engine:
//! per-batch latency of delta PageRank must stay roughly flat as the
//! graph grows (work tracks the affected frontier, i.e. the batch),
//! while a full recompute grows with the graph.
//!
//! Three engines over the same change stream, at graph sizes spanning
//! a 4x range:
//! * delta — residual PageRank, `reuse_state: true`: batch corrections
//!   seed the frontier, everything else stays parked.
//! * full — the same cluster recomputing from scratch
//!   (`reuse_state: false`) after each batch.
//! * stinger — the STINGER-style adjacency structure maintaining
//!   connectivity per change (a different computation, but the
//!   canonical per-batch-maintenance baseline).
//!
//! Writes a machine-readable summary to `BENCH_incremental.json`
//! (override the path with `ELGA_BENCH_INCREMENTAL_OUT`). Scale the
//! run down with `ELGA_SCALE` / `ELGA_TRIALS` (CI uses a small config).

use elga_baselines::Stinger;
use elga_bench::{banner, cluster, scale, trials};
use elga_core::algorithms::PageRank;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_graph::types::EdgeChange;
use std::time::Instant;

/// Ring with sparse chords: connected, dangling-free (so delta and
/// full runs agree without exercising the dangling-redistribution
/// rounds, which cost extra barriers), and — crucially —
/// high-diameter. On an expander, a batch's rank perturbation reaches
/// every vertex before decaying below tolerance and "the affected
/// frontier" is the whole graph; the sparse-chord ring keeps the
/// frontier bounded so the experiment isolates the engine's scaling,
/// not the graph's mixing time.
fn base_graph(n: u64) -> Vec<(u64, u64)> {
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i % 97 == 0 {
            edges.push((i, (i * 7 + 3) % n));
        }
    }
    edges.retain(|&(u, v)| u != v);
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Fixed-size insertion batches over the existing vertex set: the
/// frontier a batch activates must not scale with the graph.
fn batches(n: u64, count: usize, per_batch: usize) -> Vec<Vec<EdgeChange>> {
    let mut out = Vec::new();
    let mut k = 1u64;
    for _ in 0..count {
        let mut b = Vec::new();
        while b.len() < per_batch {
            let u = (k * 48_271) % n;
            let v = (k * 69_621 + 13) % n;
            k += 1;
            if u != v {
                b.push(EdgeChange::insert(u, v));
            }
        }
        out.push(b);
    }
    out
}

/// Tolerance scales with 1/n (constant *relative* precision): rank
/// magnitudes shrink as the graph grows, so a fixed absolute tolerance
/// would demand ever more precision — and ever deeper delta
/// propagation — on larger graphs. Both engines use the same value.
fn pagerank(n: u64) -> PageRank {
    PageRank::new(0.85)
        .with_max_iters(100)
        .with_tolerance(1e-4 / n as f64)
}

struct Row {
    n_vertices: u64,
    n_edges: usize,
    delta_ms: f64,
    full_ms: f64,
    stinger_ms: f64,
}

fn main() {
    banner(
        "incremental_vs_rebuild",
        "per-batch latency: delta PageRank vs full recompute vs STINGER",
    );
    let base_n = (4_000.0 * scale()) as u64;
    let sizes = [base_n, base_n * 2, base_n * 4];
    let n_batches = (4 * trials()).clamp(3, 20);
    let per_batch = 64;

    println!(
        "{:>10} | {:>9} | {:>14} | {:>14} | {:>14}",
        "vertices", "edges", "delta ms/b", "full ms/b", "stinger ms/b"
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let edges = base_graph(n);
        let stream = batches(n, n_batches, per_batch);

        // Delta and full share one cluster and one change stream; the
        // full recompute is timed on the same post-batch graph the
        // incremental run just absorbed, so both see identical state.
        let mut c = cluster(3);
        c.ingest_edges(edges.iter().copied());
        c.run(pagerank(n)).expect("initial pagerank");
        let mut delta_s = Vec::new();
        let mut full_s = Vec::new();
        for batch in &stream {
            // Event-driven delta: the batch's residual corrections are
            // the whole frontier; no per-step whole-graph scans.
            let t0 = Instant::now();
            c.ingest(batch.iter().copied());
            c.run_with(
                pagerank(n),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Async,
                },
            )
            .expect("delta batch");
            delta_s.push(t0.elapsed().as_secs_f64());

            // Full recompute on the same post-batch graph. Its
            // converged state doubles as the next delta batch's
            // starting fixpoint.
            let t0 = Instant::now();
            c.run_with(
                pagerank(n),
                RunOptions {
                    reuse_state: false,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("full recompute");
            full_s.push(t0.elapsed().as_secs_f64());
        }
        c.shutdown();

        // STINGER: per-batch connectivity maintenance on the same
        // stream.
        let mut st = Stinger::new();
        for &(u, v) in &edges {
            st.insert(u, v);
        }
        let mut stinger_s = Vec::new();
        for batch in &stream {
            let t0 = Instant::now();
            for ch in batch {
                st.insert(ch.edge.src, ch.edge.dst);
            }
            stinger_s.push(t0.elapsed().as_secs_f64());
        }

        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64 * 1e3;
        let row = Row {
            n_vertices: n,
            n_edges: edges.len(),
            delta_ms: avg(&delta_s),
            full_ms: avg(&full_s),
            stinger_ms: avg(&stinger_s),
        };
        println!(
            "{:>10} | {:>9} | {:>14.2} | {:>14.2} | {:>14.3}",
            row.n_vertices, row.n_edges, row.delta_ms, row.full_ms, row.stinger_ms
        );
        rows.push(row);
    }

    let growth = |f: fn(&Row) -> f64| {
        let first = f(&rows[0]);
        if first > 0.0 {
            f(&rows[rows.len() - 1]) / first
        } else {
            0.0
        }
    };
    let delta_growth = growth(|r| r.delta_ms);
    let full_growth = growth(|r| r.full_ms);
    println!(
        "\ngraph grew {}x: delta per-batch cost grew {delta_growth:.2}x, \
         full recompute grew {full_growth:.2}x",
        sizes[sizes.len() - 1] / sizes[0],
    );
    write_json(&rows, n_batches, per_batch, delta_growth, full_growth);
}

/// Hand-rolled JSON (the workspace carries no serializer dependency).
fn write_json(rows: &[Row], n_batches: usize, per_batch: usize, dg: f64, fg: f64) {
    let path = std::env::var("ELGA_BENCH_INCREMENTAL_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json").to_string()
    });
    let mut body = String::from("{\n  \"figure\": \"incremental_vs_rebuild\",\n");
    body.push_str("  \"program\": \"pagerank d=0.85 tol=1e-4/n\",\n");
    body.push_str(&format!("  \"batches_per_size\": {n_batches},\n"));
    body.push_str(&format!(
        "  \"changes_per_batch\": {per_batch},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"vertices\": {}, \"edges\": {}, \"delta_ms_per_batch\": {:.3}, \
             \"full_ms_per_batch\": {:.3}, \"stinger_ms_per_batch\": {:.4}}}{}\n",
            r.n_vertices,
            r.n_edges,
            r.delta_ms,
            r.full_ms,
            r.stinger_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!("  \"delta_growth_over_4x\": {dg:.3},\n"));
    body.push_str(&format!("  \"full_growth_over_4x\": {fg:.3},\n"));
    body.push_str(
        "  \"note\": \"delta per-batch work tracks the affected frontier (the batch), \
         not the graph; full recompute scales with the graph\"\n}\n",
    );
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
