//! Figure 13 — "ElGA and STINGER maintaining components" (§4.8, the
//! COST comparison).
//!
//! The last `K` edges of LiveJournal-like and EuAll-like graphs are
//! inserted one at a time; both systems maintain connected components
//! per insertion. STINGER's global view gives it a bimodal
//! distribution (O(1) same-component fast path vs merge); ElGA pays a
//! batch round-trip every time. GAPbs provides the static-recompute
//! reference ("GAPbs takes 0.94 seconds, including building its CSR
//! ... and running WCC").

use elga_baselines::{GapGraph, Stinger};
use elga_bench::{banner, baseline_threads, cluster, generate};
use elga_core::algorithms::Wcc;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_gen::catalog::find;
use elga_graph::types::EdgeChange;
use std::time::Instant;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[(((sorted.len() - 1) as f64) * p) as usize]
}

fn main() {
    banner(
        "Figure 13",
        "single-node dynamic WCC: per-insertion times, ElGA vs STINGER-like (+ GAPbs static)",
    );
    let tail = 200usize; // the paper inserts the last 1000 edges
    for name in ["LiveJournal", "Email-EuAll", "Datagen-9.3-zf"] {
        let ds = find(name).expect("catalog");
        let (_, edges) = generate(&ds, 51);
        let split = edges.len().saturating_sub(tail);
        let (base, stream) = edges.split_at(split);

        // --- ElGA: incremental per-edge batches.
        let mut c = cluster(4);
        c.ingest_edges(base.iter().copied());
        c.run(Wcc::new()).expect("initial wcc");
        let mut elga_times = Vec::with_capacity(stream.len());
        for &(u, v) in stream {
            let t0 = Instant::now();
            c.ingest([EdgeChange::insert(u, v)]);
            c.run_with(
                Wcc::new(),
                RunOptions {
                    reuse_state: true,
                    mode: ExecutionMode::Sync,
                },
            )
            .expect("incremental wcc");
            elga_times.push(t0.elapsed().as_secs_f64());
        }
        c.shutdown();

        // --- STINGER-like.
        let mut s = Stinger::new();
        for &(u, v) in base {
            s.insert(u, v);
        }
        let mut stinger_times = Vec::with_capacity(stream.len());
        let mut fast = 0usize;
        for &(u, v) in stream {
            let t0 = Instant::now();
            if matches!(
                s.insert(u, v),
                Some(elga_baselines::stinger::InsertOutcome::FastPath) | None
            ) {
                fast += 1;
            }
            stinger_times.push(t0.elapsed().as_secs_f64());
        }

        // --- GAPbs-like: one static recompute of the full graph.
        let t0 = Instant::now();
        let gap = GapGraph::build(&edges, baseline_threads());
        let _ = gap.wcc();
        let gap_total = t0.elapsed().as_secs_f64();

        elga_times.sort_by(f64::total_cmp);
        stinger_times.sort_by(f64::total_cmp);
        println!(
            "\n{name} ({} base edges, {} insertions):",
            base.len(),
            stream.len()
        );
        for (sys, t) in [("ElGA", &elga_times), ("STINGER-like", &stinger_times)] {
            println!(
                "  {:<13} min {:>9.1}µs  p50 {:>9.1}µs  p95 {:>9.1}µs  max {:>9.1}µs",
                sys,
                t[0] * 1e6,
                percentile(t, 0.5) * 1e6,
                percentile(t, 0.95) * 1e6,
                t[t.len() - 1] * 1e6,
            );
        }
        println!(
            "  STINGER-like fast-path insertions: {fast}/{} (the bimodal split)",
            stream.len()
        );
        println!("  GAPbs-like static rebuild+WCC: {:.1} ms", gap_total * 1e3);
    }
}
