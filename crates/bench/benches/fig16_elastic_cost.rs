//! Figure 16 — "The cost of adding and removing one Agent, starting
//! from 2048": (a) the percent of edges moved, (b) the wall time.
//!
//! Edge movement at 2048 agents is a pure function of the consistent
//! hashing scheme, so (a) is computed exactly with the locator over
//! each dataset — no 2048 live threads needed. (b) is measured on a
//! live cluster at in-process scale (8 agents).

use elga_bench::{banner, generate, generate_sized, timed_trials};
use elga_core::cluster::Cluster;
use elga_gen::catalog::catalog;
use elga_hash::{EdgeLocator, HashKind, LocatorConfig, Ring};
use std::time::Instant;

fn main() {
    banner(
        "Figure 16",
        "elasticity cost: % edges moved (at 2048 agents) and add+remove wall time (live, 8 agents)",
    );

    // (a) Exact movement ratios per dataset, add then remove.
    println!("(a) percent of edges moved, 2048 agents, 100 virtual agents each");
    let base = Ring::from_agents(HashKind::Wang, 100, 0..2048);
    let mut plus = base.clone();
    plus.add_agent(5000);
    let mut minus = base.clone();
    minus.remove_agent(1024);
    let cfg = LocatorConfig::default();
    let loc_base = EdgeLocator::new(base, cfg);
    let loc_plus = EdgeLocator::new(plus, cfg);
    let loc_minus = EdgeLocator::new(minus, cfg);
    println!(
        "  {:<16} {:>9} {:>12} {:>12} {:>10}",
        "graph", "m", "add moved", "rem moved", "ideal"
    );
    for ds in catalog() {
        // Movement ratios are pure locator math; use ~200k edges each.
        let (_, edges) = generate_sized(ds, 200_000, 81);
        let mut add_moved = 0usize;
        let mut rem_moved = 0usize;
        for &(u, v) in &edges {
            let b = loc_base.owner_of_edge(u, v, 0);
            if loc_plus.owner_of_edge(u, v, 0) != b {
                add_moved += 1;
            }
            if loc_minus.owner_of_edge(u, v, 0) != b {
                rem_moved += 1;
            }
        }
        let m = edges.len() as f64;
        println!(
            "  {:<16} {:>9} {:>11.4}% {:>11.4}% {:>9.4}%",
            ds.name,
            edges.len(),
            add_moved as f64 / m * 100.0,
            rem_moved as f64 / m * 100.0,
            100.0 / 2049.0,
        );
    }

    // (b) Live add + remove timing at in-process scale.
    println!("\n(b) wall time to add then remove one agent (live cluster, 8 agents)");
    for name in ["Twitter-2010", "LiveJournal"] {
        let ds = elga_gen::catalog::find(name).expect("catalog");
        let (_, edges) = generate(&ds, 83);
        let (mean, ci) = timed_trials(|| {
            let mut c = Cluster::builder().agents(8).build();
            c.ingest_edges(edges.iter().copied());
            let t0 = Instant::now();
            let ids = c.add_agents(1);
            c.quiesce().expect("quiesce");
            c.remove_agent(ids[0]);
            c.quiesce().expect("quiesce");
            let dt = t0.elapsed();
            c.shutdown();
            dt
        });
        println!("  {:<16} {}", name, elga_bench::fmt_ms(mean, ci));
    }
}
