//! Figure 8 — "The scalability of ElGA reporting PageRank iterations as
//! the number of nodes are varied. ... For each graph, adding more
//! nodes results in lower runtimes."
//!
//! In the in-process deployment a "node" is a group of agents (2 per
//! node here); we sweep node counts and report per-iteration PageRank
//! time per dataset — strong scaling.

use elga_bench::{banner, cluster, fmt_ms, generate_sized, timed_trials};
use elga_core::algorithms::PageRank;
use elga_gen::catalog::find;

const AGENTS_PER_NODE: usize = 2;
const ITERS: u32 = 4;

fn main() {
    banner(
        "Figure 8",
        "strong scaling over nodes (2 agents per node), PageRank per-iteration",
    );
    let datasets = ["Twitter-2010", "LiveJournal", "Graph500-30"];
    print!("{:>7}", "nodes");
    for d in datasets {
        print!(" | {d:^24}");
    }
    println!();
    for nodes in [1usize, 2, 4, 8] {
        print!("{nodes:>7}");
        for name in datasets {
            let ds = find(name).expect("catalog");
            let (_, edges) = generate_sized(&ds, 150000, 21);
            let (mean, ci) = timed_trials(|| {
                let mut c = cluster(nodes * AGENTS_PER_NODE);
                c.ingest_edges(edges.iter().copied());
                let stats = c
                    .run(PageRank::new(0.85).with_max_iters(ITERS))
                    .expect("run");
                let per_iter = stats.mean_iteration();
                c.shutdown();
                per_iter
            });
            print!(" | {:^24}", fmt_ms(mean, ci));
        }
        println!();
    }
}
