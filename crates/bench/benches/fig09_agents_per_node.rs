//! Figure 9 — "The scalability of ElGA reporting PageRank iterations as
//! the number of Agents per node are varied. ... adding more Agents
//! results in faster runtimes."
//!
//! Node count is held fixed (4, the in-process analog of the paper's
//! 64) while agents per node sweep 1..8.

use elga_bench::{banner, cluster, fmt_ms, generate_sized, timed_trials};
use elga_core::algorithms::PageRank;
use elga_gen::catalog::find;

const NODES: usize = 4;
const ITERS: u32 = 4;

fn main() {
    banner(
        "Figure 9",
        "scaling over agents per node at fixed node count, PageRank per-iteration",
    );
    let datasets = ["Twitter-2010", "Pokec-1000"];
    print!("{:>13}", "agents/node");
    for d in datasets {
        print!(" | {d:^24}");
    }
    println!();
    for per_node in [1usize, 2, 4, 8] {
        print!("{per_node:>13}");
        for name in datasets {
            let ds = find(name).expect("catalog");
            let (_, edges) = generate_sized(&ds, 150000, 23);
            let (mean, ci) = timed_trials(|| {
                let mut c = cluster(NODES * per_node);
                c.ingest_edges(edges.iter().copied());
                let stats = c
                    .run(PageRank::new(0.85).with_max_iters(ITERS))
                    .expect("run");
                let per_iter = stats.mean_iteration();
                c.shutdown();
                per_iter
            });
            print!(" | {:^24}", fmt_ms(mean, ci));
        }
        println!();
    }
}
