//! Figure 10 — "ElGA's weak scaling with the Pokec dataset. The scale
//! ranges from ×39 to ×2500. A horizontal line is ideal."
//!
//! The graph grows proportionally with the agent count (edges/agent
//! held constant) using the BTER scaled-replica generator, mirroring
//! the paper's A-BTER weak-scaling protocol. Per-edge-per-agent time
//! should stay flat once communication amortizes.

use elga_bench::{banner, cluster, fmt_ms, timed_trials};
use elga_core::algorithms::PageRank;
use elga_gen::bter::BterModel;
use elga_gen::catalog::find;

const ITERS: u32 = 3;

fn main() {
    banner(
        "Figure 10",
        "weak scaling on Pokec-like replicas (edges grow with agents; flat is ideal)",
    );
    let pokec = find("Pokec-1000").expect("catalog");
    // Seed sized so each agent holds ~40k edges; replicas scale with
    // the agent count (weak scaling).
    let (_, seed) = elga_bench::generate_sized(&pokec, 40_000, 31);
    let model = BterModel::from_seed(&seed, 8);

    println!(
        "{:>7} {:>10} {:>26} {:>16}",
        "agents", "edges", "per-iteration", "µs/(edge/agent)"
    );
    for agents in [1usize, 2, 4, 8, 16] {
        let rep = model.generate(agents as f64, 37);
        let m = rep.edges.len();
        let (mean, ci) = timed_trials(|| {
            let mut c = cluster(agents);
            c.ingest_edges(rep.edges.iter().copied());
            let stats = c
                .run(PageRank::new(0.85).with_max_iters(ITERS))
                .expect("run");
            let per_iter = stats.mean_iteration();
            c.shutdown();
            per_iter
        });
        let per_edge_agent = mean / (m as f64 / agents as f64) * 1e6;
        println!(
            "{:>7} {:>10} {:>26} {:>16.3}",
            agents,
            m,
            fmt_ms(mean, ci),
            per_edge_agent
        );
    }
}
