//! Figure 15 — "Maintaining connectivity on Twitter-2010": 100 batches
//! of {1, 10, 10³, 10⁵} changes, per-batch runtime and iterations to
//! convergence, against the snapshot (GraphX-like) baseline that must
//! rebuild and recompute per batch.
//!
//! The headline numbers under reproduction: ElGA's per-batch time is
//! orders of magnitude below the snapshot engine's on small batches
//! ("we achieve speedups between 83× to 1962×"), because the snapshot
//! cost is dominated by rebuild work independent of batch size.

use elga_baselines::SnapshotEngine;
use elga_bench::{banner, cluster, generate_sized, scale};
use elga_core::algorithms::Wcc;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_gen::catalog::find;
use elga_graph::stream::delete_reinsert_batches;
use elga_graph::types::Batch;
use std::time::Instant;

fn main() {
    banner(
        "Figure 15",
        "per-batch incremental WCC on Twitter-like vs GraphX-like rebuild baseline",
    );
    let ds = find("Twitter-2010").expect("catalog");
    // The contrast under test is incremental work vs rebuild-the-world;
    // the snapshot rebuild must be non-trivial, so size the graph up.
    let (_, edges) = generate_sized(&ds, (400_000.0 * scale()) as usize, 71);
    let n_batches = (10.0 * scale()).clamp(5.0, 100.0) as usize; // paper: 100
                                                                 // Paper batch sizes {1, 10, 1000, 100000}, scaled down one decade.
    let batch_sizes = [1usize, 10, 100, 1000];

    println!(
        "{:>8} | {:>31} | {:>31} | {:>9}",
        "batch", "ElGA per-batch (min/avg/max ms)", "GraphX-like (min/avg/max ms)", "speedup"
    );
    for &bs in &batch_sizes {
        let n_changes = bs * n_batches;
        // §4.4 protocol: delete a random sample up front (setup), then
        // measure inserting it back in batches (the incremental case:
        // "only vertices directly modified in the batch are
        // activated").
        let (dels, ins) = delete_reinsert_batches(&edges, n_changes, 100 + bs as u64);

        // ElGA: load the reduced graph, run WCC once, then time each
        // insertion batch (ingest + incremental convergence).
        let mut c = cluster(4);
        c.ingest_edges(edges.iter().copied());
        c.ingest(dels.changes.iter().copied());
        c.run(Wcc::new()).expect("initial");
        let mut elga = Vec::new();
        let mut iters = Vec::new();
        for chunk in ins.changes.chunks(bs) {
            let t0 = Instant::now();
            c.ingest(chunk.iter().copied());
            let s = c
                .run_with(
                    Wcc::new(),
                    RunOptions {
                        reuse_state: true,
                        mode: ExecutionMode::Sync,
                    },
                )
                .expect("batch");
            elga.push(t0.elapsed().as_secs_f64());
            iters.push(s.steps as f64);
        }
        c.shutdown();

        // GraphX-like snapshot engine on the same stream.
        let mut snap = SnapshotEngine::new(elga_bench::baseline_threads());
        let mut reduced: Vec<(u64, u64)> = edges.clone();
        {
            let dropped: std::collections::HashSet<_> = dels
                .changes
                .iter()
                .map(|c| (c.edge.src, c.edge.dst))
                .collect();
            reduced.retain(|e| !dropped.contains(e));
        }
        snap.load(reduced.iter().copied());
        let mut graphx = Vec::new();
        for (i, chunk) in ins.changes.chunks(bs).take(3).enumerate() {
            let t0 = Instant::now();
            snap.apply_batch(&Batch::new(i as u64, chunk.to_vec()));
            graphx.push(t0.elapsed().as_secs_f64());
        }

        let stats = |v: &[f64]| {
            let min = v.iter().copied().fold(f64::MAX, f64::min);
            let max = v.iter().copied().fold(0.0, f64::max);
            let avg = v.iter().sum::<f64>() / v.len() as f64;
            (min, avg, max)
        };
        let (emin, eavg, emax) = stats(&elga);
        let (gmin, gavg, gmax) = stats(&graphx);
        let avg_iters = iters.iter().sum::<f64>() / iters.len() as f64;
        println!(
            "{:>8} | {:>8.2} /{:>8.2} /{:>8.2}   | {:>8.2} /{:>8.2} /{:>8.2}   | {:>8.1}x  ({:.1} iters/batch)",
            bs,
            emin * 1e3,
            eavg * 1e3,
            emax * 1e3,
            gmin * 1e3,
            gavg * 1e3,
            gmax * 1e3,
            gavg / eavg,
            avg_iters,
        );
    }

    // The paper's from-scratch reference: "From scratch, ElGA takes 14
    // seconds."
    let mut c = cluster(4);
    c.ingest_edges(edges.iter().copied());
    let t0 = Instant::now();
    c.run(Wcc::new()).expect("scratch");
    println!(
        "\nfrom-scratch WCC on the full graph: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    c.shutdown();
}
