//! Figure 6 — "The load balance distributions for 2048 Agents as the
//! number of virtual agents per Agent is varied from 1 to 1000 for
//! Twitter-2010. Beyond 100 improvements do not outweigh the
//! computational cost."
//!
//! Also reports the lookup cost per level, making the paper's
//! trade-off explicit (§3.4.2: "significantly improves the load
//! balance but increases the lookup time by a constant factor").

use elga_bench::{banner, generate_sized, mean_ci};
use elga_gen::catalog::find;
use elga_graph::stats::load_balance;
use elga_hash::{HashKind, Ring};
use std::time::Instant;

fn main() {
    banner(
        "Figure 6",
        "load balance over 2048 agents vs virtual agents per agent (Twitter-2010-like)",
    );
    let tw = find("Twitter-2010").expect("catalog");
    // Pure locator math: use ~300k edges regardless of the live-cluster
    // fraction so 2048 agents see enough keys.
    let (_, edges) = generate_sized(&tw, 300_000, 5);
    let keys: Vec<u64> = edges.iter().map(|&(u, _)| u).collect();

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>11} {:>14}",
        "vper", "min", "mean", "max", "imbalance", "lookup (ns)"
    );
    for vper in [1u32, 10, 100, 1000] {
        let ring = Ring::from_agents(HashKind::Wang, vper, 0..2048);
        let counts = ring.assignment_counts(keys.iter().copied());
        let values: Vec<u64> = counts.iter().map(|&(_, c)| c).collect();
        let lb = load_balance(&values);

        // Lookup cost: median of repeated timed sweeps.
        let mut times = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut sink = 0u64;
            for &k in &keys {
                sink ^= ring.owner(k).unwrap_or(0);
            }
            std::hint::black_box(sink);
            times.push(t0.elapsed().as_nanos() as f64 / keys.len() as f64);
        }
        let (lookup, _) = mean_ci(&times);
        println!(
            "{:>6} {:>9} {:>9.1} {:>9} {:>10.3}x {:>14.1}",
            vper, lb.min, lb.mean, lb.max, lb.imbalance, lookup
        );
    }
    println!("(the paper selects 100: balanced, with lookup still O(log P·V))");
}
