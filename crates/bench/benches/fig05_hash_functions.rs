//! Figure 5 — "The hash function has a large impact on the runtime. We
//! found that Wang's 64-bit integer hash performs the best. The runtime
//! performance follows the quality of the edge distributions."
//!
//! (a) PageRank iteration runtime with each candidate hash driving the
//!     consistent-hash ring;
//! (b) the per-agent edge distribution each hash produces over 2048
//!     agents (the paper plots the CDF; we print distribution
//!     percentiles and the max/mean imbalance — "Ideal is a single
//!     vertical line", i.e. imbalance 1.0).

use elga_bench::{banner, cluster_with, fmt_ms, generate, generate_sized, timed_trials};
use elga_core::algorithms::PageRank;
use elga_core::config::SystemConfig;
use elga_gen::catalog::find;
use elga_graph::stats::load_balance;
use elga_hash::{HashKind, Ring};

fn main() {
    banner(
        "Figure 5",
        "hash function impact: PR iteration runtime + edge distribution over 2048 agents",
    );
    let tw = find("Twitter-2010").expect("catalog");
    let (_, edges) = generate(&tw, 3);

    println!("(a) PageRank iteration runtime (4 agents)");
    for kind in HashKind::ALL {
        let (mean, ci) = timed_trials(|| {
            let cfg = SystemConfig {
                hash: kind,
                ..SystemConfig::default()
            };
            let mut c = cluster_with(4, cfg);
            c.ingest_edges(edges.iter().copied());
            let stats = c.run(PageRank::new(0.85).with_max_iters(4)).expect("run");
            let per_iter = stats.mean_iteration();
            c.shutdown();
            per_iter
        });
        println!("  {:<7} {}", kind.name(), fmt_ms(mean, ci));
    }

    println!("\n(b) edge distribution across 2048 agents (100 virtual agents each)");
    // The distribution needs many more keys than agents; regenerate at
    // a fixed ~300k edges for the pure-locator measurement.
    let (_, edges) = generate_sized(&tw, 300_000, 3);
    println!(
        "  {:<7} {:>8} {:>8} {:>8} {:>8} {:>8}  {:>9}",
        "hash", "min", "p25", "p50", "p75", "max", "imbalance"
    );
    for kind in HashKind::ALL {
        let ring = Ring::from_agents(kind, 100, 0..2048);
        let counts = ring.assignment_counts(edges.iter().map(|&(u, _)| u));
        let mut sorted: Vec<u64> = counts.iter().map(|&(_, c)| c).collect();
        sorted.sort_unstable();
        let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        let lb = load_balance(&sorted);
        println!(
            "  {:<7} {:>8} {:>8} {:>8} {:>8} {:>8}  {:>8.3}x",
            kind.name(),
            sorted[0],
            pct(0.25),
            pct(0.50),
            pct(0.75),
            sorted[sorted.len() - 1],
            lb.imbalance
        );
    }
    println!("  (ideal is a single vertical line: imbalance 1.0)");
}
