//! Ablation — synchronous vs asynchronous execution (§3.2/§3.4: ElGA
//! "supports both synchronous and asynchronous vertex-centric
//! applications"; the paper does not isolate the two modes, so this is
//! an extension experiment from DESIGN.md's ablation list).
//!
//! WCC is monotone and runs in both modes; async avoids superstep
//! barriers at the cost of redundant propagation.

use elga_bench::{banner, cluster, fmt_ms, generate, timed_trials};
use elga_core::algorithms::Wcc;
use elga_core::program::{ExecutionMode, RunOptions};
use elga_gen::catalog::find;

fn main() {
    banner(
        "Ablation",
        "synchronous vs asynchronous WCC (barriered supersteps vs event-driven)",
    );
    println!(
        "{:<16} {:>9}  {:>22}  {:>22}",
        "graph", "m", "sync total", "async total"
    );
    for name in ["Twitter-2010", "LiveJournal", "Amazon0601"] {
        let ds = find(name).expect("catalog");
        let (_, edges) = generate(&ds, 97);
        let mut row = vec![];
        for mode in [ExecutionMode::Sync, ExecutionMode::Async] {
            let (mean, ci) = timed_trials(|| {
                let mut c = cluster(4);
                c.ingest_edges(edges.iter().copied());
                let stats = c
                    .run_with(
                        Wcc::new(),
                        RunOptions {
                            reuse_state: false,
                            mode,
                        },
                    )
                    .expect("run");
                let total = stats.total;
                c.shutdown();
                total
            });
            row.push(fmt_ms(mean, ci));
        }
        println!(
            "{:<16} {:>9}  {:>22}  {:>22}",
            name,
            edges.len(),
            row[0],
            row[1]
        );
    }
}
