//! §3.5 transport-latency comparison.
//!
//! The paper benchmarks MPI (~1 µs), raw TCP (~4 µs) and ZeroMQ
//! (>20 µs) sends on its cluster to quantify the messaging overhead
//! ElGA accepts for flexibility. The analogous comparison here is the
//! in-process channel backend vs the real-socket TCP backend for both
//! REQ/REP round trips and PUSH throughput.

use elga_bench::{banner, coalesce_record_throughput, mean_ci};
use elga_net::{Addr, Frame, InProcTransport, TcpTransport, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROUNDS: usize = 2000;

fn reqrep_roundtrip(transport: Arc<dyn Transport>, server_addr: Addr) -> f64 {
    // Echo server.
    let mb = transport.bind(&server_addr).expect("bind");
    let real_addr = mb.addr().clone();
    let server = std::thread::spawn(move || {
        for _ in 0..ROUNDS {
            let d = mb.recv().expect("recv");
            if let Some(r) = d.reply {
                let _ = r.send(Frame::signal(2));
            }
        }
    });
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        let _ = transport
            .request(&real_addr, Frame::signal(1), Duration::from_secs(5))
            .expect("req");
    }
    let per = t0.elapsed().as_secs_f64() / ROUNDS as f64;
    server.join().expect("server");
    per
}

fn push_throughput(transport: Arc<dyn Transport>, server_addr: Addr) -> f64 {
    let mb = transport.bind(&server_addr).expect("bind");
    let real_addr = mb.addr().clone();
    let n = 200_000usize;
    let server = std::thread::spawn(move || {
        for _ in 0..n {
            let _ = mb.recv().expect("recv");
        }
    });
    let out = transport.sender(&real_addr).expect("sender");
    let frame = Frame::builder(1).u64(42).u64(43).finish();
    let t0 = Instant::now();
    for _ in 0..n {
        out.send(frame.clone()).expect("send");
    }
    server.join().expect("server");
    n as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    banner(
        "§3.5 latency",
        "messaging overhead: in-process channels vs TCP sockets (paper: MPI 1µs / TCP 4µs / ZMQ 20µs)",
    );
    let trials = 3;

    let mut inproc_rtt = Vec::new();
    let mut tcp_rtt = Vec::new();
    for i in 0..trials {
        let t: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        inproc_rtt.push(reqrep_roundtrip(t, Addr::inproc(format!("echo-{i}"))));
        let t: Arc<dyn Transport> = Arc::new(TcpTransport::new());
        tcp_rtt.push(reqrep_roundtrip(
            t,
            Addr::parse("tcp://127.0.0.1:0").expect("addr"),
        ));
    }
    let (im, ic) = mean_ci(&inproc_rtt);
    let (tm, tc) = mean_ci(&tcp_rtt);
    println!("REQ/REP round trip:");
    println!("  inproc {:8.2} ± {:5.2} µs", im * 1e6, ic * 1e6);
    println!(
        "  tcp    {:8.2} ± {:5.2} µs   ({:.1}x inproc)",
        tm * 1e6,
        tc * 1e6,
        tm / im
    );

    let t: Arc<dyn Transport> = Arc::new(InProcTransport::new());
    let inproc_tp = push_throughput(t, Addr::inproc("push"));
    let t: Arc<dyn Transport> = Arc::new(TcpTransport::new());
    let tcp_tp = push_throughput(t, Addr::parse("tcp://127.0.0.1:0").expect("addr"));
    println!("PUSH throughput:");
    println!("  inproc {:10.0} msgs/s", inproc_tp);
    println!("  tcp    {:10.0} msgs/s", tcp_tp);

    println!("record throughput through the coalescing outbox (16-byte records):");
    let n = 200_000;
    for (name, inproc) in [("inproc", true), ("tcp", false)] {
        let make = |label: &str| -> (Arc<dyn Transport>, Addr) {
            if inproc {
                (
                    Arc::new(InProcTransport::new()),
                    Addr::inproc(format!("coalesce-{label}")),
                )
            } else {
                (
                    Arc::new(TcpTransport::new()),
                    Addr::parse("tcp://127.0.0.1:0").expect("addr"),
                )
            }
        };
        let (t, a) = make("on");
        let on = coalesce_record_throughput(t, a, n, true);
        let (t, a) = make("off");
        let off = coalesce_record_throughput(t, a, n, false);
        println!(
            "  {name:<6} coalescing on {:>12.0} rec/s, off {:>12.0} rec/s   ({:.1}x)",
            on,
            off,
            on / off
        );
    }
}
