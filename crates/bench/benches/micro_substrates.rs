//! Criterion microbenchmarks of the substrates on ElGA's hot paths:
//! the §4.5 hash functions, ring lookups at varying virtual-agent
//! counts, count-min sketch operations, and frame encode/decode (the
//! §3.5 "direct memory copies").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elga_hash::{EdgeLocator, HashKind, LocatorConfig, Ring};
use elga_sketch::CountMinSketch;
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash64");
    for kind in HashKind::ALL {
        g.bench_function(kind.name(), |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(0x9E37_79B9);
                black_box(kind.hash(black_box(x)))
            })
        });
    }
    g.finish();
}

fn bench_ring_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_owner");
    for vper in [1u32, 10, 100, 1000] {
        let ring = Ring::from_agents(HashKind::Wang, vper, 0..2048);
        g.bench_with_input(BenchmarkId::from_parameter(vper), &ring, |b, ring| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(1);
                black_box(ring.owner(black_box(k)))
            })
        });
    }
    g.finish();
}

fn bench_edge_resolve(c: &mut Criterion) {
    // The full Figure 3 path: sketch estimate + two consistent hashes.
    let ring = Ring::from_agents(HashKind::Wang, 100, 0..2048);
    let loc = EdgeLocator::new(
        ring,
        LocatorConfig {
            replication_threshold: 64,
            max_replicas: 16,
        },
    );
    let mut sketch = CountMinSketch::new(1 << 12, 8);
    for i in 0..100_000u64 {
        sketch.inc(i % 1000);
    }
    c.bench_function("edge_resolve_full_path", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let u = k % 1000;
            let d = sketch.estimate(u);
            black_box(loc.owner_of_edge(u, k, d))
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_min");
    for (w, d) in [(1 << 12, 8usize), (1 << 18, 8)] {
        let mut s = CountMinSketch::new(w, d);
        for i in 0..10_000u64 {
            s.inc(i);
        }
        g.bench_with_input(
            BenchmarkId::new("estimate", format!("w{w}d{d}")),
            &s,
            |b, s| {
                let mut k = 0u64;
                b.iter(|| {
                    k = k.wrapping_add(7);
                    black_box(s.estimate(black_box(k)))
                })
            },
        );
        g.bench_function(BenchmarkId::new("inc", format!("w{w}d{d}")), |b| {
            let mut s = CountMinSketch::new(w, d);
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(7);
                s.inc(black_box(k));
            })
        });
    }
    g.finish();
}

fn bench_graph_store(c: &mut Criterion) {
    use elga_graph::adjacency::AdjacencyStore;
    use elga_graph::csr::Csr;
    let edges: Vec<(u64, u64)> = (0..50_000u64)
        .map(|i| {
            (
                elga_hash::wang64(i) % 10_000,
                elga_hash::wang64(i * 13 + 7) % 10_000,
            )
        })
        .collect();
    c.bench_function("adjacency_insert_50k", |b| {
        b.iter(|| {
            let mut g = AdjacencyStore::new();
            for &(u, v) in &edges {
                g.insert(u, v);
            }
            black_box(g.num_edges())
        })
    });
    c.bench_function("csr_build_50k", |b| {
        b.iter(|| black_box(Csr::from_edges(Some(10_000), &edges).num_edges()))
    });
    let store = AdjacencyStore::from_edges(edges.iter().copied());
    c.bench_function("adjacency_neighbor_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..10_000u64 {
                for &w in store.out_neighbors(v) {
                    acc ^= w;
                }
            }
            black_box(acc)
        })
    });
    let csr = Csr::from_edges(Some(10_000), &edges);
    c.bench_function("csr_neighbor_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..10_000u64 {
                for &w in csr.out_neighbors(v) {
                    acc ^= w;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_frames(c: &mut Criterion) {
    use elga_net::Frame;
    c.bench_function("frame_encode_vmsg_batch_256", |b| {
        let msgs: Vec<(u64, u64)> = (0..256).map(|i| (i, i * 3)).collect();
        b.iter(|| {
            let mut builder = Frame::builder(6).u64(1).u32(2).u32(msgs.len() as u32);
            for &(t, v) in &msgs {
                builder = builder.u64(t).u64(v);
            }
            black_box(builder.finish())
        })
    });
    c.bench_function("frame_decode_vmsg_batch_256", |b| {
        let msgs: Vec<(u64, u64)> = (0..256).map(|i| (i, i * 3)).collect();
        let mut builder = Frame::builder(6).u64(1).u32(2).u32(msgs.len() as u32);
        for &(t, v) in &msgs {
            builder = builder.u64(t).u64(v);
        }
        let frame = builder.finish();
        b.iter(|| {
            let mut r = frame.reader();
            let _run = r.u64().unwrap();
            let _step = r.u32().unwrap();
            let n = r.u32().unwrap();
            let mut acc = 0u64;
            for _ in 0..n {
                acc ^= r.u64().unwrap() ^ r.u64().unwrap();
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hashes, bench_ring_lookup, bench_edge_resolve, bench_sketch, bench_graph_store, bench_frames
}
criterion_main!(benches);
