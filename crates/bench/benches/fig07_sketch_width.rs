//! Figure 7 — "The runtime cost of resolving edges to Agents along with
//! the degree estimation error as the table width varies."
//!
//! (a) per-edge lookup overhead through the full resolve path
//!     (sketch estimate → first consistent hash → second consistent
//!     hash) as the count-min width varies;
//! (b) max and average degree estimation error per width. The paper's
//!     conclusion: with a replication threshold of 10⁷, a width around
//!     10^4.2 is already below the inflection point with no replication
//!     error; we print the analogous crossover at this scale.

use elga_bench::{banner, generate, mean_ci};
use elga_gen::catalog::find;
use elga_hash::{EdgeLocator, FxHashMap, HashKind, LocatorConfig, Ring};
use elga_sketch::DegreeEstimator;
use std::time::Instant;

fn main() {
    banner(
        "Figure 7",
        "count-min width sweep: per-edge resolve cost + degree estimation error",
    );
    let tw = find("Twitter-2010").expect("catalog");
    let (_, edges) = generate(&tw, 9);

    // True total degrees.
    let mut truth: FxHashMap<u64, u64> = FxHashMap::default();
    for &(u, v) in &edges {
        *truth.entry(u).or_insert(0) += 1;
        if u != v {
            *truth.entry(v).or_insert(0) += 1;
        }
    }

    let ring = Ring::from_agents(HashKind::Wang, 100, 0..64);
    let threshold = (edges.len() as u64 / 20).max(8); // "set high" relative to scale
    println!("replication threshold: {threshold} (scaled analog of the paper's 10^7)");
    println!(
        "{:>9} {:>14} {:>12} {:>12} {:>14}",
        "width", "resolve (ns)", "max err", "avg err", "repl. errors"
    );
    for exp in [2u32, 3, 4, 5, 6] {
        let width = 10usize.pow(exp);
        let mut est = DegreeEstimator::new(width, 8);
        for &(u, v) in &edges {
            est.record_edge(u, v);
        }
        let locator = EdgeLocator::new(
            ring.clone(),
            LocatorConfig {
                replication_threshold: threshold,
                max_replicas: 16,
            },
        );

        // (a) full resolve path timing.
        let mut times = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut sink = 0u64;
            for &(u, v) in &edges {
                let d = est.degree(u);
                sink ^= locator.owner_of_edge(u, v, d).unwrap_or(0);
            }
            std::hint::black_box(sink);
            times.push(t0.elapsed().as_nanos() as f64 / edges.len() as f64);
        }
        let (resolve, _) = mean_ci(&times);

        // (b) estimation error + replication mistakes (vertices whose
        // replication factor differs from the true-degree factor).
        let mut max_err = 0u64;
        let mut sum_err = 0u64;
        let mut repl_errors = 0u64;
        for (&v, &t) in &truth {
            let e = est.degree(v);
            let err = e - t; // count-min never under-estimates
            max_err = max_err.max(err);
            sum_err += err;
            if locator.replication_factor(e) != locator.replication_factor(t) {
                repl_errors += 1;
            }
        }
        println!(
            "{:>9} {:>14.1} {:>12} {:>12.2} {:>14}",
            width,
            resolve,
            max_err,
            sum_err as f64 / truth.len() as f64,
            repl_errors
        );
    }
    println!("(max error below the threshold line ⇒ the sketch causes no replication error)");
}
