//! Property-based tests for the graph substrate.

use elga_graph::adjacency::AdjacencyStore;
use elga_graph::csr::Csr;
use elga_graph::reference;
use elga_graph::stream::{delete_reinsert_batches, insertions, Batcher};
use elga_graph::types::{EdgeChange, VertexId};
use proptest::prelude::*;

fn arb_edges(max_v: u64, max_len: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_len)
}

proptest! {
    /// The adjacency store is a set of edges: membership, counts and
    /// degrees always agree with a model HashSet.
    #[test]
    fn store_matches_set_semantics(ops in prop::collection::vec((any::<bool>(), 0u64..20, 0u64..20), 0..300)) {
        let mut store = AdjacencyStore::new();
        let mut model = std::collections::HashSet::new();
        for (ins, u, v) in ops {
            if ins {
                prop_assert_eq!(store.insert(u, v), model.insert((u, v)));
            } else {
                prop_assert_eq!(store.remove(u, v), model.remove(&(u, v)));
            }
        }
        prop_assert_eq!(store.num_edges(), model.len());
        for &(u, v) in &model {
            prop_assert!(store.has_edge(u, v));
        }
        // degrees agree
        for v in 0..20u64 {
            let out = model.iter().filter(|&&(a, _)| a == v).count();
            let inn = model.iter().filter(|&&(_, b)| b == v).count();
            prop_assert_eq!(store.out_degree(v), out);
            prop_assert_eq!(store.in_degree(v), inn);
        }
    }

    /// CSR construction preserves the edge multiset.
    #[test]
    fn csr_preserves_edges(edges in arb_edges(64, 200)) {
        let csr = Csr::from_edges(None, &edges);
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<_> = csr.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(csr.num_edges(), edges.len());
        // in/out degree totals match
        let dout: usize = (0..csr.num_vertices()).map(|v| csr.out_degree(v as u64)).sum();
        let din: usize = (0..csr.num_vertices()).map(|v| csr.in_degree(v as u64)).sum();
        prop_assert_eq!(dout, edges.len());
        prop_assert_eq!(din, edges.len());
    }

    /// Symmetrization is idempotent and in-degree equals out-degree.
    #[test]
    fn symmetrize_idempotent(edges in arb_edges(32, 100)) {
        let csr = Csr::from_edges(None, &edges);
        let s1 = csr.symmetrized();
        let s2 = s1.symmetrized();
        prop_assert_eq!(s1.num_edges(), s2.num_edges());
        for v in 0..s1.num_vertices() as u64 {
            prop_assert_eq!(s1.out_degree(v), s1.in_degree(v));
        }
    }

    /// Batching a stream then concatenating reproduces the stream.
    #[test]
    fn batcher_concat_roundtrip(
        edges in arb_edges(50, 150),
        batch_size in 1usize..17,
    ) {
        let stream: Vec<EdgeChange> = insertions(edges.iter().copied()).collect();
        let rebuilt: Vec<EdgeChange> = Batcher::new(stream.iter().copied(), batch_size)
            .flat_map(|b| b.changes)
            .collect();
        prop_assert_eq!(rebuilt, stream);
    }

    /// Applying delete-then-reinsert batches restores the graph exactly
    /// (the paper's §4.4 protocol is graph-preserving).
    #[test]
    fn delete_reinsert_is_identity(
        edges in prop::collection::hash_set((0u64..40, 0u64..40), 1..80),
        count in 1usize..40,
        seed in any::<u64>(),
    ) {
        let edges: Vec<_> = edges.into_iter().collect();
        let mut g = AdjacencyStore::from_edges(edges.iter().copied());
        let before = g.edges_sorted();
        let (dels, ins) = delete_reinsert_batches(&edges, count, seed);
        g.apply_batch(&dels);
        g.apply_batch(&ins);
        prop_assert_eq!(g.edges_sorted(), before);
    }

    /// Reference WCC labels are minimum ids and consistent: two
    /// vertices get the same label iff they're connected (checked via
    /// an independent BFS on the symmetrized graph).
    #[test]
    fn wcc_labels_consistent(edges in arb_edges(24, 60)) {
        let labels = reference::wcc(edges.iter().copied());
        for (&v, &l) in &labels {
            prop_assert!(l <= v, "label is the min id of the component");
            prop_assert_eq!(labels[&l], l, "the label vertex is its own root");
        }
        // symmetric reachability check on a sample
        if !edges.is_empty() {
            let csr = Csr::from_edges(None, &edges).symmetrized();
            let (u, _) = edges[0];
            let reach = reference::bfs(&csr, u);
            for (&v, &l) in &labels {
                if reach.contains_key(&v) {
                    prop_assert_eq!(l, labels[&u]);
                }
            }
        }
    }

    /// Reference PageRank conserves probability mass.
    #[test]
    fn pagerank_mass_conserved(edges in arb_edges(30, 120), iters in 1usize..30) {
        prop_assume!(!edges.is_empty());
        let csr = Csr::from_edges(None, &edges);
        let pr = reference::pagerank(&csr, 0.85, iters);
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "mass {total}");
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    /// SSSP distances satisfy the triangle inequality over relaxed
    /// edges and BFS lower-bounds hop-scaled SSSP.
    #[test]
    fn sssp_is_relaxed_fixpoint(edges in arb_edges(24, 80)) {
        prop_assume!(!edges.is_empty());
        let csr = Csr::from_edges(None, &edges);
        let src = edges[0].0;
        let dist = reference::sssp(&csr, src);
        for (&(u, v), _) in edges.iter().zip(0..) {
            if let (Some(&du), Some(&dv)) = (dist.get(&u), dist.get(&v)) {
                prop_assert!(dv <= du + reference::edge_weight(u, v));
            }
        }
        // every reached vertex in BFS is reached in SSSP and vice versa
        let hops = reference::bfs(&csr, src);
        prop_assert_eq!(hops.len(), dist.len());
    }
}
