//! Turnstile stream utilities (paper §2.1, §4.4).
//!
//! The datasets the paper uses carry no insertion/deletion timestamps,
//! so it "model\[s\] their dynamic change by first deleting a random
//! sample of edges and second adding the sample back in, as a batch"
//! (§4.4). [`delete_reinsert_batches`] reproduces that protocol;
//! [`Batcher`] segments any change stream into numbered batches.

use crate::types::{Batch, EdgeChange, VertexId};

/// Groups a change stream into consecutive [`Batch`]es of at most
/// `batch_size` changes, assigning monotonically increasing ids.
#[derive(Debug)]
pub struct Batcher<I> {
    inner: I,
    batch_size: usize,
    next_id: u64,
}

impl<I> Batcher<I> {
    /// Wrap a change iterator.
    ///
    /// # Panics
    /// Panics when `batch_size` is zero.
    pub fn new(inner: I, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            inner,
            batch_size,
            next_id: 0,
        }
    }
}

impl<I: Iterator<Item = EdgeChange>> Iterator for Batcher<I> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        let mut changes = Vec::with_capacity(self.batch_size);
        while changes.len() < self.batch_size {
            match self.inner.next() {
                Some(c) => changes.push(c),
                None => break,
            }
        }
        if changes.is_empty() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        Some(Batch::new(id, changes))
    }
}

/// A deterministic xorshift generator for sampling; keeps this crate
/// free of the `rand` dependency (generators in `elga-gen` use `rand`).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator; zero seeds are remapped.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next pseudo-random value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `0..bound` (bound > 0).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Sample `count` distinct edge indices from `edges`, emit a deletion
/// batch for the sample followed by an insertion batch restoring it —
/// the paper's §4.4 dynamic-change model. Returns `(deletions,
/// insertions)`.
pub fn delete_reinsert_batches(
    edges: &[(VertexId, VertexId)],
    count: usize,
    seed: u64,
) -> (Batch, Batch) {
    let count = count.min(edges.len());
    let mut rng = XorShift64::new(seed);
    // Floyd's algorithm for a distinct sample of indices.
    let n = edges.len() as u64;
    let mut chosen = std::collections::BTreeSet::new();
    for j in n - count as u64..n {
        let t = rng.below(j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let dels: Vec<EdgeChange> = chosen
        .iter()
        .map(|&i| {
            let (u, v) = edges[i as usize];
            EdgeChange::delete(u, v)
        })
        .collect();
    let ins: Vec<EdgeChange> = chosen
        .iter()
        .map(|&i| {
            let (u, v) = edges[i as usize];
            EdgeChange::insert(u, v)
        })
        .collect();
    (Batch::new(0, dels), Batch::new(1, ins))
}

/// Convert an edge list into a pure insertion stream.
pub fn insertions(
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> impl Iterator<Item = EdgeChange> {
    edges.into_iter().map(|(u, v)| EdgeChange::insert(u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyStore;

    #[test]
    fn batcher_respects_size_and_ids() {
        let stream = insertions((0..10).map(|i| (i, i + 1)));
        let batches: Vec<Batch> = Batcher::new(stream, 4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[1].len(), 4);
        assert_eq!(batches[2].len(), 2);
        assert_eq!(
            batches.iter().map(|b| b.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn batcher_empty_stream_yields_nothing() {
        let mut b = Batcher::new(std::iter::empty::<EdgeChange>(), 8);
        assert!(b.next().is_none());
    }

    #[test]
    fn delete_reinsert_roundtrips_the_graph() {
        let edges: Vec<(VertexId, VertexId)> = (0..50).map(|i| (i, (i * 3 + 1) % 50)).collect();
        let mut g = AdjacencyStore::from_edges(edges.iter().copied());
        let before = g.edges_sorted();
        let (dels, ins) = delete_reinsert_batches(&edges, 10, 42);
        assert_eq!(dels.len(), 10);
        assert_eq!(ins.len(), 10);
        assert_eq!(g.apply_batch(&dels), 10);
        assert_eq!(g.num_edges(), before.len() - 10);
        assert_eq!(g.apply_batch(&ins), 10);
        assert_eq!(g.edges_sorted(), before);
    }

    #[test]
    fn delete_reinsert_sample_is_distinct() {
        let edges: Vec<(VertexId, VertexId)> = (0..100).map(|i| (i, i + 1)).collect();
        let (dels, _) = delete_reinsert_batches(&edges, 30, 7);
        let set: std::collections::HashSet<_> = dels.changes.iter().map(|c| c.edge).collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn delete_reinsert_caps_at_edge_count() {
        let edges = vec![(1u64, 2u64), (2, 3)];
        let (dels, ins) = delete_reinsert_batches(&edges, 10, 1);
        assert_eq!(dels.len(), 2);
        assert_eq!(ins.len(), 2);
    }

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(5);
        let mut b = XorShift64::new(5);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        assert!(XorShift64::new(0).next_u64() != 0);
    }
}
