//! Single-threaded reference algorithms.
//!
//! The paper validates every system against the baselines "and, when
//! applicable, against ground truth", with floating point agreement to
//! `1e-8` (§4.3). These implementations are the workspace's ground
//! truth: exact for WCC/BFS/SSSP, standard power iteration for
//! PageRank. Every distributed and parallel implementation in
//! `elga-core` and `elga-baselines` is tested against them.

#![allow(clippy::needless_range_loop)] // index-based loops mirror the math

use crate::csr::Csr;
use crate::types::VertexId;
use elga_hash::FxHashMap;

/// Tolerance at which two PageRank vectors are considered equal (§4.3).
pub const PAGERANK_TOLERANCE: f64 = 1e-8;

/// Plain power-iteration PageRank with uniform teleport, handling
/// dangling vertices by redistributing their mass uniformly. Runs a
/// fixed number of supersteps — all systems in the workspace are
/// configured with identical iteration counts and termination
/// conditions, as the paper requires (§4.3).
pub fn pagerank(csr: &Csr, damping: f64, iters: usize) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        let mut dangling = 0.0;
        for v in 0..n {
            if csr.out_degree(v as VertexId) == 0 {
                dangling += rank[v];
            }
        }
        let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        next.fill(0.0);
        for u in 0..n {
            let deg = csr.out_degree(u as VertexId);
            if deg > 0 {
                let share = damping * rank[u] / deg as f64;
                for &v in csr.out_neighbors(u as VertexId) {
                    next[v as usize] += share;
                }
            }
        }
        for v in 0..n {
            next[v] += base;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Personalized PageRank with restart at `source`: restart and
/// dangling mass return to the source instead of spreading uniformly.
pub fn personalized_pagerank(csr: &Csr, source: VertexId, damping: f64, iters: usize) -> Vec<f64> {
    let n = csr.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![0.0; n];
    rank[source as usize] = 1.0;
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        let mut dangling = 0.0;
        for v in 0..n {
            if csr.out_degree(v as VertexId) == 0 {
                dangling += rank[v];
            }
        }
        next.fill(0.0);
        for u in 0..n {
            let deg = csr.out_degree(u as VertexId);
            if deg > 0 {
                let share = damping * rank[u] / deg as f64;
                for &v in csr.out_neighbors(u as VertexId) {
                    next[v as usize] += share;
                }
            }
        }
        next[source as usize] += (1.0 - damping) + damping * dangling;
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Maximum absolute difference between two rank vectors.
pub fn linf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// A union-find (disjoint set) structure over arbitrary `u64` ids,
/// used as the exact reference for weakly connected components.
#[derive(Debug, Default, Clone)]
pub struct UnionFind {
    parent: FxHashMap<VertexId, VertexId>,
}

impl UnionFind {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Find with path compression; unknown ids are their own roots.
    pub fn find(&mut self, x: VertexId) -> VertexId {
        let p = *self.parent.get(&x).unwrap_or(&x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Union by smaller root id (so component labels are the minimum
    /// vertex id, matching the distributed WCC's min-propagation).
    pub fn union(&mut self, a: VertexId, b: VertexId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
    }

    /// Whether two ids share a component.
    pub fn connected(&mut self, a: VertexId, b: VertexId) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Exact weakly connected components over an edge list: edge direction
/// is ignored (the "weak" in WCC). Returns each vertex's component
/// label, the minimum vertex id in its component.
pub fn wcc(edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> FxHashMap<VertexId, VertexId> {
    let mut uf = UnionFind::new();
    let mut seen: Vec<VertexId> = Vec::new();
    for (u, v) in edges {
        uf.union(u, v);
        seen.push(u);
        seen.push(v);
    }
    seen.sort_unstable();
    seen.dedup();
    seen.into_iter().map(|v| (v, uf.find(v))).collect()
}

/// Unweighted BFS distances from `source`; unreachable vertices are
/// absent from the map. Follows out-edges only (directed BFS).
pub fn bfs(csr: &Csr, source: VertexId) -> FxHashMap<VertexId, u64> {
    let mut dist = FxHashMap::default();
    if (source as usize) >= csr.num_vertices() {
        return dist;
    }
    let mut frontier = std::collections::VecDeque::new();
    dist.insert(source, 0);
    frontier.push_back(source);
    while let Some(u) = frontier.pop_front() {
        let d = dist[&u];
        for &v in csr.out_neighbors(u) {
            dist.entry(v).or_insert_with(|| {
                frontier.push_back(v);
                d + 1
            });
        }
    }
    dist
}

/// Deterministic pseudo-weight for edge `(u, v)`: hash-derived in
/// `1..=16`. The public datasets are unweighted, so all systems use
/// this same synthetic weighting for SSSP.
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId) -> u64 {
    (elga_hash::wang64(u.wrapping_mul(0x1F0E_563A).wrapping_add(v)) % 16) + 1
}

/// Longest-path levels over a DAG: sources are 0, every other vertex
/// is `1 + max(level of in-neighbors)`. Returns `None` when the graph
/// has a cycle (Kahn's algorithm fails to consume every vertex).
pub fn dag_levels(csr: &Csr) -> Option<FxHashMap<VertexId, u64>> {
    let n = csr.num_vertices();
    let mut indeg: Vec<usize> = (0..n).map(|v| csr.in_degree(v as VertexId)).collect();
    let mut level = vec![0u64; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = 0;
    while let Some(u) = queue.pop_front() {
        seen += 1;
        for &w in csr.out_neighbors(u as VertexId) {
            let w = w as usize;
            level[w] = level[w].max(level[u] + 1);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    if seen != n {
        return None; // cyclic
    }
    Some(
        (0..n)
            .filter(|&v| csr.out_degree(v as VertexId) + csr.in_degree(v as VertexId) > 0)
            .map(|v| (v as VertexId, level[v]))
            .collect(),
    )
}

/// Dijkstra over [`edge_weight`]-weighted out-edges.
pub fn sssp(csr: &Csr, source: VertexId) -> FxHashMap<VertexId, u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = FxHashMap::default();
    if (source as usize) >= csr.num_vertices() {
        return dist;
    }
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0u64);
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist.get(&u).is_some_and(|&best| d > best) {
            continue;
        }
        for &v in csr.out_neighbors(u) {
            let nd = d + edge_weight(u, v);
            if dist.get(&v).is_none_or(|&cur| nd < cur) {
                dist.insert(v, nd);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Csr {
        Csr::from_edges(None, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]);
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn pagerank_symmetric_cycle_is_uniform() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0)]);
        let pr = pagerank(&g, 0.85, 100);
        for &r in &pr {
            assert!((r - 1.0 / 3.0).abs() < PAGERANK_TOLERANCE);
        }
    }

    #[test]
    fn pagerank_hub_ranks_higher() {
        // Everybody links to 0.
        let g = Csr::from_edges(None, &[(1, 0), (2, 0), (3, 0), (0, 1)]);
        let pr = pagerank(&g, 0.85, 60);
        assert!(pr[0] > pr[2]);
        assert!(pr[0] > pr[3]);
    }

    #[test]
    fn pagerank_empty_graph() {
        assert!(pagerank(&Csr::default(), 0.85, 10).is_empty());
    }

    #[test]
    fn personalized_pagerank_mass_and_locality() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let pr = personalized_pagerank(&g, 0, 0.85, 60);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // The source's own neighborhood outranks the far vertex.
        assert!(pr[0] > pr[3]);
        assert!(pr[1] > pr[3]);
    }

    #[test]
    fn linf_measures_max_gap() {
        assert_eq!(linf(&[0.0, 1.0], &[0.5, 1.25]), 0.5);
    }

    #[test]
    fn wcc_two_components() {
        let labels = wcc([(1, 2), (2, 3), (10, 11)]);
        assert_eq!(labels[&1], 1);
        assert_eq!(labels[&2], 1);
        assert_eq!(labels[&3], 1);
        assert_eq!(labels[&10], 10);
        assert_eq!(labels[&11], 10);
    }

    #[test]
    fn wcc_ignores_direction() {
        let labels = wcc([(5, 1), (1, 9)]);
        assert_eq!(labels[&5], 1);
        assert_eq!(labels[&9], 1);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new();
        assert!(!uf.connected(1, 2));
        uf.union(1, 2);
        uf.union(2, 3);
        assert!(uf.connected(1, 3));
        assert_eq!(uf.find(3), 1, "labels are minimum ids");
    }

    #[test]
    fn bfs_line_distances() {
        let d = bfs(&line(), 0);
        assert_eq!(d[&0], 0);
        assert_eq!(d[&3], 3);
        // Directed: nothing reaches 0 from 3.
        let d3 = bfs(&line(), 3);
        assert_eq!(d3.len(), 1);
    }

    #[test]
    fn bfs_out_of_range_source() {
        assert!(bfs(&line(), 99).is_empty());
    }

    #[test]
    fn sssp_respects_weights_and_dominates_bfs() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (0, 2)]);
        let d = sssp(&g, 0);
        // Distances are positive and consistent with edge weights.
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], edge_weight(0, 1));
        let direct = edge_weight(0, 2);
        let via = edge_weight(0, 1) + edge_weight(1, 2);
        assert_eq!(d[&2], direct.min(via));
    }

    #[test]
    fn dag_levels_longest_paths() {
        // 0→1→3, 0→2→3, 2→4 ; longest path to 3 has length 2.
        let g = Csr::from_edges(None, &[(0, 1), (1, 3), (0, 2), (2, 3), (2, 4)]);
        let levels = dag_levels(&g).unwrap();
        assert_eq!(levels[&0], 0);
        assert_eq!(levels[&1], 1);
        assert_eq!(levels[&2], 1);
        assert_eq!(levels[&3], 2);
        assert_eq!(levels[&4], 2);
    }

    #[test]
    fn dag_levels_reject_cycles() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0)]);
        assert!(dag_levels(&g).is_none());
    }

    #[test]
    fn edge_weight_in_range_and_deterministic() {
        for (u, v) in [(0u64, 1u64), (7, 9), (1 << 40, 3)] {
            let w = edge_weight(u, v);
            assert!((1..=16).contains(&w));
            assert_eq!(w, edge_weight(u, v));
        }
    }
}
