//! Edge-list I/O.
//!
//! The paper stores graphs as edge lists on a distributed filesystem
//! ("we run Ceph ... for storing edge lists", §4.1); every system
//! loads the same files. This module reads and writes the two common
//! on-disk forms:
//!
//! * **text** — one `src dst` pair per line (whitespace separated),
//!   `#`-prefixed comment lines ignored — the SNAP/LAW interchange
//!   format;
//! * **binary** — packed little-endian `u64` pairs, 16 bytes per edge
//!   (the "EL size" column of Table 2 assumes exactly this layout).

use crate::types::VertexId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Read a whitespace-separated text edge list; `#` lines are comments.
///
/// # Errors
/// I/O errors propagate; malformed lines yield
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_text_edges<R: Read>(reader: R) -> std::io::Result<Vec<(VertexId, VertexId)>> {
    let mut edges = Vec::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> std::io::Result<VertexId> {
            tok.and_then(|t| t.parse().ok()).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad edge on line {}", lineno + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        edges.push((u, v));
    }
    Ok(edges)
}

/// Write a text edge list (one `src dst` pair per line).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_text_edges<W: Write>(
    writer: W,
    edges: &[(VertexId, VertexId)],
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &(u, v) in edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Read a packed binary edge list (little-endian `u64` pairs).
///
/// # Errors
/// A trailing partial record yields
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_binary_edges<R: Read>(reader: R) -> std::io::Result<Vec<(VertexId, VertexId)>> {
    let mut bytes = Vec::new();
    BufReader::new(reader).read_to_end(&mut bytes)?;
    if bytes.len() % 16 != 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "torn trailing edge record",
        ));
    }
    Ok(bytes
        .chunks_exact(16)
        .map(|rec| {
            (
                u64::from_le_bytes(rec[..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(rec[8..].try_into().expect("8 bytes")),
            )
        })
        .collect())
}

/// Write a packed binary edge list (16 bytes per edge, as Table 2's
/// edge-list sizes assume).
///
/// # Errors
/// Propagates I/O errors.
pub fn write_binary_edges<W: Write>(
    writer: W,
    edges: &[(VertexId, VertexId)],
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for &(u, v) in edges {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Load an edge list from a path, choosing the format by extension:
/// `.bel`/`.bin` binary, anything else text.
///
/// # Errors
/// Propagates I/O and format errors.
pub fn load_edges(path: &Path) -> std::io::Result<Vec<(VertexId, VertexId)>> {
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("bel") | Some("bin") => read_binary_edges(f),
        _ => read_text_edges(f),
    }
}

/// Save an edge list to a path, choosing the format by extension as
/// [`load_edges`] does.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_edges(path: &Path, edges: &[(VertexId, VertexId)]) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("bel") | Some("bin") => write_binary_edges(f, edges),
        _ => write_text_edges(f, edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u64, u64)> {
        vec![(0, 1), (1, 2), (1 << 40, 7), (7, 0)]
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text_edges(&mut buf, &sample()).unwrap();
        let back = read_text_edges(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let input = "# SNAP header\n\n0\t1\n # indented comment\n2 3\n";
        let edges = read_text_edges(input.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn text_rejects_malformed_lines() {
        let err = read_text_edges("0 1\nnot an edge\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
        let err = read_text_edges("5\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_roundtrip_and_size() {
        let mut buf = Vec::new();
        write_binary_edges(&mut buf, &sample()).unwrap();
        assert_eq!(buf.len(), sample().len() * 16, "Table 2 sizing");
        let back = read_binary_edges(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn binary_rejects_torn_records() {
        let mut buf = Vec::new();
        write_binary_edges(&mut buf, &sample()).unwrap();
        buf.pop(); // tear the last record
        let err = read_binary_edges(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn binary_empty_is_ok() {
        assert!(read_binary_edges(&[][..]).unwrap().is_empty());
    }

    #[test]
    fn path_dispatch_by_extension() {
        let dir = std::env::temp_dir().join(format!("elga-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["g.el", "g.bel"] {
            let path = dir.join(name);
            save_edges(&path, &sample()).unwrap();
            assert_eq!(load_edges(&path).unwrap(), sample());
        }
        // Text and binary files differ on disk.
        let text = std::fs::read(dir.join("g.el")).unwrap();
        let bin = std::fs::read(dir.join("g.bel")).unwrap();
        assert_ne!(text, bin);
        assert_eq!(bin.len(), sample().len() * 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
