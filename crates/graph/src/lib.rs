//! Graph substrate for ElGA.
//!
//! This crate defines the data model of the paper's §2.1 (directed
//! graphs, turnstile streams of edge changes, batches) and the two
//! storage layouts the evaluation contrasts:
//!
//! * [`adjacency::AdjacencyStore`] — the dynamic layout ElGA agents use
//!   ("our dynamic graph is stored as a flat hash map with vectors",
//!   §4), storing both in- and out-edges and supporting O(1) insert
//!   and constant-amortized delete;
//! * [`csr::Csr`] — the static compressed-sparse-row layout the Blogel
//!   and GAPbs baselines use, which is faster to traverse but cannot be
//!   updated in place (§4.7).
//!
//! [`mod@reference`] holds single-threaded reference algorithms (PageRank,
//! WCC via union-find, BFS, Dijkstra) used to validate every system in
//! the workspace, mirroring the paper's §4 correctness methodology.

#![warn(missing_docs)]

pub mod adjacency;
pub mod csr;
pub mod io;
pub mod reference;
pub mod stats;
pub mod stream;
pub mod types;

pub use adjacency::AdjacencyStore;
pub use csr::Csr;
pub use types::{Action, Batch, Edge, EdgeChange, VertexId};
