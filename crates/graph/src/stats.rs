//! Graph statistics used by the generators and experiment harnesses.
//!
//! The A-BTER substitution (see DESIGN.md) needs a seed graph's degree
//! distribution and a clustering proxy; the load-balance experiments
//! (Figures 5 and 6) need imbalance summaries of per-agent edge counts.

use crate::csr::Csr;
use crate::types::VertexId;
use elga_hash::FxHashSet;

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(degrees: impl IntoIterator<Item = usize>) -> Vec<u64> {
    let mut hist: Vec<u64> = Vec::new();
    for d in degrees {
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Out-degree histogram of a CSR graph.
pub fn out_degree_histogram(csr: &Csr) -> Vec<u64> {
    degree_histogram((0..csr.num_vertices()).map(|v| csr.out_degree(v as VertexId)))
}

/// Total-degree (in+out) histogram of a CSR graph.
pub fn total_degree_histogram(csr: &Csr) -> Vec<u64> {
    degree_histogram(
        (0..csr.num_vertices())
            .map(|v| csr.out_degree(v as VertexId) + csr.in_degree(v as VertexId)),
    )
}

/// Local clustering coefficient of `v` on the symmetrized graph
/// induced by out+in neighborhoods: |edges among neighbors| /
/// (k·(k−1)/2). Exact but O(k²) — sample vertices for large graphs.
pub fn local_clustering(csr: &Csr, v: VertexId) -> f64 {
    let mut nbrs: Vec<VertexId> = csr
        .out_neighbors(v)
        .iter()
        .chain(csr.in_neighbors(v))
        .copied()
        .filter(|&u| u != v)
        .collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let set: FxHashSet<VertexId> = nbrs.iter().copied().collect();
    let mut links = 0usize;
    for &u in &nbrs {
        for &w in csr.out_neighbors(u) {
            if w > u && set.contains(&w) {
                links += 1;
            }
        }
        // count undirected closure through in-edges too, avoiding
        // double counting with the w > u guard on a symmetrized view
        for &w in csr.in_neighbors(u) {
            if w > u && set.contains(&w) && !csr.out_neighbors(u).contains(&w) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k * (k - 1)) as f64
}

/// Mean local clustering over a deterministic sample of `sample`
/// vertices (every ceil(n/sample)-th vertex).
pub fn mean_clustering(csr: &Csr, sample: usize) -> f64 {
    let n = csr.num_vertices();
    if n == 0 || sample == 0 {
        return 0.0;
    }
    let step = n.div_ceil(sample).max(1);
    let picked: Vec<usize> = (0..n).step_by(step).collect();
    let total: f64 = picked
        .iter()
        .map(|&v| local_clustering(csr, v as VertexId))
        .sum();
    total / picked.len() as f64
}

/// Summary of a load distribution (per-agent edge counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadBalance {
    /// Largest share.
    pub max: u64,
    /// Smallest share.
    pub min: u64,
    /// Arithmetic mean share.
    pub mean: f64,
    /// max / mean — 1.0 is perfect balance; the metric in Figure 6.
    pub imbalance: f64,
}

/// Compute balance statistics over per-agent counts.
pub fn load_balance(counts: &[u64]) -> LoadBalance {
    if counts.is_empty() {
        return LoadBalance {
            max: 0,
            min: 0,
            mean: 0.0,
            imbalance: 1.0,
        };
    }
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    LoadBalance {
        max,
        min,
        mean,
        imbalance,
    }
}

/// Relative error between two degree histograms, as the paper's A-BTER
/// tuning targets "under 5% error for degree distributions" (Appendix).
/// Computed as L1 distance over the union of bins, normalized by the
/// total mass of `a`.
pub fn histogram_error(a: &[u64], b: &[u64]) -> f64 {
    let len = a.len().max(b.len());
    let total: u64 = a.iter().sum();
    if total == 0 {
        return if b.iter().sum::<u64>() == 0 { 0.0 } else { 1.0 };
    }
    let mut diff = 0u64;
    for i in 0..len {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff += x.abs_diff(y);
    }
    diff as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_degrees() {
        let h = degree_histogram([0, 1, 1, 3]);
        assert_eq!(h, vec![1, 2, 0, 1]);
        assert!(degree_histogram(std::iter::empty()).is_empty());
    }

    #[test]
    fn triangle_has_full_clustering() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0)]);
        for v in 0..3 {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = Csr::from_edges(None, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0, "degree-1 vertex");
    }

    #[test]
    fn mean_clustering_between_extremes() {
        // Triangle plus a pendant vertex.
        let g = Csr::from_edges(None, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let c = mean_clustering(&g, 10);
        assert!(c > 0.0 && c < 1.0, "got {c}");
    }

    #[test]
    fn load_balance_metrics() {
        let lb = load_balance(&[10, 20, 30]);
        assert_eq!(lb.max, 30);
        assert_eq!(lb.min, 10);
        assert!((lb.mean - 20.0).abs() < 1e-12);
        assert!((lb.imbalance - 1.5).abs() < 1e-12);
        assert_eq!(load_balance(&[]).imbalance, 1.0);
    }

    #[test]
    fn histogram_error_zero_for_identical() {
        assert_eq!(histogram_error(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert!(histogram_error(&[4, 0], &[0, 4]) > 0.0);
        assert_eq!(histogram_error(&[], &[]), 0.0);
    }

    #[test]
    fn degree_histograms_on_csr() {
        let g = Csr::from_edges(None, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(out_degree_histogram(&g), vec![1, 1, 1]); // degs 2,1,0
                                                             // total degrees: v0=2, v1=2, v2=2
        assert_eq!(total_degree_histogram(&g), vec![0, 0, 3]);
    }
}
