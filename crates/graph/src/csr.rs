//! Compressed sparse row (CSR) layout for the static baselines.
//!
//! The paper attributes part of Blogel's speed to its CSR ("Blogel uses
//! a CSR internally to hold the graph which is faster than our flat
//! hash maps (but do not easily support dynamic graphs)", §4.7). The
//! Blogel-like and GAPbs-like baselines in `elga-baselines` run over
//! this structure; rebuilding it from scratch is exactly the cost the
//! snapshot (GraphX-like) baseline pays per batch in Figure 15.

use crate::adjacency::AdjacencyStore;
use crate::types::VertexId;

/// An immutable directed graph in CSR form over dense vertex ids
/// `0..n`. Optionally carries the transposed (in-edge) structure for
/// pull-style algorithms.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` with `v`'s
    /// out-neighbors.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    /// Transposed offsets (in-edges), built on demand.
    in_offsets: Vec<usize>,
    in_targets: Vec<VertexId>,
}

impl Csr {
    /// Build from an edge list. `n` must exceed every vertex id; pass
    /// `None` to infer `n = max_id + 1`.
    pub fn from_edges(n: Option<usize>, edges: &[(VertexId, VertexId)]) -> Self {
        let n = n.unwrap_or_else(|| {
            edges
                .iter()
                .map(|&(u, v)| u.max(v) as usize + 1)
                .max()
                .unwrap_or(0)
        });
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for &(u, v) in edges {
            out_deg[u as usize] += 1;
            in_deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &out_deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0);
        for d in &in_deg {
            in_offsets.push(in_offsets.last().unwrap() + d);
        }
        let m = edges.len();
        let mut targets = vec![0; m];
        let mut in_targets = vec![0; m];
        let mut out_cursor = offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in edges {
            targets[out_cursor[u as usize]] = v;
            out_cursor[u as usize] += 1;
            in_targets[in_cursor[v as usize]] = u;
            in_cursor[v as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            in_offsets,
            in_targets,
        }
    }

    /// Build from a dynamic store (vertex ids must already be dense —
    /// generator output always is).
    pub fn from_store(store: &AdjacencyStore) -> Self {
        let edges: Vec<(VertexId, VertexId)> = store.edges().map(|e| (e.src, e.dst)).collect();
        Csr::from_edges(None, &edges)
    }

    /// Number of vertices (`n`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of edges (`m`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_targets[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Iterate over all edges in vertex order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// A symmetrized copy: every edge also present reversed, duplicates
    /// removed. The paper symmetrizes inputs for WCC after finding the
    /// Blogel bug (§4.7).
    pub fn symmetrized(&self) -> Csr {
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for (u, v) in self.edges() {
            edges.push((u, v));
            edges.push((v, u));
        }
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edges(Some(self.num_vertices()), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(None, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn sizes_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(None, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn explicit_n_allows_isolated_vertices() {
        let g = Csr::from_edges(Some(10), &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn from_store_matches_edge_list() {
        let store = AdjacencyStore::from_edges([(0, 1), (1, 2), (2, 0)]);
        let g = Csr::from_store(&store);
        assert_eq!(g.num_edges(), 3);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn symmetrized_adds_reverse_edges_once() {
        let g = Csr::from_edges(None, &[(0, 1), (1, 0), (1, 2)]);
        let s = g.symmetrized();
        assert_eq!(s.num_edges(), 4); // (0,1),(1,0),(1,2),(2,1)
        assert_eq!(s.in_degree(1), s.out_degree(1));
    }
}
