//! Core data model: directed edges, turnstile changes, and batches
//! (paper Definitions 2.1–2.5).

use serde::{Deserialize, Serialize};

/// Vertex identifier. The paper configures all systems with 64-bit
/// vertex ids (§4); we do the same.
pub type VertexId = u64;

/// A directed edge `(src, dst)` (Definition 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Construct an edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// The edge with endpoints swapped.
    #[inline]
    pub fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this is a self-loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge { src, dst }
    }
}

/// The action of a turnstile change (Definition 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Insert the edge.
    Insert,
    /// Remove the edge.
    Delete,
}

/// One element of a dynamic graph's change stream: an action plus the
/// edge it applies to (Definition 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeChange {
    /// Insert or delete.
    pub action: Action,
    /// The affected edge.
    pub edge: Edge,
}

impl EdgeChange {
    /// An insertion of `(u, v)`.
    #[inline]
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        EdgeChange {
            action: Action::Insert,
            edge: Edge::new(u, v),
        }
    }

    /// A deletion of `(u, v)`.
    #[inline]
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        EdgeChange {
            action: Action::Delete,
            edge: Edge::new(u, v),
        }
    }

    /// True for insertions.
    #[inline]
    pub fn is_insert(&self) -> bool {
        self.action == Action::Insert
    }
}

/// A contiguous segment of the change stream (Definition 2.4). ElGA
/// applies batches atomically between algorithm executions (§3.4).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    /// Monotonically increasing batch identifier ("a monotonically
    /// increasing clock used to bootstrap Agents and ensure
    /// consistency", §3.3).
    pub id: u64,
    /// The changes, in stream order.
    pub changes: Vec<EdgeChange>,
}

impl Batch {
    /// A batch with the given id and changes.
    pub fn new(id: u64, changes: Vec<EdgeChange>) -> Self {
        Batch { id, changes }
    }

    /// Number of changes in the batch.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the batch carries no changes.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Every vertex touched by the batch, deduplicated. These are the
    /// vertices a dynamic algorithm re-activates (§4.3: "only vertices
    /// directly modified in the batch are activated").
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .changes
            .iter()
            .flat_map(|c| [c.edge.src, c.edge.dst])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_basics() {
        let e = Edge::new(1, 2);
        assert_eq!(e.reversed(), Edge::new(2, 1));
        assert!(!e.is_loop());
        assert!(Edge::new(3, 3).is_loop());
        assert_eq!(Edge::from((4, 5)), Edge::new(4, 5));
    }

    #[test]
    fn change_constructors() {
        assert!(EdgeChange::insert(1, 2).is_insert());
        assert!(!EdgeChange::delete(1, 2).is_insert());
        assert_eq!(EdgeChange::insert(1, 2).edge, Edge::new(1, 2));
    }

    #[test]
    fn batch_touched_vertices_deduplicated_and_sorted() {
        let b = Batch::new(
            7,
            vec![
                EdgeChange::insert(5, 1),
                EdgeChange::delete(1, 5),
                EdgeChange::insert(2, 2),
            ],
        );
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.touched_vertices(), vec![1, 2, 5]);
    }

    #[test]
    fn empty_batch() {
        let b = Batch::default();
        assert!(b.is_empty());
        assert!(b.touched_vertices().is_empty());
    }
}
